#!/usr/bin/env bash
# Offline CI: tier-1 verification plus a parallel-driver smoke test.
#
# Everything here works without network or registry access — the
# workspace has no external dependencies on the tier-1 path.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: build =="
cargo build --release

echo "== lint: clippy =="
cargo clippy --workspace -- -D warnings

echo "== tier-1: tests (root package) =="
cargo test -q

echo "== workspace tests =="
cargo test --release --workspace -q

echo "== smoke: parallel experiment driver =="
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
cargo build --release -p mcl-bench
(cd "$smoke_dir" && "$OLDPWD/target/release/repro" table2 --jobs 2 > table2_j2.txt)
(cd "$smoke_dir" && "$OLDPWD/target/release/repro" table2 --jobs 1 > table2_j1.txt)
if ! diff -q "$smoke_dir/table2_j1.txt" "$smoke_dir/table2_j2.txt"; then
    echo "FAIL: parallel and serial table2 output differ" >&2
    exit 1
fi
test -s "$smoke_dir/BENCH_repro.json" || {
    echo "FAIL: BENCH_repro.json was not written" >&2
    exit 1
}

echo "== smoke: invariant checker does not change results =="
(cd "$smoke_dir" && "$OLDPWD/target/release/repro" table2 4 > table2_plain.txt)
(cd "$smoke_dir" && "$OLDPWD/target/release/repro" table2 4 --check retire > table2_checked.txt)
if ! diff -q "$smoke_dir/table2_plain.txt" "$smoke_dir/table2_checked.txt"; then
    echo "FAIL: --check retire changed table2 output" >&2
    exit 1
fi

echo "== smoke: selftest (differential + fault injection) =="
(cd "$smoke_dir" && "$OLDPWD/target/release/repro" selftest 8 --jobs 2)

echo "== smoke: fault-isolated driver =="
if (cd "$smoke_dir" && MCL_PANIC_CELL=1 "$OLDPWD/target/release/repro" table2 4 --keep-going \
        > keepgoing.txt 2> keepgoing.err); then
    echo "FAIL: run with an injected panic exited zero" >&2
    exit 1
fi
grep -q '"id":"panic-probe","status":"panicked"' "$smoke_dir/BENCH_repro.json" || {
    echo "FAIL: panicked cell not recorded in BENCH_repro.json" >&2
    exit 1
}
grep -q 'compress' "$smoke_dir/keepgoing.txt" || {
    echo "FAIL: --keep-going did not render the surviving sections" >&2
    exit 1
}

echo "CI OK"
