#!/usr/bin/env bash
# Offline CI: tier-1 verification plus a parallel-driver smoke test.
#
# Everything here works without network or registry access — the
# workspace has no external dependencies on the tier-1 path.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: build =="
cargo build --release

echo "== lint: clippy =="
cargo clippy --workspace -- -D warnings

echo "== tier-1: tests (root package) =="
cargo test -q

echo "== workspace tests =="
cargo test --release --workspace -q

echo "== smoke: parallel experiment driver =="
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
cargo build --release -p mcl-bench
(cd "$smoke_dir" && "$OLDPWD/target/release/repro" table2 --jobs 2 > table2_j2.txt)
(cd "$smoke_dir" && "$OLDPWD/target/release/repro" table2 --jobs 1 > table2_j1.txt)
if ! diff -q "$smoke_dir/table2_j1.txt" "$smoke_dir/table2_j2.txt"; then
    echo "FAIL: parallel and serial table2 output differ" >&2
    exit 1
fi
test -s "$smoke_dir/BENCH_repro.json" || {
    echo "FAIL: BENCH_repro.json was not written" >&2
    exit 1
}

echo "CI OK"
