#!/usr/bin/env bash
# Offline CI: tier-1 verification plus a parallel-driver smoke test.
#
# Everything here works without network or registry access — the
# workspace has no external dependencies on the tier-1 path.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: build =="
cargo build --release

echo "== lint: clippy =="
cargo clippy --workspace -- -D warnings

echo "== tier-1: tests (root package) =="
cargo test -q

echo "== workspace tests =="
cargo test --release --workspace -q

echo "== smoke: parallel experiment driver =="
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
cargo build --release -p mcl-bench
(cd "$smoke_dir" && "$OLDPWD/target/release/repro" table2 --jobs 2 > table2_j2.txt)
(cd "$smoke_dir" && "$OLDPWD/target/release/repro" table2 --jobs 1 > table2_j1.txt)
if ! diff -q "$smoke_dir/table2_j1.txt" "$smoke_dir/table2_j2.txt"; then
    echo "FAIL: parallel and serial table2 output differ" >&2
    exit 1
fi
test -s "$smoke_dir/BENCH_repro.json" || {
    echo "FAIL: BENCH_repro.json was not written" >&2
    exit 1
}

echo "== smoke: invariant checker does not change results =="
(cd "$smoke_dir" && "$OLDPWD/target/release/repro" table2 4 > table2_plain.txt)
(cd "$smoke_dir" && "$OLDPWD/target/release/repro" table2 4 --check retire > table2_checked.txt)
if ! diff -q "$smoke_dir/table2_plain.txt" "$smoke_dir/table2_checked.txt"; then
    echo "FAIL: --check retire changed table2 output" >&2
    exit 1
fi

echo "== smoke: selftest (differential + fault injection) =="
(cd "$smoke_dir" && "$OLDPWD/target/release/repro" selftest 8 --jobs 2)

echo "== smoke: fault-isolated driver =="
if (cd "$smoke_dir" && MCL_PANIC_CELL=1 "$OLDPWD/target/release/repro" table2 4 --keep-going \
        > keepgoing.txt 2> keepgoing.err); then
    echo "FAIL: run with an injected panic exited zero" >&2
    exit 1
fi
grep -q '"id":"panic-probe","status":"panicked"' "$smoke_dir/BENCH_repro.json" || {
    echo "FAIL: panicked cell not recorded in BENCH_repro.json" >&2
    exit 1
}
grep -q 'compress' "$smoke_dir/keepgoing.txt" || {
    echo "FAIL: --keep-going did not render the surviving sections" >&2
    exit 1
}

echo "== smoke: observability exports =="
(cd "$smoke_dir" && "$OLDPWD/target/release/repro" table2 4 > table2_noobs.txt)
cp "$smoke_dir/BENCH_repro.json" "$smoke_dir/BENCH_noobs.json"
(cd "$smoke_dir" && "$OLDPWD/target/release/repro" table2 4 --obs obs_out > table2_obs.txt)
if ! diff -q "$smoke_dir/table2_noobs.txt" "$smoke_dir/table2_obs.txt"; then
    echo "FAIL: --obs changed table2 output" >&2
    exit 1
fi
target/release/repro obs-validate "$smoke_dir/obs_out"
cycles_noobs="$(grep -o '"total_simulated_cycles":[0-9]*' "$smoke_dir/BENCH_noobs.json")"
cycles_obs="$(grep -o '"total_simulated_cycles":[0-9]*' "$smoke_dir/BENCH_repro.json")"
if [ -z "$cycles_noobs" ] || [ "$cycles_noobs" != "$cycles_obs" ]; then
    echo "FAIL: --obs changed total_simulated_cycles ($cycles_noobs vs $cycles_obs)" >&2
    exit 1
fi

echo "== smoke: critical-path explain =="
# One cell with a baseline. The binary itself enforces that the
# instrumented companion run is byte-identical to the uninstrumented
# one (it exits nonzero on any divergence), so a zero exit here IS the
# perturbation check; obs-validate re-checks the attribution identity
# and schema from the exported JSON.
(cd "$smoke_dir" && MCL_ONLY=compress "$OLDPWD/target/release/repro" explain 8 --baseline single \
    --obs explain_out > explain.txt)
grep -q 'compress:' "$smoke_dir/explain.txt" || {
    echo "FAIL: explain report missing the compress cell" >&2
    exit 1
}
test -s "$smoke_dir/explain_out/compress.critpath.json" || {
    echo "FAIL: compress.critpath.json was not written" >&2
    exit 1
}
target/release/repro obs-validate "$smoke_dir/explain_out"
grep -q '"explain":{"dir":"explain_out","baseline":"single"}' "$smoke_dir/BENCH_repro.json" || {
    echo "FAIL: explain run not recorded in BENCH_repro.json" >&2
    exit 1
}
# The exported target cycles and the rendered report must agree (both
# come from the same uninstrumented run the probe was checked against).
json_cycles="$(grep -o '"cycles":[0-9]*' "$smoke_dir/explain_out/compress.critpath.json" | head -1 | cut -d: -f2)"
grep -q "compress: ${json_cycles} cycles" "$smoke_dir/explain.txt" || {
    echo "FAIL: critpath.json cycles ($json_cycles) disagree with the rendered report" >&2
    exit 1
}

echo "== smoke: event engine is byte-identical to ticked =="
# The event engine must be a pure wall-clock optimization: the whole
# experiment suite, probes off and on, renders byte-for-byte the same
# under both engines (BENCH_repro.json differs only in wall-clock and
# fast-forward fields, so the rendered reports are the identity check).
(cd "$smoke_dir" && "$OLDPWD/target/release/repro" all 8 --jobs 2 --engine ticked > all_ticked.txt)
(cd "$smoke_dir" && "$OLDPWD/target/release/repro" all 8 --jobs 2 --engine event > all_event.txt)
if ! diff -q "$smoke_dir/all_ticked.txt" "$smoke_dir/all_event.txt"; then
    echo "FAIL: --engine event changed repro all output (probes off)" >&2
    exit 1
fi
(cd "$smoke_dir" && "$OLDPWD/target/release/repro" table2 4 --obs obs_eng_t --engine ticked > t2_obs_ticked.txt)
(cd "$smoke_dir" && "$OLDPWD/target/release/repro" table2 4 --obs obs_eng_e --engine event > t2_obs_event.txt)
if ! diff -q "$smoke_dir/t2_obs_ticked.txt" "$smoke_dir/t2_obs_event.txt"; then
    echo "FAIL: --engine event changed table2 output (probes on)" >&2
    exit 1
fi
if ! diff -r "$smoke_dir/obs_eng_t" "$smoke_dir/obs_eng_e" > /dev/null; then
    echo "FAIL: --engine event changed the observability exports" >&2
    exit 1
fi

echo "== smoke: selftest under the event engine =="
(cd "$smoke_dir" && "$OLDPWD/target/release/repro" selftest 8 --jobs 2 --engine event)

echo "== smoke: sharded execution =="
# `--shards 1` is the exact serial path: byte-identical output. Higher
# shard counts are divergence-bounded (checked below via the bench's
# reported max divergence) and the selftest differential must pass
# under them.
(cd "$smoke_dir" && "$OLDPWD/target/release/repro" all 8 --jobs 2 > all_serial_ref.txt)
(cd "$smoke_dir" && "$OLDPWD/target/release/repro" all 8 --jobs 2 --shards 1 > all_shards1.txt)
if ! diff -q "$smoke_dir/all_serial_ref.txt" "$smoke_dir/all_shards1.txt"; then
    echo "FAIL: --shards 1 changed repro all output" >&2
    exit 1
fi
(cd "$smoke_dir" && "$OLDPWD/target/release/repro" selftest 8 --jobs 2 --shards 4)

echo "== smoke: host flight recorder =="
# The recorder must be a pure observer: rendered output byte-identical
# with recording on, under both engines, and the recording itself must
# pass obs-validate's flight contract (completed spans, categorized
# events, finite timestamps).
(cd "$smoke_dir" && "$OLDPWD/target/release/repro" all 8 --jobs 2 \
    --flight run.flight.json > all_flight.txt 2> flight.err)
if ! diff -q "$smoke_dir/all_serial_ref.txt" "$smoke_dir/all_flight.txt"; then
    echo "FAIL: --flight changed repro all output" >&2
    exit 1
fi
grep -q '"flight":{"file":"run.flight.json"}' "$smoke_dir/BENCH_repro.json" || {
    echo "FAIL: flight recording not recorded in BENCH_repro.json" >&2
    exit 1
}
(cd "$smoke_dir" && "$OLDPWD/target/release/repro" all 8 --jobs 2 --engine ticked \
    --flight flight_ticked.flight.json > all_ticked_flight.txt 2> /dev/null)
if ! diff -q "$smoke_dir/all_ticked.txt" "$smoke_dir/all_ticked_flight.txt"; then
    echo "FAIL: --flight changed repro all output under the ticked engine" >&2
    exit 1
fi
mkdir "$smoke_dir/flight_dir"
cp "$smoke_dir/run.flight.json" "$smoke_dir/flight_ticked.flight.json" "$smoke_dir/flight_dir/"
target/release/repro obs-validate "$smoke_dir/flight_dir"

echo "== smoke: engine phase-cost profile =="
# The binary enforces the hostprof sum-to-elapsed identity and
# bit-identical statistics on every profiled cell (it exits nonzero on
# any violation); obs-validate re-checks the identity and schema from
# the exported JSON. The full 36-cell identity sweep runs inside
# `repro selftest` (hostprof-identity stage) above.
(cd "$smoke_dir" && MCL_ONLY=compress "$OLDPWD/target/release/repro" profile 8 \
    --obs hostprof_out > profile.txt)
grep -q 'compress:.*ns/live-cycle' "$smoke_dir/profile.txt" || {
    echo "FAIL: profile report missing the compress cell" >&2
    exit 1
}
test -s "$smoke_dir/hostprof_out/compress.hostprof.json" || {
    echo "FAIL: compress.hostprof.json was not written" >&2
    exit 1
}
target/release/repro obs-validate "$smoke_dir/hostprof_out"
grep -q '"profile":{"dir":"hostprof_out"}' "$smoke_dir/BENCH_repro.json" || {
    echo "FAIL: profile run not recorded in BENCH_repro.json" >&2
    exit 1
}

echo "== smoke: per-instruction pipetrace =="
# One cell under each engine. The binary enforces that the instrumented
# companion run is byte-identical to the uninstrumented one (probe
# on/off identity — it exits nonzero on any divergence), and the
# retire-exactness identity on the recorded lifecycle; the full 36-cell
# identity sweep runs inside `repro selftest` (pipetrace-identity
# stage) above. Here CI additionally demands the rendered report and
# both export files are byte-identical across engines, revalidates the
# exports with obs-validate, and cross-checks the exported cycle and
# retirement counts against BENCH_repro.json and the rendered report.
(cd "$smoke_dir" && MCL_ONLY=compress "$OLDPWD/target/release/repro" pipetrace 8 \
    --engine ticked --out pipetrace_out_ticked > pipetrace_ticked.txt)
(cd "$smoke_dir" && MCL_ONLY=compress "$OLDPWD/target/release/repro" pipetrace 8 \
    --engine event --out pipetrace_out > pipetrace.txt)
if ! diff -q "$smoke_dir/pipetrace_ticked.txt" "$smoke_dir/pipetrace.txt"; then
    echo "FAIL: pipetrace report differs between engines" >&2
    exit 1
fi
if ! diff -r "$smoke_dir/pipetrace_out_ticked" "$smoke_dir/pipetrace_out" > /dev/null; then
    echo "FAIL: pipetrace exports differ between engines" >&2
    exit 1
fi
test -s "$smoke_dir/pipetrace_out/compress.konata" || {
    echo "FAIL: compress.konata was not written" >&2
    exit 1
}
target/release/repro obs-validate "$smoke_dir/pipetrace_out"
grep -q '"pipetrace":{"dir":"pipetrace_out","range":null,"baseline":null}' "$smoke_dir/BENCH_repro.json" || {
    echo "FAIL: pipetrace run not recorded in BENCH_repro.json" >&2
    exit 1
}
# The exported target cycles must be the cycles the cell actually
# simulated, and the exported retirement count must match the rendered
# report — the retire-exactness identity, re-checked across artifacts.
pt_json="$smoke_dir/pipetrace_out/compress.pipetrace.json"
pt_cycles="$(grep -o '"cycles":[0-9]*' "$pt_json" | head -1 | cut -d: -f2)"
grep -q "\"simulated_cycles\":${pt_cycles}" "$smoke_dir/BENCH_repro.json" || {
    echo "FAIL: pipetrace.json cycles ($pt_cycles) disagree with BENCH_repro.json" >&2
    exit 1
}
pt_retired="$(grep -o '"retired":[0-9]*' "$pt_json" | head -1 | cut -d: -f2)"
grep -q "of ${pt_retired} retired" "$smoke_dir/pipetrace.txt" || {
    echo "FAIL: pipetrace.json retirements ($pt_retired) disagree with the rendered report" >&2
    exit 1
}
# Differential + ranged mode: slips vs the single-cluster baseline.
(cd "$smoke_dir" && MCL_ONLY=compress "$OLDPWD/target/release/repro" pipetrace 8 \
    --baseline single --range 100..200 --out pipetrace_diff > pipetrace_diff.txt)
grep -q '(range 100..200)' "$smoke_dir/pipetrace_diff.txt" || {
    echo "FAIL: pipetrace --range not reflected in the report" >&2
    exit 1
}
grep -q 'vs single (' "$smoke_dir/pipetrace_diff.txt" || {
    echo "FAIL: pipetrace --baseline missing from the report" >&2
    exit 1
}
target/release/repro obs-validate "$smoke_dir/pipetrace_diff"

echo "== smoke: chaos fault-injection campaign =="
# Every injected fault must surface as a structured error (invariant
# violation or wedge) — never silently perturb statistics. The campaign
# sweeps fault x workload x engine x check level and the binary exits
# nonzero unless 100% of cells detect and 0% leak.
(cd "$smoke_dir" && "$OLDPWD/target/release/repro" chaos --jobs 2 > chaos.txt)
grep -q 'chaos: PASS (100% detected, 0% leaked)' "$smoke_dir/chaos.txt" || {
    echo "FAIL: chaos campaign did not report a full pass" >&2
    cat "$smoke_dir/chaos.txt" >&2
    exit 1
}
grep -q ' 0 leaked into stats; 0 broken cells' "$smoke_dir/chaos.txt" || {
    echo "FAIL: chaos campaign summary line malformed or reporting leaks" >&2
    exit 1
}

echo "== smoke: persistent result store (cold vs warm) =="
# A warm `--store` run must render byte-identical output while serving
# every serial simulation from disk. The speedup guard compares the
# cells' simulate time (the cached work), not total wall — traces are
# rebuilt either way; override with MCL_STORE_GUARD_SPEEDUP.
store_speedup_floor="${MCL_STORE_GUARD_SPEEDUP:-5.0}"
(cd "$smoke_dir" && "$OLDPWD/target/release/repro" all 8 --jobs 1 --store result_store > all_cold.txt)
cold_wall="$(grep -o '"total_simulate_seconds":[0-9.]*' "$smoke_dir/BENCH_repro.json" | head -1 | cut -d: -f2)"
grep -q '"disk_stores":0' "$smoke_dir/BENCH_repro.json" && {
    echo "FAIL: cold --store run persisted nothing" >&2
    exit 1
}
(cd "$smoke_dir" && "$OLDPWD/target/release/repro" all 8 --jobs 1 --store result_store > all_warm.txt)
warm_wall="$(grep -o '"total_simulate_seconds":[0-9.]*' "$smoke_dir/BENCH_repro.json" | head -1 | cut -d: -f2)"
if ! diff -q "$smoke_dir/all_cold.txt" "$smoke_dir/all_warm.txt"; then
    echo "FAIL: warm --store run changed repro all output" >&2
    exit 1
fi
grep -q '"disk_misses":0' "$smoke_dir/BENCH_repro.json" || {
    echo "FAIL: warm --store run missed the disk cache" >&2
    exit 1
}
grep -q '"disk_quarantined":0' "$smoke_dir/BENCH_repro.json" || {
    echo "FAIL: warm --store run quarantined entries" >&2
    exit 1
}
if grep -q '"disk_hits":0' "$smoke_dir/BENCH_repro.json"; then
    echo "FAIL: warm --store run served no cells from disk" >&2
    exit 1
fi
if ! awk -v c="$cold_wall" -v w="$warm_wall" -v f="$store_speedup_floor" \
        'BEGIN { exit !(w <= 0.000001 || c / w >= f) }'; then
    echo "FAIL: warm --store simulate time (${warm_wall}s) not ${store_speedup_floor}x under cold (${cold_wall}s)" >&2
    exit 1
fi
echo "store guard OK: simulate ${cold_wall}s cold vs ${warm_wall}s warm (floor ${store_speedup_floor}x), output byte-identical"

echo "== guard: event-engine throughput =="
# `repro bench` is min-of-3 per (workload, engine) and cross-checks the
# engines' statistics on every run. The skip totals are deterministic,
# so they get a hard floor; the wall-clock ratio is noise-bound on
# shared hosts (the dead fraction of this workload mix is time-weighted
# ~1.2x, see EXPERIMENTS.md), so its guard is a no-regression bound
# (override with MCL_ENGINE_GUARD_RATIO).
ratio_floor="${MCL_ENGINE_GUARD_RATIO:-0.90}"
skip_floor="${MCL_ENGINE_GUARD_SKIP_PCT:-25.0}"
(cd "$smoke_dir" && "$OLDPWD/target/release/repro" bench 8 > bench.txt)
cat "$smoke_dir/bench.txt"
ratio="$(grep -o 'event/ticked = [0-9.]*' "$smoke_dir/bench.txt" | grep -o '[0-9.]*$')"
skip_pct="$(grep -o 'cycles ([0-9.]*%)' "$smoke_dir/bench.txt" | grep -o '[0-9.]*')"
if [ -z "$ratio" ] || [ -z "$skip_pct" ]; then
    echo "FAIL: could not parse the engine-bench summary lines" >&2
    exit 1
fi
if ! awk -v p="$skip_pct" -v f="$skip_floor" 'BEGIN { exit !(p >= f) }'; then
    echo "FAIL: event engine skipped only ${skip_pct}% of cycles (floor ${skip_floor}%)" >&2
    exit 1
fi
if ! awk -v r="$ratio" -v f="$ratio_floor" 'BEGIN { exit !(r >= f) }'; then
    echo "FAIL: event/ticked throughput ratio ${ratio} below floor ${ratio_floor}" >&2
    exit 1
fi
echo "engine guard OK: ratio ${ratio} (floor ${ratio_floor}), skipped ${skip_pct}% (floor ${skip_floor}%)"

append_history() {
    # Appends a `repro bench` run's schema-versioned summary line to the
    # perf trajectory log so the trend is tracked across PRs. The binary
    # validates every candidate (JSON shape, required keys, current
    # schema, no duplicates) and skips-with-warning instead of poisoning
    # the log; malformed existing lines are reported too.
    local src="$1" line
    line="$(grep -o 'engine-bench: history = {.*}' "$src" | sed 's/^engine-bench: history = //')"
    if [ -z "$line" ]; then
        echo "FAIL: no history summary line in $src" >&2
        exit 1
    fi
    printf '%s\n' "$line" | target/release/repro history-append BENCH_repro.history.jsonl
}
append_history "$smoke_dir/bench.txt"

echo "== guard: sharded-path throughput and divergence =="
# The same bench with `--shards 4`: the divergence bound must hold (the
# run reports the max across workloads; above the bound the engine
# falls back to serial, so a healthy report stays under it), and the
# sharded/event wall-clock ratio gets a catastrophic-regression floor.
# On single-core CI hosts sharding cannot beat serial (the workers time
# slice), so the default floor only catches the sharded path becoming
# pathologically slow; raise MCL_SHARD_GUARD_RATIO on multi-core hosts.
shard_ratio_floor="${MCL_SHARD_GUARD_RATIO:-0.45}"
shard_divergence_cap="${MCL_SHARD_GUARD_DIVERGENCE:-0.02}"
(cd "$smoke_dir" && "$OLDPWD/target/release/repro" bench 8 --shards 4 > bench_sharded.txt)
cat "$smoke_dir/bench_sharded.txt"
shard_ratio="$(grep -o 'sharded/event = [0-9.]*' "$smoke_dir/bench_sharded.txt" | grep -o '[0-9.]*$')"
shard_div="$(grep -o 'max divergence [0-9.]*' "$smoke_dir/bench_sharded.txt" | grep -o '[0-9.]*$')"
if [ -z "$shard_ratio" ] || [ -z "$shard_div" ]; then
    echo "FAIL: could not parse the sharded bench summary line" >&2
    exit 1
fi
if ! awk -v d="$shard_div" -v c="$shard_divergence_cap" 'BEGIN { exit !(d <= c) }'; then
    echo "FAIL: sharded max divergence ${shard_div} above cap ${shard_divergence_cap}" >&2
    exit 1
fi
if ! awk -v r="$shard_ratio" -v f="$shard_ratio_floor" 'BEGIN { exit !(r >= f) }'; then
    echo "FAIL: sharded/event throughput ratio ${shard_ratio} below floor ${shard_ratio_floor}" >&2
    exit 1
fi
echo "shard guard OK: ratio ${shard_ratio} (floor ${shard_ratio_floor}), divergence ${shard_div} (cap ${shard_divergence_cap})"
append_history "$smoke_dir/bench_sharded.txt"

echo "== trend: perf trajectory (soft gate) =="
# Noise-banded regression analysis over the history just appended to,
# mixed schema versions included. Soft: one noisy CI host must not
# block a merge, but the ranked report lands in the log either way
# and a regression is loudly flagged.
if target/release/repro trend BENCH_repro.history.jsonl --gate; then
    echo "trend gate OK"
else
    echo "WARN: trend gate flagged a perf regression (soft stage; see the report above)" >&2
fi

echo "== guard: disabled-probe overhead =="
# Compare min-of-3 serial `repro all` wall time against the previous
# commit. This also bounds the disabled cost of the hostprof phase
# profiler and the flight recorder (neither flag is passed here, so
# their hooks must compile to nothing / one relaxed load). Wall-clock
# comparisons on shared CI hosts are noisy, so the guard uses the min
# of three runs and a generous default tolerance (override with
# MCL_OBS_GUARD_TOLERANCE); it warns and skips when the baseline
# cannot be built (shallow clone, first commit, ...).
guard_tol="${MCL_OBS_GUARD_TOLERANCE:-0.15}"
baseline_ref="${MCL_BASELINE_REF:-HEAD~1}"
base_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"; git worktree remove --force "$base_dir/src" >/dev/null 2>&1 || true; rm -rf "$base_dir"' EXIT
min_wall() {
    # Runs `repro all 8 --jobs 1` three times with the given binary and
    # prints the minimum total_wall_seconds reported in BENCH_repro.json.
    local bin="$1" best="" wall
    for _ in 1 2 3; do
        (cd "$smoke_dir" && "$bin" all 8 --jobs 1 > /dev/null)
        wall="$(grep -o '"total_wall_seconds":[0-9.]*' "$smoke_dir/BENCH_repro.json" | head -1 | cut -d: -f2)"
        best="$(awk -v a="${best:-$wall}" -v b="$wall" 'BEGIN { print (a < b) ? a : b }')"
    done
    echo "$best"
}
if git worktree add --detach "$base_dir/src" "$baseline_ref" >/dev/null 2>&1 \
    && (cd "$base_dir/src" && CARGO_TARGET_DIR="$base_dir/target" cargo build --release -q -p mcl-bench); then
    current="$(min_wall "$PWD/target/release/repro")"
    baseline="$(min_wall "$base_dir/target/release/repro")"
    if awk -v cur="$current" -v base="$baseline" -v tol="$guard_tol" \
            'BEGIN { exit !(cur <= base * (1 + tol)) }'; then
        echo "overhead OK: ${current}s current vs ${baseline}s baseline (tolerance ${guard_tol})"
    else
        echo "FAIL: disabled-probe overhead ${current}s vs baseline ${baseline}s exceeds tolerance ${guard_tol}" >&2
        exit 1
    fi
else
    echo "WARN: baseline $baseline_ref unavailable; skipping overhead guard" >&2
fi

echo "CI OK"
