//! A compress-shaped workload: integer LZW-style hash-table compression.
//!
//! SPEC92 `compress` is an integer benchmark dominated by a hash-table
//! probe loop: compute a code from the input stream, probe the table,
//! branch on whether the probe hits (data-dependent, poorly
//! predictable), update the table or emit a code, and append to a
//! sequential output stream. This kernel reproduces that shape: an
//! in-program LCG plays the input stream, a 2048-entry table provides
//! the probe traffic, and every iteration stores to a streaming output
//! buffer; the combined footprint fits the data cache only when the
//! access order stays regular, so miss behaviour is sensitive to issue
//! disorder (the effect behind the paper's compress anomaly).

use mcl_trace::{Program, ProgramBuilder, Vreg};

/// Base address of the hash table (2048 × 8 bytes).
pub const TABLE_BASE: u64 = 0x0030_0000;
/// Base address of the output stream.
pub const OUTPUT_BASE: u64 = 0x0040_0000;

/// Builds the workload with `iters` input symbols (about 21 dynamic
/// instructions each).
#[must_use]
pub fn build(iters: u32) -> Program<Vreg> {
    let mut b = ProgramBuilder::new("compress");

    // Global-register candidates: the table base (global-pointer-like)
    // and the output base (stack-pointer-like), both read-only and read
    // from every cluster.
    let gp = b.vreg_int("gp_table");
    let sp = b.vreg_int("sp_output");
    b.designate_global_candidate(gp);
    b.designate_global_candidate(sp);
    b.reg_init(gp, TABLE_BASE);
    b.reg_init(sp, OUTPUT_BASE);

    let x = b.vreg_int("lcg");
    let code = b.vreg_int("code");
    let i = b.vreg_int("i");
    let outoff = b.vreg_int("outoff");
    let hits = b.vreg_int("hits");
    let misses = b.vreg_int("misses");

    let probe = b.new_block("probe");
    let miss = b.new_block("miss");
    let hit = b.new_block("hit");
    let join = b.new_block("join");
    let flush = b.new_block("flush");
    let skip_flush = b.new_block("skip_flush");
    let done = b.new_block("done");

    // entry
    b.lda(x, 0x2545_F491);
    b.lda(code, 0);
    b.lda(outoff, 0);
    b.lda(hits, 0);
    b.lda(misses, 0);
    b.lda(i, i64::from(iters));

    // probe: one input symbol.
    b.switch_to(probe);
    let byte = b.vreg_int("byte");
    let t = b.vreg_int("t");
    let h = b.vreg_int("h");
    let addr = b.vreg_int("addr");
    let v = b.vreg_int("v");
    let m = b.vreg_int("m");
    let va = b.vreg_int("va");
    let xa = b.vreg_int("xa");
    b.mulq_imm(x, x, 1_103_515_245);
    b.addq_imm(x, x, 12_345);
    b.srl_imm(byte, x, 16);
    b.and_imm(byte, byte, 255);
    b.sll_imm(t, code, 4);
    b.xor(code, t, byte);
    b.and_imm(code, code, 2047);
    b.sll_imm(h, code, 3);
    b.addq(addr, gp, h);
    b.ldq(v, addr, 0);
    // The probe test: compare the low bits of the stored key with the
    // low bits of the current input — data dependent, ~25% match.
    b.and_imm(va, v, 3);
    b.and_imm(xa, x, 3);
    b.cmpeq(m, va, xa);
    b.bne(m, hit);

    // miss: install the new key.
    b.switch_to(miss);
    b.stq(addr, 0, x);
    b.addq_imm(misses, misses, 1);
    b.br(join);

    // hit
    b.switch_to(hit);
    b.addq_imm(hits, hits, 1);

    // join: emit a code to the sequential output stream.
    b.switch_to(join);
    let outaddr = b.vreg_int("outaddr");
    b.addq(outaddr, sp, outoff);
    b.stq(outaddr, 0, code);
    b.addq_imm(outoff, outoff, 8);
    b.and_imm(outoff, outoff, 0x1FFF); // wrap the stream at 8 KB
    // Periodic "flush" every eighth symbol: a history-predictable
    // pattern — correctly predicted only while the predictor's tables
    // and history are fresh (the dispatch-queue-size effect behind the
    // paper's compress anomaly).
    let phase = b.vreg_int("phase");
    b.and_imm(phase, i, 7);
    b.bne(phase, skip_flush);
    b.switch_to(flush);
    let fsum = b.vreg_int("fsum");
    b.addq(fsum, hits, misses);
    b.stq(sp, -24, fsum);
    b.switch_to(skip_flush);
    b.subq_imm(i, i, 1);
    b.bne(i, probe);

    // done: publish the counters.
    b.switch_to(done);
    b.stq(sp, -16, hits);
    b.stq(sp, -8, misses);

    b.finish().expect("compress workload is well formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcl_trace::Vm;

    #[test]
    fn executes_and_counts_every_symbol() {
        let p = build(500);
        let mut vm = Vm::new(&p);
        vm.run_to_end().unwrap();
        let hits = vm.memory().read(OUTPUT_BASE - 16);
        let misses = vm.memory().read(OUTPUT_BASE - 8);
        assert_eq!(hits + misses, 500);
        assert!(hits > 0, "some probes should hit");
        assert!(misses > 0, "some probes should miss");
    }

    #[test]
    fn probe_branch_is_data_dependent() {
        // The hit rate should hover around 25%, far from always/never.
        let p = build(2000);
        let mut vm = Vm::new(&p);
        vm.run_to_end().unwrap();
        let hits = vm.memory().read(OUTPUT_BASE - 16) as f64 / 2000.0;
        assert!((0.1..0.5).contains(&hits), "hit rate {hits}");
    }

    #[test]
    fn dynamic_length_scales_with_iters() {
        let p100 = build(100);
        let p200 = build(200);
        let mut vm = Vm::new(&p100);
        let short = vm.run_to_end().unwrap();
        let mut vm = Vm::new(&p200);
        let long = vm.run_to_end().unwrap();
        assert!(long > short + 1000);
    }
}
