//! SPEC92-shaped synthetic benchmark programs and microkernels.
//!
//! The paper evaluates six SPEC92 benchmarks (compress, doduc, gcc1,
//! ora, su2cor, tomcatv) by instrumenting native Alpha binaries with
//! ATOM. Neither the 1992 binaries nor ATOM are available, so this crate
//! provides the substitution documented in DESIGN.md: intermediate-
//! language programs *engineered to the published behavioural profile*
//! of each benchmark — instruction-class mix, basic-block shape, branch
//! predictability, live-range structure, and memory locality — executed
//! by the `mcl-trace` virtual machine with real data and control
//! dependences:
//!
//! - [`compress`] — integer LZW-style hash-table compression: data-
//!   dependent probe branches, table stores, a sequential output stream;
//! - [`gcc`] — integer, very branchy, short blocks: pointer chasing over
//!   a scrambled linked ring with tag-dispatched cases;
//! - [`doduc`] — mixed floating point with data-dependent control and
//!   occasional divides (Monte-Carlo-style kernel);
//! - [`ora`] — a tight ray-tracing-style floating-point kernel dominated
//!   by square root and divide on the critical path;
//! - [`su2cor`] — regular vector loops over arrays with a reduction;
//! - [`tomcatv`] — a two-dimensional five-point stencil over a grid.
//!
//! [`suite::Benchmark`] enumerates the six with their default dynamic
//! sizes and the paper's Table 2 reference numbers. [`microkernels`]
//! holds small IL programs used by tests and examples, and [`scenarios`]
//! builds the exact machine-level programs behind the paper's
//! Figures 2–5 timelines.

pub mod compress;
pub mod doduc;
pub mod gcc;
pub mod microkernels;
pub mod ora;
pub mod scenarios;
pub mod su2cor;
pub mod suite;
pub mod tomcatv;

pub use suite::Benchmark;

/// The deterministic linear congruential generator used host-side to
/// build initial memory images (and mirrored in-program by the
/// benchmarks for data-dependent behaviour).
#[derive(Debug, Clone)]
pub struct HostLcg {
    state: u64,
}

impl HostLcg {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> HostLcg {
        HostLcg { state: seed }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.state
    }

    /// A value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        (self.next_u64() >> 16) % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_lcg_is_deterministic() {
        let mut a = HostLcg::new(42);
        let mut b = HostLcg::new(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut g = HostLcg::new(7);
        for _ in 0..1000 {
            assert!(g.below(17) < 17);
        }
    }
}
