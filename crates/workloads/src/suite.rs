//! The benchmark suite: the six SPEC92 analogues of the paper's
//! evaluation, with their paper reference numbers.

use mcl_trace::{Program, Vreg};

/// The six benchmarks of the paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Integer LZW-style compression (`compress`).
    Compress,
    /// Mixed floating point, branchy (`doduc`).
    Doduc,
    /// Very branchy integer, pointer chasing (`gcc1`).
    Gcc1,
    /// Divider-bound floating-point kernel (`ora`).
    Ora,
    /// Regular floating-point vector loops (`su2cor`).
    Su2cor,
    /// Two-dimensional stencil (`tomcatv`).
    Tomcatv,
}

impl Benchmark {
    /// All six, in the paper's Table 2 row order.
    pub const ALL: [Benchmark; 6] = [
        Benchmark::Compress,
        Benchmark::Doduc,
        Benchmark::Gcc1,
        Benchmark::Ora,
        Benchmark::Su2cor,
        Benchmark::Tomcatv,
    ];

    /// The benchmark's name, as printed in the paper.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Compress => "compress",
            Benchmark::Doduc => "doduc",
            Benchmark::Gcc1 => "gcc1",
            Benchmark::Ora => "ora",
            Benchmark::Su2cor => "su2cor",
            Benchmark::Tomcatv => "tomcatv",
        }
    }

    /// Builds the benchmark's intermediate-language program at a given
    /// scale (iterations / passes / sweeps; see each module's docs).
    #[must_use]
    pub fn build(self, scale: u32) -> Program<Vreg> {
        match self {
            Benchmark::Compress => crate::compress::build(scale),
            Benchmark::Doduc => crate::doduc::build(scale),
            Benchmark::Gcc1 => crate::gcc::build(scale),
            Benchmark::Ora => crate::ora::build(scale),
            Benchmark::Su2cor => crate::su2cor::build(scale),
            Benchmark::Tomcatv => crate::tomcatv::build(scale),
        }
    }

    /// A default scale giving roughly 100–200 k dynamic instructions —
    /// long enough for warm caches and trained predictors, short enough
    /// for quick reproduction runs.
    #[must_use]
    pub fn default_scale(self) -> u32 {
        match self {
            Benchmark::Compress => 8_000,
            Benchmark::Doduc => 6_000,
            Benchmark::Gcc1 => 8_000,
            Benchmark::Ora => 6_000,
            Benchmark::Su2cor => 4,
            Benchmark::Tomcatv => 4,
        }
    }

    /// Builds the benchmark at its default scale.
    #[must_use]
    pub fn build_default(self) -> Program<Vreg> {
        self.build(self.default_scale())
    }

    /// The default scale divided by `divisor` (for quick runs), clamped
    /// so it never reaches zero.
    #[must_use]
    pub fn scaled(self, divisor: u32) -> u32 {
        (self.default_scale() / divisor.max(1)).max(1)
    }

    /// The paper's Table 2 percentages, `(none, local)`: the speedup
    /// (positive) or slowdown (negative) of the dual-cluster processor
    /// against the single-cluster processor without rescheduling and
    /// with the local scheduler.
    #[must_use]
    pub fn paper_table2(self) -> (i32, i32) {
        match self {
            Benchmark::Compress => (-14, 6),
            Benchmark::Doduc => (-21, -15),
            Benchmark::Gcc1 => (-15, -10),
            Benchmark::Ora => (-5, -22),
            Benchmark::Su2cor => (-36, -25),
            Benchmark::Tomcatv => (-41, -19),
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcl_trace::Vm;

    #[test]
    fn every_benchmark_builds_and_runs_small() {
        for bench in Benchmark::ALL {
            let p = bench.build(bench.default_scale() / 100 + 1);
            assert!(p.validate().is_ok(), "{bench} invalid");
            let mut vm = Vm::new(&p);
            let steps = vm.run_to_end().unwrap_or_else(|e| panic!("{bench}: {e}"));
            assert!(steps > 100, "{bench} too short: {steps}");
        }
    }

    #[test]
    fn default_scales_give_medium_traces() {
        for bench in Benchmark::ALL {
            let p = bench.build_default();
            let mut vm = Vm::new(&p);
            let steps = vm.run_to_end().unwrap();
            assert!(
                (50_000..2_000_000).contains(&steps),
                "{bench}: {steps} dynamic instructions"
            );
        }
    }

    #[test]
    fn paper_reference_numbers_match_table2() {
        // Spot checks transcribed from the paper.
        assert_eq!(Benchmark::Compress.paper_table2(), (-14, 6));
        assert_eq!(Benchmark::Tomcatv.paper_table2(), (-41, -19));
        assert_eq!(Benchmark::Ora.paper_table2(), (-5, -22));
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = Benchmark::ALL.iter().map(|b| b.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6);
    }
}
