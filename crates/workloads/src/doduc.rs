//! A doduc-shaped workload: mixed floating point with data-dependent
//! control.
//!
//! SPEC92 `doduc` (a Monte-Carlo nuclear-reactor simulation) mixes
//! moderate-length floating-point blocks with data-dependent branching
//! and occasional divides. This kernel draws pseudo-random samples with
//! an integer LCG, converts them to floating point, runs a multiply/add
//! evaluation chain, and branches on sample bits to one of two update
//! paths — one of which performs a floating-point divide.

use mcl_trace::{Program, ProgramBuilder, Vreg};

/// Where the kernel publishes its accumulators.
pub const RESULT_BASE: u64 = 0x0070_0000;

/// Builds the workload with `iters` samples (about 28 dynamic
/// instructions each).
#[must_use]
pub fn build(iters: u32) -> Program<Vreg> {
    let mut b = ProgramBuilder::new("doduc");

    let sp = b.vreg_int("sp_out");
    b.designate_global_candidate(sp);
    b.reg_init(sp, RESULT_BASE);

    let x = b.vreg_int("lcg");
    let i = b.vreg_int("i");
    let k1 = b.vreg_fp("k1");
    let k2 = b.vreg_fp("k2");
    let acc = b.vreg_fp("acc");
    let acc2 = b.vreg_fp("acc2");
    let ti = b.vreg_int("ti");

    // Layout: `accumulate` is the fall-through of the sample branch;
    // `divide` (the taken path) falls through into `join`.
    let sample = b.new_block("sample");
    let accumulate = b.new_block("accumulate");
    let divide = b.new_block("divide");
    let join = b.new_block("join");
    let done = b.new_block("done");

    // entry: constants and state.
    b.lda(x, 0x1234_5678);
    b.lda(i, i64::from(iters));
    b.lda(ti, 3);
    b.cvtqt(k1, ti);
    b.lda(ti, 7);
    b.cvtqt(k2, ti);
    b.lda(ti, 1);
    b.cvtqt(acc, ti);
    b.cvtqt(acc2, ti);

    // sample: draw two samples and evaluate two independent chains
    // (doduc's blocks carry real instruction-level parallelism).
    b.switch_to(sample);
    let bits = b.vreg_int("bits");
    let bits2 = b.vreg_int("bits2");
    let f = b.vreg_fp("f");
    let g = b.vreg_fp("g");
    let t1 = b.vreg_fp("t1");
    let t2 = b.vreg_fp("t2");
    let t3 = b.vreg_fp("t3");
    let u1 = b.vreg_fp("u1");
    let u2 = b.vreg_fp("u2");
    let u3 = b.vreg_fp("u3");
    let sel = b.vreg_int("sel");
    b.mulq_imm(x, x, 1_103_515_245);
    b.addq_imm(x, x, 12_345);
    b.srl_imm(bits, x, 20);
    b.and_imm(bits, bits, 0xFFFF);
    b.srl_imm(bits2, x, 8);
    b.and_imm(bits2, bits2, 0xFFFF);
    b.cvtqt(f, bits);
    b.cvtqt(g, bits2);
    // chain 1
    b.mult(t1, f, k1);
    b.addt(t2, t1, k2);
    b.mult(t3, t2, t1);
    b.subt(t3, t3, f);
    // chain 2 (independent of chain 1)
    b.mult(u1, g, k2);
    b.addt(u2, u1, k1);
    b.mult(u3, u2, u1);
    b.subt(u3, u3, g);
    b.and_imm(sel, x, 7);
    b.cmpeq_imm(sel, sel, 0);
    b.bne(sel, divide); // ~12.5% of samples take the divide path

    // accumulate (common path).
    b.switch_to(accumulate);
    b.addt(acc, acc, t2);
    b.mult(t1, t3, k1);
    b.addt(acc2, acc2, u3);
    b.addt(acc, acc, t1);
    b.br(join);

    // divide (rare path): a double-precision divide on the accumulator.
    b.switch_to(divide);
    let d = b.vreg_fp("d");
    b.addt(d, t3, u3);
    b.divt(acc2, acc2, k2);
    b.addt(acc2, acc2, d);

    // join
    b.switch_to(join);
    b.subq_imm(i, i, 1);
    b.bne(i, sample);

    // done: publish accumulators.
    b.switch_to(done);
    b.stt(sp, 0, acc);
    b.stt(sp, 8, acc2);

    b.finish().expect("doduc workload is well formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcl_isa::InstrClass;
    use mcl_trace::Vm;

    #[test]
    fn executes_and_publishes_results() {
        let p = build(500);
        let mut vm = Vm::new(&p);
        vm.run_to_end().unwrap();
        let acc = f64::from_bits(vm.memory().read(RESULT_BASE));
        assert!(acc.is_finite() && acc != 0.0);
    }

    #[test]
    fn instruction_mix_is_fp_dominated_with_some_divides() {
        let p = build(1000);
        let mut vm = Vm::new(&p);
        let steps = vm.run_collect().unwrap();
        let total = steps.len() as f64;
        let fp = steps
            .iter()
            .filter(|s| matches!(s.op.class(), InstrClass::FpOther | InstrClass::FpDiv))
            .count() as f64;
        let divides = steps.iter().filter(|s| s.op.class() == InstrClass::FpDiv).count() as f64;
        assert!(fp / total > 0.25, "fp fraction {}", fp / total);
        let div_rate = divides / 1000.0;
        assert!((0.05..0.3).contains(&div_rate), "divide path rate {div_rate}");
    }

    #[test]
    fn divide_branch_rate_is_about_an_eighth() {
        let p = build(2000);
        let mut vm = Vm::new(&p);
        let steps = vm.run_collect().unwrap();
        // Count taken outcomes of the `bne sel, divide` branch.
        let (mut taken, mut total) = (0u32, 0u32);
        for s in &steps {
            if let Some(br) = s.branch {
                if br.conditional && s.block.index() == 1 {
                    total += 1;
                    if br.taken {
                        taken += 1;
                    }
                }
            }
        }
        assert_eq!(total, 2000);
        let rate = f64::from(taken) / f64::from(total);
        assert!((0.08..0.2).contains(&rate), "divide rate {rate}");
    }
}
