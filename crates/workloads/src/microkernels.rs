//! Small intermediate-language kernels for tests, examples, and
//! ablations.

use mcl_trace::{Program, ProgramBuilder, Vreg};

/// A single dependent integer add chain of length `len` (serial: at
/// best one instruction per cycle).
#[must_use]
pub fn dependent_chain(len: u32) -> Program<Vreg> {
    let mut b = ProgramBuilder::new("dependent-chain");
    let x = b.vreg_int("x");
    let out = b.vreg_int("out");
    b.lda(x, 1);
    for _ in 0..len {
        b.addq_imm(x, x, 1);
    }
    b.lda(out, 0x4000);
    b.stq(out, 0, x);
    b.finish().expect("well formed")
}

/// `chains` independent dependent chains interleaved in fetch order —
/// ideal material for a balanced partition (each cluster can run half
/// the chains with no inter-cluster traffic).
#[must_use]
pub fn parallel_chains(chains: u32, len: u32) -> Program<Vreg> {
    assert!(chains > 0);
    let mut b = ProgramBuilder::new("parallel-chains");
    let vs: Vec<Vreg> = (0..chains).map(|i| b.vreg_int(&format!("c{i}"))).collect();
    for (i, &v) in vs.iter().enumerate() {
        b.lda(v, i as i64 + 1);
    }
    for _ in 0..len {
        for &v in &vs {
            b.addq_imm(v, v, 1);
        }
    }
    let out = b.vreg_int("out");
    b.lda(out, 0x4000);
    for (i, &v) in vs.iter().enumerate() {
        b.stq(out, (i as i64) * 8, v);
    }
    b.finish().expect("well formed")
}

/// Two mutually dependent values updated alternately — a worst case for
/// partitioning: any split of the pair forces an inter-cluster transfer
/// per instruction.
#[must_use]
pub fn pingpong(rounds: u32) -> Program<Vreg> {
    let mut b = ProgramBuilder::new("pingpong");
    let a = b.vreg_int("a");
    let c = b.vreg_int("c");
    b.lda(a, 0);
    b.lda(c, 1);
    for _ in 0..rounds {
        b.addq(a, a, c);
        b.addq(c, c, a);
    }
    let out = b.vreg_int("out");
    b.lda(out, 0x4000);
    b.stq(out, 0, a);
    b.stq(out, 8, c);
    b.finish().expect("well formed")
}

/// A loop of dependent double-precision divides: bound by the
/// unpipelined divider (16 cycles each, Table 1).
#[must_use]
pub fn divider_chain(iters: u32) -> Program<Vreg> {
    let mut b = ProgramBuilder::new("divider-chain");
    let i = b.vreg_int("i");
    let ti = b.vreg_int("ti");
    let v = b.vreg_fp("v");
    let d = b.vreg_fp("d");
    let body = b.new_block("body");
    let done = b.new_block("done");
    b.lda(i, i64::from(iters));
    b.lda(ti, 1_000_000);
    b.cvtqt(v, ti);
    b.lda(ti, 2);
    b.cvtqt(d, ti);
    b.switch_to(body);
    b.divt(v, v, d);
    b.addt(v, v, d); // keep the value from underflowing to zero
    b.subq_imm(i, i, 1);
    b.bne(i, body);
    b.switch_to(done);
    let out = b.vreg_int("out");
    b.lda(out, 0x4000);
    b.stt(out, 0, v);
    b.finish().expect("well formed")
}

/// A streaming store loop touching `words` sequential memory words —
/// exercises write-allocate misses and the inverted MSHR.
#[must_use]
pub fn streaming_stores(words: u32) -> Program<Vreg> {
    let mut b = ProgramBuilder::new("streaming-stores");
    let i = b.vreg_int("i");
    let p = b.vreg_int("p");
    let v = b.vreg_int("v");
    let body = b.new_block("body");
    b.lda(i, i64::from(words));
    b.lda(p, 0x0100_0000);
    b.lda(v, 7);
    b.switch_to(body);
    b.stq(p, 0, v);
    b.addq_imm(p, p, 8);
    b.addq_imm(v, v, 3);
    b.subq_imm(i, i, 1);
    b.bne(i, body);
    b.finish().expect("well formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcl_trace::Vm;

    #[test]
    fn dependent_chain_computes_its_length() {
        let p = dependent_chain(64);
        let mut vm = Vm::new(&p);
        vm.run_to_end().unwrap();
        assert_eq!(vm.memory().read(0x4000), 65);
    }

    #[test]
    fn parallel_chains_all_advance() {
        let p = parallel_chains(4, 10);
        let mut vm = Vm::new(&p);
        vm.run_to_end().unwrap();
        for i in 0..4u64 {
            assert_eq!(vm.memory().read(0x4000 + i * 8), i + 1 + 10);
        }
    }

    #[test]
    fn pingpong_grows_fibonacci_like() {
        let p = pingpong(5);
        let mut vm = Vm::new(&p);
        vm.run_to_end().unwrap();
        // a,c: (0,1) -> (1,2) -> (3,5) -> (8,13) -> (21,34) -> (55,89)
        assert_eq!(vm.memory().read(0x4000), 55);
        assert_eq!(vm.memory().read(0x4008), 89);
    }

    #[test]
    fn divider_chain_converges() {
        let p = divider_chain(20);
        let mut vm = Vm::new(&p);
        vm.run_to_end().unwrap();
        let v = f64::from_bits(vm.memory().read(0x4000));
        assert!(v.is_finite() && v > 0.0);
    }

    #[test]
    fn streaming_stores_touch_every_word() {
        let p = streaming_stores(100);
        let mut vm = Vm::new(&p);
        vm.run_to_end().unwrap();
        assert_eq!(vm.memory().read(0x0100_0000), 7);
        assert_eq!(vm.memory().read(0x0100_0000 + 99 * 8), 7 + 99 * 3);
    }
}
