//! The machine-level programs behind the paper's Figures 2–5.
//!
//! Each figure shows the dual execution of one `add` whose registers are
//! placed so that exactly one of the Section 2.1 scenarios applies. With
//! the evaluated even/odd assignment, even integer registers live on
//! cluster 0, odd on cluster 1, and `r30` (SP) is global. Two `lda`
//! producers precede the add so its operands carry real dependences, as
//! in the figures.

use mcl_isa::ArchReg;
use mcl_trace::{Program, ProgramBuilder};

/// A scenario program plus the dynamic position of its `add`.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Which Section 2.1 scenario this exercises (1–5).
    pub number: u8,
    /// The paper figure it reproduces (`None` for scenario one, which
    /// has no figure).
    pub figure: Option<u8>,
    /// One-line description.
    pub description: &'static str,
    /// The machine program.
    pub program: Program<ArchReg>,
    /// The dynamic sequence number of the `add` under scrutiny.
    pub add_seq: u64,
}

fn two_producers_and_add(
    name: &str,
    dest: ArchReg,
    a: ArchReg,
    b_reg: ArchReg,
) -> Program<ArchReg> {
    let mut b = ProgramBuilder::<ArchReg>::new(name);
    b.lda(a, 21);
    b.lda(b_reg, 21);
    b.addq(dest, a, b_reg);
    b.finish().expect("scenario program is well formed")
}

/// Scenario one: all three registers local to one cluster — single
/// distribution, no figure.
#[must_use]
pub fn scenario1() -> Scenario {
    Scenario {
        number: 1,
        figure: None,
        description: "all registers on one cluster: single distribution",
        program: two_producers_and_add("scenario1", ArchReg::int(8), ArchReg::int(4), ArchReg::int(6)),
        add_seq: 2,
    }
}

/// Scenario two (Figure 2): one source lives on the other cluster and
/// is forwarded through the operand transfer buffer.
#[must_use]
pub fn scenario2() -> Scenario {
    Scenario {
        number: 2,
        figure: Some(2),
        description: "operand forwarded to the master's cluster",
        program: two_producers_and_add("scenario2", ArchReg::int(4), ArchReg::int(6), ArchReg::int(3)),
        add_seq: 2,
    }
}

/// Scenario three (Figure 3): both sources on the master's cluster, the
/// destination on the other — the result is forwarded through the
/// result transfer buffer.
#[must_use]
pub fn scenario3() -> Scenario {
    Scenario {
        number: 3,
        figure: Some(3),
        description: "result forwarded to the destination's cluster",
        program: two_producers_and_add("scenario3", ArchReg::int(3), ArchReg::int(4), ArchReg::int(6)),
        add_seq: 2,
    }
}

/// Scenario four (Figure 4): a global destination — both clusters
/// receive a copy of the result.
#[must_use]
pub fn scenario4() -> Scenario {
    Scenario {
        number: 4,
        figure: Some(4),
        description: "global destination written in both clusters",
        program: two_producers_and_add("scenario4", ArchReg::SP, ArchReg::int(4), ArchReg::int(6)),
        add_seq: 2,
    }
}

/// Scenario five (Figure 5): sources split across clusters *and* a
/// global destination — the slave forwards an operand, suspends, and is
/// awakened to write its copy of the result.
#[must_use]
pub fn scenario5() -> Scenario {
    Scenario {
        number: 5,
        figure: Some(5),
        description: "operand forwarded and global result written in both clusters",
        program: two_producers_and_add("scenario5", ArchReg::SP, ArchReg::int(4), ArchReg::int(3)),
        add_seq: 2,
    }
}

/// All five scenarios in order.
#[must_use]
pub fn all() -> Vec<Scenario> {
    vec![scenario1(), scenario2(), scenario3(), scenario4(), scenario5()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcl_isa::assign::RegisterAssignment;

    #[test]
    fn each_program_classifies_to_its_scenario() {
        let assign = RegisterAssignment::even_odd_with_default_globals(2);
        for s in all() {
            let (trace, _) = mcl_trace::vm::trace_program(&s.program).unwrap();
            let add = &trace[s.add_seq as usize];
            let d = mcl_core_distribute_stub(add, &assign);
            assert_eq!(d, s.number, "scenario {} misclassified", s.number);
        }
    }

    // The real classification lives in mcl-core (which depends on this
    // crate's outputs only at the bench layer); replicate the check via
    // the register assignment directly to avoid a dependency cycle.
    fn mcl_core_distribute_stub(
        op: &mcl_trace::TraceOp,
        assign: &RegisterAssignment,
    ) -> u8 {
        use mcl_isa::ClusterId;
        let local = |r: mcl_isa::ArchReg| assign.assignment_of(r).local_cluster();
        let dest_global = op.dest.is_some_and(|d| assign.assignment_of(d).is_global());
        let mut clusters: Vec<ClusterId> = Vec::new();
        for r in op.reads().chain(op.dest) {
            if let Some(c) = local(r) {
                if !clusters.contains(&c) {
                    clusters.push(c);
                }
            }
        }
        if !dest_global && clusters.len() <= 1 {
            return 1;
        }
        // Majority for master.
        let mut votes = [0, 0];
        for r in op.reads().chain(op.dest) {
            if let Some(c) = local(r) {
                votes[c.index()] += 1;
            }
        }
        let master = if votes[0] >= votes[1] { ClusterId::C0 } else { ClusterId::C1 };
        let slave = master.other();
        let fwd = op.reads().any(|r| local(r) == Some(slave));
        let recv = dest_global || op.dest.and_then(local) == Some(slave);
        match (fwd, recv, dest_global) {
            (true, false, _) => 2,
            (false, true, false) => 3,
            (false, true, true) => 4,
            (true, true, _) => 5,
            _ => 0,
        }
    }

    #[test]
    fn scenario_programs_execute() {
        for s in all() {
            let mut vm = mcl_trace::Vm::new(&s.program);
            vm.run_to_end().unwrap();
        }
    }
}
