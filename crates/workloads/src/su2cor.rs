//! A su2cor-shaped workload: regular vector loops with a reduction.
//!
//! SPEC92 `su2cor` (quantum-physics Monte Carlo on a lattice) spends its
//! time in regular, vectorisable floating-point loops over arrays. This
//! kernel makes several passes of a fused multiply-add sweep
//! (`c[j] = a[j]*k + b[j]`) with a running reduction — long predictable
//! loops, streaming loads and stores, floating-point-other dominated.

use mcl_trace::{Program, ProgramBuilder, Vreg};

use crate::HostLcg;

/// Vector length (doubles).
pub const VECTOR_LEN: u64 = 4096;
/// Base address of vector `a`.
pub const A_BASE: u64 = 0x0090_0000;
/// Base address of vector `b`.
pub const B_BASE: u64 = 0x00A0_0000;
/// Base address of vector `c` (written).
pub const C_BASE: u64 = 0x00B0_0000;
/// Where the reduction is published.
pub const RESULT_BASE: u64 = 0x00C0_0000;

/// Builds the workload with `passes` full sweeps over the vectors
/// (about 14 dynamic instructions per element visited across the
/// compute sweep and the reduction sweep).
#[must_use]
pub fn build(passes: u32) -> Program<Vreg> {
    let mut b = ProgramBuilder::new("su2cor");

    // Host-initialised input vectors with small bounded values.
    let mut lcg = HostLcg::new(0x5125);
    for j in 0..VECTOR_LEN {
        b.mem_init_f64(A_BASE + j * 8, (lcg.below(1000) as f64) / 100.0);
        b.mem_init_f64(B_BASE + j * 8, (lcg.below(1000) as f64) / 100.0);
    }

    let gp = b.vreg_int("gp_a");
    b.designate_global_candidate(gp);
    b.reg_init(gp, A_BASE);

    let p = b.vreg_int("pass");
    let k = b.vreg_fp("k");
    let sum = b.vreg_fp("sum");
    let ti = b.vreg_int("ti");

    let outer = b.new_block("outer");
    let sweep = b.new_block("sweep");
    let reduce_head = b.new_block("reduce_head");
    let reduce = b.new_block("reduce");
    let next_pass = b.new_block("next_pass");
    let done = b.new_block("done");

    // entry
    b.lda(p, i64::from(passes));
    b.lda(ti, 3);
    b.cvtqt(k, ti);
    b.lda(ti, 0);
    b.cvtqt(sum, ti);

    // outer: reset the element cursor.
    b.switch_to(outer);
    let j = b.vreg_int("j");
    let off = b.vreg_int("off");
    b.lda(j, VECTOR_LEN as i64);
    b.lda(off, 0);

    // sweep: c[j] = a[j]*k + b[j], two elements per iteration — fully
    // parallel work, the vectorisable heart of su2cor.
    b.switch_to(sweep);
    let pa = b.vreg_int("pa");
    let fa = b.vreg_fp("fa");
    let fb = b.vreg_fp("fb");
    let fc = b.vreg_fp("fc");
    let fa2 = b.vreg_fp("fa2");
    let fb2 = b.vreg_fp("fb2");
    let fc2 = b.vreg_fp("fc2");
    b.addq(pa, gp, off);
    b.ldt(fa, pa, 0);
    b.ldt(fb, pa, (B_BASE - A_BASE) as i64);
    b.mult(fc, fa, k);
    b.addt(fc, fc, fb);
    b.stt(pa, (C_BASE - A_BASE) as i64, fc);
    b.ldt(fa2, pa, 8);
    b.ldt(fb2, pa, (B_BASE - A_BASE) as i64 + 8);
    b.mult(fc2, fa2, k);
    b.addt(fc2, fc2, fb2);
    b.stt(pa, (C_BASE - A_BASE) as i64 + 8, fc2);
    b.addq_imm(off, off, 16);
    b.subq_imm(j, j, 2);
    b.bne(j, sweep);

    // reduce_head: reset the cursor for the reduction pass.
    b.switch_to(reduce_head);
    b.lda(j, VECTOR_LEN as i64);
    b.lda(off, 0);

    // reduce: sum += c[j] (a serial accumulation sweep).
    b.switch_to(reduce);
    let pc = b.vreg_int("pc");
    let fr = b.vreg_fp("fr");
    b.lda(pc, C_BASE as i64);
    b.addq(pc, pc, off);
    b.ldt(fr, pc, 0);
    b.addt(sum, sum, fr);
    b.addq_imm(off, off, 8);
    b.subq_imm(j, j, 1);
    b.bne(j, reduce);

    // next_pass
    b.switch_to(next_pass);
    b.subq_imm(p, p, 1);
    b.bne(p, outer);

    // done
    b.switch_to(done);
    let sp = b.vreg_int("out");
    b.lda(sp, RESULT_BASE as i64);
    b.stt(sp, 0, sum);

    b.finish().expect("su2cor workload is well formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcl_trace::Vm;

    #[test]
    fn reduction_matches_a_host_computation() {
        let p = build(1);
        let mut vm = Vm::new(&p);
        vm.run_to_end().unwrap();
        // Recompute host-side.
        let mut lcg = HostLcg::new(0x5125);
        let mut a = Vec::new();
        let mut bv = Vec::new();
        for _ in 0..VECTOR_LEN {
            a.push((lcg.below(1000) as f64) / 100.0);
            bv.push((lcg.below(1000) as f64) / 100.0);
        }
        let expect: f64 = a.iter().zip(&bv).map(|(x, y)| x * 3.0 + y).sum();
        let got = f64::from_bits(vm.memory().read(RESULT_BASE));
        assert!((got - expect).abs() < 1e-6, "got {got}, expect {expect}");
    }

    #[test]
    fn stores_cover_the_output_vector() {
        let p = build(1);
        let mut vm = Vm::new(&p);
        vm.run_to_end().unwrap();
        for j in [0, 1, VECTOR_LEN / 2, VECTOR_LEN - 1] {
            let v = f64::from_bits(vm.memory().read(C_BASE + j * 8));
            assert!(v.is_finite(), "c[{j}] missing");
        }
    }

    #[test]
    fn passes_scale_the_dynamic_length() {
        let p1 = build(1);
        let p2 = build(2);
        let mut vm = Vm::new(&p1);
        let one = vm.run_to_end().unwrap();
        let mut vm = Vm::new(&p2);
        let two = vm.run_to_end().unwrap();
        assert!(two > one + VECTOR_LEN * 5);
    }
}
