//! A tomcatv-shaped workload: a two-dimensional five-point stencil.
//!
//! SPEC92 `tomcatv` (vectorised mesh generation) is dominated by nested
//! loops sweeping a two-dimensional grid with neighbour accesses. This
//! kernel applies a five-point stencil over a 64 × 64 grid of doubles:
//! per point it loads the centre and four neighbours, combines them with
//! multiplies and adds, and stores into an output grid; rows are
//! traversed inner-loop sequentially (unit stride) with the row stride
//! crossing cache lines — `tomcatv`'s signature access pattern.

use mcl_trace::{Program, ProgramBuilder, Vreg};

use crate::HostLcg;

/// Grid edge length (doubles).
pub const N: u64 = 64;
/// Input grid base address.
pub const IN_BASE: u64 = 0x00D0_0000;
/// Output grid base address.
pub const OUT_BASE: u64 = 0x00E0_0000;
/// Where the checksum is published.
pub const RESULT_BASE: u64 = 0x00F0_0000;

/// Builds the workload with `sweeps` full stencil passes (about 17
/// dynamic instructions per interior point).
#[must_use]
pub fn build(sweeps: u32) -> Program<Vreg> {
    let mut b = ProgramBuilder::new("tomcatv");

    let mut lcg = HostLcg::new(0x70CA);
    for r in 0..N {
        for c in 0..N {
            let v = (lcg.below(1000) as f64) / 250.0;
            b.mem_init_f64(IN_BASE + (r * N + c) * 8, v);
        }
    }

    let gp = b.vreg_int("gp_grid");
    b.designate_global_candidate(gp);
    b.reg_init(gp, IN_BASE);

    let it = b.vreg_int("sweep");
    let quarter = b.vreg_fp("quarter");
    let sum = b.vreg_fp("sum");
    let ti = b.vreg_int("ti");
    let tj = b.vreg_int("tj");

    let sweep = b.new_block("sweep");
    let row = b.new_block("row");
    let col = b.new_block("col");
    let row_end = b.new_block("row_end");
    let sweep_end = b.new_block("sweep_end");
    let done = b.new_block("done");

    let row_bytes = (N * 8) as i64;

    // entry: quarter = 1/4 (one divide, outside all loops).
    b.lda(it, i64::from(sweeps));
    b.lda(ti, 1);
    b.cvtqt(quarter, ti);
    b.lda(tj, 4);
    let four = b.vreg_fp("four");
    b.cvtqt(four, tj);
    b.divt(quarter, quarter, four);
    b.lda(ti, 0);
    b.cvtqt(sum, ti);

    // sweep: reset the row cursor to the first interior row.
    b.switch_to(sweep);
    let i = b.vreg_int("i");
    let rowptr = b.vreg_int("rowptr");
    b.lda(i, (N - 2) as i64);
    b.addq_imm(rowptr, gp, row_bytes);

    // row: reset the column cursor.
    b.switch_to(row);
    let j = b.vreg_int("j");
    let p = b.vreg_int("p");
    b.lda(j, (N - 2) as i64);
    b.addq_imm(p, rowptr, 8);

    // col: the five-point stencil.
    b.switch_to(col);
    let c = b.vreg_fp("c");
    let nn = b.vreg_fp("nn");
    let ss = b.vreg_fp("ss");
    let ee = b.vreg_fp("ee");
    let ww = b.vreg_fp("ww");
    let t = b.vreg_fp("t");
    b.ldt(c, p, 0);
    b.ldt(nn, p, -row_bytes);
    b.ldt(ss, p, row_bytes);
    b.ldt(ww, p, -8);
    b.ldt(ee, p, 8);
    b.addt(t, nn, ss);
    b.addt(t, t, ee);
    b.addt(t, t, ww);
    b.mult(t, t, quarter);
    b.subt(t, t, c);
    b.stt(p, (OUT_BASE - IN_BASE) as i64, t);
    b.addt(sum, sum, t);
    b.addq_imm(p, p, 8);
    b.subq_imm(j, j, 1);
    b.bne(j, col);

    // row_end: advance to the next row.
    b.switch_to(row_end);
    b.addq_imm(rowptr, rowptr, row_bytes);
    b.subq_imm(i, i, 1);
    b.bne(i, row);

    // sweep_end
    b.switch_to(sweep_end);
    b.subq_imm(it, it, 1);
    b.bne(it, sweep);

    // done
    b.switch_to(done);
    let out = b.vreg_int("out");
    b.lda(out, RESULT_BASE as i64);
    b.stt(out, 0, sum);

    b.finish().expect("tomcatv workload is well formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcl_trace::Vm;

    #[test]
    fn stencil_matches_a_host_computation_at_a_point() {
        let p = build(1);
        let mut vm = Vm::new(&p);
        vm.run_to_end().unwrap();
        // Recreate the input grid host-side.
        let mut lcg = HostLcg::new(0x70CA);
        let mut grid = vec![0.0f64; (N * N) as usize];
        for v in grid.iter_mut() {
            *v = (lcg.below(1000) as f64) / 250.0;
        }
        let at = |r: u64, c: u64| grid[(r * N + c) as usize];
        let (r, c) = (10u64, 20u64);
        let expect = (at(r - 1, c) + at(r + 1, c) + at(r, c + 1) + at(r, c - 1)) * 0.25 - at(r, c);
        let got = f64::from_bits(vm.memory().read(OUT_BASE + (r * N + c) * 8));
        assert!((got - expect).abs() < 1e-9, "got {got}, expect {expect}");
    }

    #[test]
    fn interior_points_are_all_written() {
        let p = build(1);
        let mut vm = Vm::new(&p);
        vm.run_to_end().unwrap();
        let corners_written = [
            OUT_BASE + (N + 1) * 8,                 // (1,1)
            OUT_BASE + ((N - 2) * N + (N - 2)) * 8, // (N-2,N-2)
        ];
        for addr in corners_written {
            assert!(f64::from_bits(vm.memory().read(addr)).is_finite());
        }
        // Boundary untouched.
        assert_eq!(vm.memory().read(OUT_BASE), 0);
    }

    #[test]
    fn checksum_is_finite() {
        let p = build(2);
        let mut vm = Vm::new(&p);
        vm.run_to_end().unwrap();
        assert!(f64::from_bits(vm.memory().read(RESULT_BASE)).is_finite());
    }
}
