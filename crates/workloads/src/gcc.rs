//! A gcc-shaped workload: branchy integer code over pointer-linked data.
//!
//! SPEC92 `gcc1` is the branchiest of the paper's benchmarks: short
//! basic blocks, irregular data-dependent control flow, and pointer-
//! heavy data structures. This kernel walks a scrambled linked ring
//! (pointer chasing — serialised loads), dispatches on a pseudo-random
//! per-node tag through a compare/branch cascade (four short cases, the
//! shape of a compiler's switch on tree codes), and maintains per-case
//! statistics with read-modify-write traffic.

use mcl_trace::{Program, ProgramBuilder, Vreg};

use crate::HostLcg;

/// Base address of the node arena.
pub const NODES_BASE: u64 = 0x0050_0000;
/// Number of nodes in the ring.
pub const NODE_COUNT: usize = 2048;
/// Base address of the per-case counters.
pub const STATS_BASE: u64 = 0x0060_0000;

/// Builds the workload with `iters` node visits (about 21 dynamic
/// instructions each).
#[must_use]
pub fn build(iters: u32) -> Program<Vreg> {
    let mut b = ProgramBuilder::new("gcc1");

    // Scrambled ring: node k -> node perm[k+1]; each node is 16 bytes
    // (next pointer, tag).
    let mut lcg = HostLcg::new(0xBEEF);
    let mut perm: Vec<usize> = (0..NODE_COUNT).collect();
    for k in (1..NODE_COUNT).rev() {
        let j = lcg.below(k as u64 + 1) as usize;
        perm.swap(k, j);
    }
    for k in 0..NODE_COUNT {
        let this = NODES_BASE + (perm[k] as u64) * 16;
        let next = NODES_BASE + (perm[(k + 1) % NODE_COUNT] as u64) * 16;
        b.mem_init(this, next);
        b.mem_init(this + 8, lcg.next_u64() & 0xFF);
    }

    let gp = b.vreg_int("gp_stats");
    b.designate_global_candidate(gp);
    b.reg_init(gp, STATS_BASE);

    let node = b.vreg_int("node");
    let i = b.vreg_int("i");
    b.reg_init(node, NODES_BASE + (perm[0] as u64) * 16);

    let walk = b.new_block("walk");
    let disp2 = b.new_block("disp2");
    let disp3 = b.new_block("disp3");
    let case0 = b.new_block("case0");
    let case1 = b.new_block("case1");
    let case2 = b.new_block("case2");
    let case3 = b.new_block("case3");
    let join = b.new_block("join");
    let done = b.new_block("done");

    // entry
    b.lda(i, i64::from(iters));

    // walk: chase the pointer, then dispatch on the tag through a
    // compare/branch cascade of short blocks (gcc's signature shape).
    b.switch_to(walk);
    let tag = b.vreg_int("tag");
    let t = b.vreg_int("t");
    let c = b.vreg_int("c");
    b.ldq(node, node, 0); // node = node->next (serialising load)
    b.ldq(tag, node, 8);
    b.and_imm(t, tag, 3);
    b.cmpeq_imm(c, t, 1);
    b.bne(c, case1);

    b.switch_to(disp2);
    b.cmpeq_imm(c, t, 2);
    b.bne(c, case2);

    b.switch_to(disp3);
    b.cmpeq_imm(c, t, 3);
    b.bne(c, case3);

    // Accumulators live across iterations (compiler temporaries with
    // long live ranges, the gcc norm).
    let acc = b.vreg_int("acc");
    let weight = b.vreg_int("weight");

    // case 0 (fallthrough from the cascade).
    b.switch_to(case0);
    let s0 = b.vreg_int("s0");
    let w0 = b.vreg_int("w0");
    b.ldq(s0, gp, 0);
    b.sll_imm(w0, tag, 2);
    b.addq_imm(s0, s0, 1);
    b.addq(weight, weight, w0);
    b.xor(acc, acc, s0);
    b.stq(gp, 0, s0);
    b.br(join);

    b.switch_to(case1);
    let s1 = b.vreg_int("s1");
    let w1 = b.vreg_int("w1");
    b.ldq(s1, gp, 8);
    b.and_imm(w1, tag, 60);
    b.addq(s1, s1, tag);
    b.addq(weight, weight, w1);
    b.addq(acc, acc, s1);
    b.stq(gp, 8, s1);
    b.br(join);

    b.switch_to(case2);
    let s2 = b.vreg_int("s2");
    let w2 = b.vreg_int("w2");
    b.ldq(s2, gp, 16);
    b.srl_imm(w2, tag, 1);
    b.xor(s2, s2, tag);
    b.addq_imm(s2, s2, 1);
    b.addq(weight, weight, w2);
    b.addq(acc, acc, w2);
    b.stq(gp, 16, s2);
    b.br(join);

    b.switch_to(case3);
    let s3 = b.vreg_int("s3");
    let t3 = b.vreg_int("t3");
    b.ldq(s3, gp, 24);
    b.sll_imm(t3, tag, 1);
    b.addq(s3, s3, t3);
    b.xor(acc, acc, t3);
    b.addq(weight, weight, s3);
    b.stq(gp, 24, s3);

    // join (case3 falls through)
    b.switch_to(join);
    b.subq_imm(i, i, 1);
    b.bne(i, walk);

    // done: checksum the counters.
    b.switch_to(done);
    let sum = b.vreg_int("sum");
    let tmp = b.vreg_int("tmp");
    b.ldq(sum, gp, 0);
    b.ldq(tmp, gp, 8);
    b.addq(sum, sum, tmp);
    b.ldq(tmp, gp, 16);
    b.addq(sum, sum, tmp);
    b.ldq(tmp, gp, 24);
    b.addq(sum, sum, tmp);
    b.stq(gp, 32, sum);
    b.stq(gp, 40, acc);
    b.stq(gp, 48, weight);

    b.finish().expect("gcc workload is well formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcl_trace::Vm;

    #[test]
    fn visits_every_iteration_and_spreads_cases() {
        let p = build(2000);
        let mut vm = Vm::new(&p);
        vm.run_to_end().unwrap();
        let s0 = vm.memory().read(STATS_BASE);
        // Tags are uniform over 4 cases; case 0's plain counter should
        // see roughly a quarter of the visits.
        assert!((300..700).contains(&s0), "case0 count {s0}");
        assert!(vm.memory().read(STATS_BASE + 32) > 0);
    }

    #[test]
    fn pointer_chase_revisits_the_whole_ring() {
        let p = build(NODE_COUNT as u32);
        let mut vm = Vm::new(&p);
        let steps = vm.run_collect().unwrap();
        // Every node address in the ring appears exactly once among the
        // next-pointer loads of one full lap.
        let mut addrs: Vec<u64> = steps
            .iter()
            .filter(|s| s.op == mcl_isa::Opcode::Ldq && s.mem_addr.is_some())
            .filter_map(|s| s.mem_addr)
            .filter(|a| (NODES_BASE..NODES_BASE + (NODE_COUNT as u64) * 16).contains(a))
            .filter(|a| a % 16 == 0)
            .collect();
        addrs.sort_unstable();
        addrs.dedup();
        assert_eq!(addrs.len(), NODE_COUNT);
    }

    #[test]
    fn deterministic_build() {
        let a = build(100);
        let b = build(100);
        assert_eq!(a, b);
    }
}
