//! An ora-shaped workload: a tight ray-tracing kernel dominated by
//! square root and divide.
//!
//! SPEC92 `ora` (optical ray tracing) spends almost all of its time in a
//! small loop whose critical path runs through floating-point square
//! roots and divides — exactly the operations that occupy the paper's
//! unpipelined divider for 16 cycles each. Control flow is a single,
//! perfectly predictable back edge; iterations are independent except
//! for a short accumulator chain, so performance is bound by divider
//! occupancy and by how the scheduler spreads the chains across
//! clusters.

use mcl_trace::{Program, ProgramBuilder, Vreg};

/// Where the kernel publishes its accumulator.
pub const RESULT_BASE: u64 = 0x0080_0000;

/// Builds the workload with `iters` iterations (four sphere tests
/// each, about 51 dynamic instructions and eight divider operations per
/// iteration).
#[must_use]
pub fn build(iters: u32) -> Program<Vreg> {
    let mut b = ProgramBuilder::new("ora");

    let sp = b.vreg_int("sp_out");
    b.designate_global_candidate(sp);
    b.reg_init(sp, RESULT_BASE);

    let x = b.vreg_int("lcg");
    let i = b.vreg_int("i");
    let c1 = b.vreg_fp("c1");
    let c2 = b.vreg_fp("c2");
    let acc = b.vreg_fp("acc");
    let ti = b.vreg_int("ti");

    let ray = b.new_block("ray");
    let done = b.new_block("done");

    // entry
    b.lda(x, 0x0EA7_BEEF);
    b.lda(i, i64::from(iters));
    b.lda(ti, 3);
    b.cvtqt(c1, ti);
    b.lda(ti, 5);
    b.cvtqt(c2, ti);
    b.lda(ti, 0);
    b.cvtqt(acc, ti);

    // ray: two sphere intersections per iteration, sharing the ray
    // origin term (as ora's inner loop shares ray-setup values across
    // the per-sphere tests).
    b.switch_to(ray);
    let bits = b.vreg_int("bits");
    let bits2 = b.vreg_int("bits2");
    let r0 = b.vreg_fp("r0");
    let r1 = b.vreg_fp("r1");
    let t1a = b.vreg_fp("t1a");
    let t2a = b.vreg_fp("t2a");
    let da = b.vreg_fp("da");
    let sa = b.vreg_fp("sa");
    let qa = b.vreg_fp("qa");
    let t1b = b.vreg_fp("t1b");
    let t2b = b.vreg_fp("t2b");
    let db = b.vreg_fp("db");
    let sb = b.vreg_fp("sb");
    let qb = b.vreg_fp("qb");
    let t1c = b.vreg_fp("t1c");
    let t2c = b.vreg_fp("t2c");
    let dc = b.vreg_fp("dc");
    let sc = b.vreg_fp("sc");
    let qc = b.vreg_fp("qc");
    let t1d = b.vreg_fp("t1d");
    let t2d = b.vreg_fp("t2d");
    let dd = b.vreg_fp("dd");
    let sd = b.vreg_fp("sd");
    let qd = b.vreg_fp("qd");
    b.mulq_imm(x, x, 1_103_515_245);
    b.addq_imm(x, x, 12_345);
    b.srl_imm(bits, x, 22);
    b.and_imm(bits, bits, 1023);
    b.addq_imm(bits, bits, 1); // keep the ray strictly positive
    b.srl_imm(bits2, x, 9);
    b.and_imm(bits2, bits2, 1023);
    b.addq_imm(bits2, bits2, 1);
    b.cvtqt(r0, bits);
    b.cvtqt(r1, bits2);
    // discriminant set-up for both spheres (sphere B shares the ray
    // origin term t1a), followed by the root/divide tail for both.
    b.mult(t1a, r0, c1);
    b.addt(t2a, t1a, c2);
    b.mult(da, t2a, t1a);
    b.addt(da, da, t2a);
    b.mult(t1b, r1, c2);
    b.addt(t2b, t1b, t1a);
    b.mult(db, t2b, t1b);
    b.addt(db, db, t2b);
    b.mult(t1c, r1, c1);
    b.addt(t2c, t1c, t1b);
    b.mult(dc, t2c, t1c);
    b.addt(dc, dc, t2c);
    b.mult(t1d, r0, c2);
    b.addt(t2d, t1d, t1c);
    b.mult(dd, t2d, t1d);
    b.addt(dd, dd, t2d);
    b.sqrtt(sa, da); // 16 cycles, occupies a divider
    b.divt(qa, t2a, sa); // 16 more divider cycles
    b.sqrtt(sb, db);
    b.divt(qb, t2b, sb);
    b.sqrtt(sc, dc);
    b.divt(qc, t2c, sc);
    b.sqrtt(sd, dd);
    b.divt(qd, t2d, sd);
    b.addt(acc, acc, qa);
    b.addt(acc, acc, qb);
    b.addt(acc, acc, qc);
    b.addt(acc, acc, qd);
    b.subq_imm(i, i, 1);
    b.bne(i, ray);

    // done
    b.switch_to(done);
    b.stt(sp, 0, acc);

    b.finish().expect("ora workload is well formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcl_isa::InstrClass;
    use mcl_trace::Vm;

    #[test]
    fn executes_and_accumulates() {
        let p = build(300);
        let mut vm = Vm::new(&p);
        vm.run_to_end().unwrap();
        let acc = f64::from_bits(vm.memory().read(RESULT_BASE));
        assert!(acc.is_finite() && acc > 0.0);
    }

    #[test]
    fn eight_divider_operations_per_iteration() {
        let p = build(200);
        let mut vm = Vm::new(&p);
        let steps = vm.run_collect().unwrap();
        let div_class = steps.iter().filter(|s| s.op.class() == InstrClass::FpDiv).count();
        assert_eq!(div_class, 1600, "four sqrts + four divides per iteration");
    }

    #[test]
    fn branches_are_highly_predictable() {
        // The only conditional branch is the loop back edge.
        let p = build(500);
        let mut vm = Vm::new(&p);
        let steps = vm.run_collect().unwrap();
        let branches: Vec<bool> = steps
            .iter()
            .filter_map(|s| s.branch.filter(|b| b.conditional).map(|b| b.taken))
            .collect();
        assert_eq!(branches.len(), 500);
        assert_eq!(branches.iter().filter(|&&t| !t).count(), 1, "only the exit is not taken");
    }
}
