//! Regression guards for the behavioural profiles of the six synthetic
//! benchmarks. The Table 2 shape rests on these properties (DESIGN.md
//! §4); if a workload edit drifts out of its band, these tests catch it
//! before the headline numbers silently change.

use mcl_isa::InstrClass;
use mcl_trace::analysis::{analyze, MixReport};
use mcl_workloads::Benchmark;

fn profile(bench: Benchmark) -> MixReport {
    let il = bench.build((bench.default_scale() / 10).max(1));
    analyze(&il).expect("workload executes")
}

#[test]
fn compress_is_branchy_integer_with_table_traffic() {
    let p = profile(Benchmark::Compress);
    let int = p.class_fraction(InstrClass::IntAlu) + p.class_fraction(InstrClass::IntMul);
    assert!(int > 0.6, "integer fraction {int}");
    assert!(p.class_fraction(InstrClass::FpOther) < 0.01);
    assert!(p.class_fraction(InstrClass::Store) > 0.05, "output + table stores");
    assert!(p.mean_block_len() < 10.0, "short blocks: {}", p.mean_block_len());
    // The probe + flush branches leave the taken rate well off the rails.
    assert!((0.5..0.95).contains(&p.taken_rate()), "taken {}", p.taken_rate());
}

#[test]
fn gcc1_has_the_shortest_blocks_and_pointer_loads() {
    let p = profile(Benchmark::Gcc1);
    assert!(p.mean_block_len() < 5.0, "gcc blocks are tiny: {}", p.mean_block_len());
    assert!(p.class_fraction(InstrClass::Load) > 0.12, "pointer chasing");
    assert!(p.class_fraction(InstrClass::FpOther) < 0.01);
    // Data-dependent dispatch: the taken rate sits near a half.
    assert!((0.4..0.7).contains(&p.taken_rate()), "taken {}", p.taken_rate());
}

#[test]
fn doduc_is_mixed_floating_point_with_rare_divides() {
    let p = profile(Benchmark::Doduc);
    assert!(p.class_fraction(InstrClass::FpOther) > 0.4);
    assert!(
        (0.001..0.05).contains(&p.class_fraction(InstrClass::FpDiv)),
        "rare divides: {}",
        p.class_fraction(InstrClass::FpDiv)
    );
    assert!((0.4..0.8).contains(&p.taken_rate()), "data-dependent paths");
}

#[test]
fn ora_is_divider_bound_with_one_predictable_branch() {
    let p = profile(Benchmark::Ora);
    assert!(
        p.class_fraction(InstrClass::FpDiv) > 0.15,
        "divider ops dominate: {}",
        p.class_fraction(InstrClass::FpDiv)
    );
    assert!(p.taken_rate() > 0.99, "only the loop back edge");
    assert!(p.mean_block_len() > 30.0, "one big block: {}", p.mean_block_len());
    assert!(p.class_fraction(InstrClass::Load) < 0.01, "no memory traffic");
}

#[test]
fn su2cor_streams_arrays_with_regular_loops() {
    let p = profile(Benchmark::Su2cor);
    assert!(p.class_fraction(InstrClass::Load) > 0.15, "array streams");
    assert!(p.class_fraction(InstrClass::FpOther) > 0.15);
    assert!(p.taken_rate() > 0.95, "regular loops");
    assert!(p.data_bytes() > 64 * 1024, "larger than the cache: {}", p.data_bytes());
}

#[test]
fn tomcatv_is_load_heavy_stencil_code() {
    let p = profile(Benchmark::Tomcatv);
    assert!(
        p.class_fraction(InstrClass::Load) > 0.25,
        "five-point stencil loads: {}",
        p.class_fraction(InstrClass::Load)
    );
    assert!(p.class_fraction(InstrClass::FpOther) > 0.3);
    assert!(p.taken_rate() > 0.95);
}

#[test]
fn dynamic_lengths_sit_in_the_reproduction_band() {
    // Full-scale runs must stay big enough for warm caches and small
    // enough for quick reproduction (DESIGN.md: ~100-250k).
    for bench in Benchmark::ALL {
        let il = bench.build_default();
        let report = analyze(&il).expect("runs");
        assert!(
            (90_000..300_000).contains(&report.instructions),
            "{bench}: {} dynamic instructions",
            report.instructions
        );
    }
}
