//! Register allocation: Briggs-style optimistic graph colouring with the
//! paper's spill policy.
//!
//! The paper (Section 3.4) picks "the graph-coloring technique developed
//! by Briggs et al. ... because it separates the process of coloring
//! nodes from the process of spilling live ranges", which "provides a
//! convenient framework for implementing the desire to spill a live
//! range first to a local register in the other cluster and, if no
//! register is available, then to memory."
//!
//! Accordingly, [`allocate`]:
//!
//! 1. colours each *domain* (bank × cluster, plus the global-register
//!    domain) independently with optimistic simplify/select;
//! 2. on a colouring failure of a cluster-aware allocation, first
//!    *re-partitions* the failed live range to the other cluster (the
//!    "spill to a local register in the other cluster" step) and retries;
//! 3. only then rewrites the program with memory spill code and retries.
//!
//! The [`AllocatorKind::Blind`] mode colours over the whole register file
//! ignoring clusters, modelling the paper's *native binary* (Table 2's
//! "none" column), and deals colours round-robin so register parity — and
//! therefore cluster assignment on the multicluster hardware — is
//! effectively arbitrary, as it is for code compiled with no knowledge of
//! the partitioning.

use std::collections::{HashMap, HashSet};

use mcl_isa::{assign::RegisterAssignment, ArchReg, ClusterId, RegBank};
use mcl_trace::{Block, Instr, Program, RegName, Vreg};


use crate::cfg::Cfg;
use crate::interference::InterferenceGraph;
use crate::liveness::Liveness;
use crate::partition::Partition;

/// Base address of the memory-spill area (disjoint from workload data
/// and code segments).
pub const SPILL_BASE: u64 = 0x7800_0000;

/// How the allocator treats clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocatorKind {
    /// Respect the live-range partition: each live range is coloured
    /// with the architectural registers of its assigned cluster, and
    /// colouring failures first move the range to the other cluster.
    ClusterAware,
    /// Ignore clusters: colour over the whole register file with
    /// round-robin colour choice (the native-binary baseline).
    Blind,
}

/// Spill/retry statistics from one allocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Live ranges moved to the other cluster instead of memory.
    pub cross_cluster_moves: u64,
    /// Live ranges spilled to memory.
    pub memory_spills: u64,
    /// Global candidates demoted to locals for lack of a global register.
    pub demoted_globals: u64,
    /// Colouring passes run (1 = first try succeeded).
    pub passes: u64,
}

/// A completed register allocation.
#[derive(Debug, Clone)]
pub struct Allocation {
    /// The machine program (spill code included).
    pub program: Program<ArchReg>,
    /// The final live-range-to-register map (including spill
    /// temporaries introduced along the way).
    pub map: HashMap<Vreg, ArchReg>,
    /// Spill/retry statistics.
    pub stats: SpillStats,
}

/// Errors from [`allocate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocError {
    /// The iteration guard tripped: the program could not be coloured
    /// even after spilling (indicates a register file too small for a
    /// single instruction's operands).
    DidNotConverge {
        /// Passes attempted.
        passes: u64,
    },
    /// A register bank has no colours at all in some required domain.
    NoRegisters {
        /// The starved bank.
        bank: RegBank,
    },
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::DidNotConverge { passes } => {
                write!(f, "register allocation did not converge after {passes} passes")
            }
            AllocError::NoRegisters { bank } => {
                write!(f, "no {bank} registers available in a required domain")
            }
        }
    }
}

impl std::error::Error for AllocError {}

/// Allocates architectural registers for `program` under `partition`.
///
/// On success the returned [`Allocation::program`] computes exactly what
/// `program` computes (spill code included); the partition may have been
/// updated by cross-cluster moves and global demotions.
///
/// # Errors
///
/// See [`AllocError`].
pub fn allocate(
    program: &Program<Vreg>,
    partition: &mut Partition,
    assignment: &RegisterAssignment,
    kind: AllocatorKind,
) -> Result<Allocation, AllocError> {
    let mut current = program.clone();
    // Drop initial values that are dead on entry (the live range is
    // redefined before any use): after colouring, such a range may share
    // its register with a live-at-entry range, and emitting the dead
    // initialisation would clobber the shared register.
    {
        let cfg = Cfg::of(&current);
        let live = Liveness::of(&current, &cfg);
        if let Some(first) =
            (0..current.blocks.len()).find(|&b| !current.blocks[b].instrs.is_empty())
        {
            let entry_live = live.live_in(mcl_trace::BlockId::new(first));
            current.reg_init.retain(|(r, _)| entry_live.contains(r));
        }
    }
    let mut stats = SpillStats::default();
    let mut moved: HashSet<Vreg> = HashSet::new();
    let mut spilled: HashSet<Vreg> = HashSet::new();
    let mut next_slot: u64 = 0;
    let mut next_vreg = max_vreg_index(program) + 1;
    let max_passes = (program_vregs(program).len() as u64 + 4) * 3;

    loop {
        stats.passes += 1;
        if stats.passes > max_passes {
            return Err(AllocError::DidNotConverge { passes: stats.passes });
        }
        let cfg = Cfg::of(&current);
        let live = Liveness::of(&current, &cfg);
        let graph = InterferenceGraph::of(&current, &cfg, &live);

        match color_all(&current, partition, assignment, kind, &graph)? {
            Ok(map) => {
                let machine = rewrite(&current, &map);
                return Ok(Allocation { program: machine, map, stats });
            }
            Err(failures) => {
                let mut must_rewrite = false;
                for v in failures {
                    if partition.is_global(v) {
                        // No global register free: demote to a local
                        // range, preferring the emptier cluster.
                        let counts = partition.counts(assignment.clusters().max(1));
                        let c = if counts.len() > 1 && counts[1] < counts[0] {
                            ClusterId::C1
                        } else {
                            ClusterId::C0
                        };
                        partition.demote_global(v, c);
                        stats.demoted_globals += 1;
                    } else if kind == AllocatorKind::ClusterAware
                        && assignment.clusters() > 1
                        && !moved.contains(&v)
                        && !spilled.contains(&v)
                    {
                        // The paper's first resort: a register in the
                        // other cluster.
                        let c = partition.cluster_of(v).unwrap_or(ClusterId::C0);
                        partition.reassign(v, c.other());
                        moved.insert(v);
                        stats.cross_cluster_moves += 1;
                    } else {
                        // Memory spill.
                        let slot = SPILL_BASE + next_slot * 8;
                        next_slot += 1;
                        let cluster = partition.cluster_of(v).unwrap_or(ClusterId::C0);
                        let tmps = spill_to_memory(&mut current, v, slot, &mut next_vreg);
                        for t in tmps {
                            partition.reassign(t, cluster);
                            spilled.insert(t); // temporaries must not respill
                        }
                        spilled.insert(v);
                        stats.memory_spills += 1;
                        must_rewrite = true;
                    }
                }
                let _ = must_rewrite;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Colouring
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Domain {
    Cluster(ClusterId, RegBank),
    Global(RegBank),
    Blind(RegBank),
}

/// Colours every domain. Outer `Result` is a hard error; inner
/// `Result` is success (the complete map) or the list of failed vregs.
#[allow(clippy::type_complexity)]
fn color_all(
    program: &Program<Vreg>,
    partition: &Partition,
    assignment: &RegisterAssignment,
    kind: AllocatorKind,
    graph: &InterferenceGraph<Vreg>,
) -> Result<Result<HashMap<Vreg, ArchReg>, Vec<Vreg>>, AllocError> {
    // Group vregs by domain.
    let mut domains: HashMap<Domain, Vec<Vreg>> = HashMap::new();
    for v in program_vregs(program) {
        let domain = if partition.is_global(v) {
            Domain::Global(v.bank())
        } else if kind == AllocatorKind::Blind {
            Domain::Blind(v.bank())
        } else {
            let c = partition.cluster_of(v).unwrap_or(ClusterId::C0);
            Domain::Cluster(c, v.bank())
        };
        domains.entry(domain).or_default().push(v);
    }

    let mut map = HashMap::new();
    let mut failures = Vec::new();
    let mut sorted: Vec<(Domain, Vec<Vreg>)> = domains.into_iter().collect();
    sorted.sort_by_key(|(d, _)| format!("{d:?}"));
    for (domain, mut nodes) in sorted {
        nodes.sort();
        let colors = domain_colors(domain, assignment);
        if colors.is_empty() {
            let bank = match domain {
                Domain::Cluster(_, b) | Domain::Global(b) | Domain::Blind(b) => b,
            };
            // A starved global domain is recoverable (demote); a starved
            // local/blind domain is a configuration error.
            if matches!(domain, Domain::Global(_)) {
                failures.extend(nodes);
                continue;
            }
            return Err(AllocError::NoRegisters { bank });
        }
        let round_robin = kind == AllocatorKind::Blind;
        color_domain(&nodes, &colors, graph, round_robin, &mut map, &mut failures);
    }
    if failures.is_empty() {
        Ok(Ok(map))
    } else {
        failures.sort();
        failures.dedup();
        Ok(Err(failures))
    }
}

fn domain_colors(domain: Domain, assignment: &RegisterAssignment) -> Vec<ArchReg> {
    match domain {
        Domain::Cluster(c, bank) => {
            assignment.local_registers_of(c).filter(|r| r.bank() == bank).collect()
        }
        Domain::Global(bank) => {
            assignment.global_registers().filter(|r| r.bank() == bank).collect()
        }
        Domain::Blind(bank) => ArchReg::all()
            .filter(|r| {
                r.bank() == bank
                    && !r.is_zero()
                    && !assignment.assignment_of(*r).is_global()
            })
            .collect(),
    }
}

/// Briggs optimistic colouring of one domain.
fn color_domain(
    nodes: &[Vreg],
    colors: &[ArchReg],
    graph: &InterferenceGraph<Vreg>,
    round_robin: bool,
    map: &mut HashMap<Vreg, ArchReg>,
    failures: &mut Vec<Vreg>,
) {
    let k = colors.len();
    let node_set: HashSet<Vreg> = nodes.iter().copied().collect();
    // Degrees restricted to this domain.
    let degree_of = |v: Vreg, removed: &HashSet<Vreg>| {
        graph
            .neighbors(v)
            .map(|ns| ns.iter().filter(|n| node_set.contains(n) && !removed.contains(n)).count())
            .unwrap_or(0)
    };

    let mut removed: HashSet<Vreg> = HashSet::new();
    let mut stack: Vec<Vreg> = Vec::with_capacity(nodes.len());
    let mut remaining: Vec<Vreg> = nodes.to_vec();

    while !remaining.is_empty() {
        // Simplify: push a node with degree < k if one exists.
        if let Some(pos) = remaining.iter().position(|&v| degree_of(v, &removed) < k) {
            let v = remaining.remove(pos);
            removed.insert(v);
            stack.push(v);
        } else {
            // Optimistic spill candidate: the highest-degree node (best
            // chance of being colourable anyway; cheapest to free most
            // constraints if not).
            let (pos, _) = remaining
                .iter()
                .enumerate()
                .max_by_key(|&(i, &v)| (degree_of(v, &removed), std::cmp::Reverse(i)))
                .expect("remaining nonempty");
            let v = remaining.remove(pos);
            removed.insert(v);
            stack.push(v);
        }
    }

    // Select phase.
    let mut rr_next = 0usize;
    while let Some(v) = stack.pop() {
        let mut used: HashSet<ArchReg> = HashSet::new();
        if let Some(ns) = graph.neighbors(v) {
            for n in ns {
                if let Some(&c) = map.get(n) {
                    used.insert(c);
                }
            }
        }
        let choice = if round_robin {
            // Start scanning from a rotating offset so successive
            // allocations spread across the file (arbitrary parity).
            (0..k).map(|i| colors[(rr_next + i) % k]).find(|c| !used.contains(c))
        } else {
            colors.iter().copied().find(|c| !used.contains(c))
        };
        match choice {
            Some(c) => {
                if round_robin {
                    rr_next = (rr_next + 1) % k;
                }
                map.insert(v, c);
            }
            None => failures.push(v),
        }
    }
}

// ---------------------------------------------------------------------------
// Spill code
// ---------------------------------------------------------------------------

/// Rewrites `program` so `v` lives at memory `slot`, inserting a load
/// before each use and a store after each definition. Returns the fresh
/// temporaries introduced.
fn spill_to_memory(
    program: &mut Program<Vreg>,
    v: Vreg,
    slot: u64,
    next_vreg: &mut u32,
) -> Vec<Vreg> {
    let bank = v.bank();
    let (load_op, store_op) = match bank {
        RegBank::Int => (mcl_isa::Opcode::Ldq, mcl_isa::Opcode::Stq),
        RegBank::Fp => (mcl_isa::Opcode::Ldt, mcl_isa::Opcode::Stt),
    };
    let mut tmps = Vec::new();
    for block in &mut program.blocks {
        let mut out: Vec<Instr<Vreg>> = Vec::with_capacity(block.instrs.len());
        for mut instr in std::mem::take(&mut block.instrs) {
            let reads_v = instr.reads().any(|r| r == v);
            let writes_v = instr.writes() == Some(v);
            if reads_v {
                let t = Vreg::new(bank, *next_vreg);
                *next_vreg += 1;
                tmps.push(t);
                out.push(Instr {
                    op: load_op,
                    dest: Some(t),
                    srcs: [None, None],
                    imm: slot as i64,
                    target: None,
                    sched_inserted: true,
                });
                for src in &mut instr.srcs {
                    if *src == Some(v) {
                        *src = Some(t);
                    }
                }
            }
            if writes_v {
                let t = Vreg::new(bank, *next_vreg);
                *next_vreg += 1;
                tmps.push(t);
                instr.dest = Some(t);
                out.push(instr);
                out.push(Instr {
                    op: store_op,
                    dest: None,
                    srcs: [None, Some(t)],
                    imm: slot as i64,
                    target: None,
                    sched_inserted: true,
                });
            } else {
                out.push(instr);
            }
        }
        block.instrs = out;
    }
    // An initial value for v now belongs in its memory slot.
    if let Some(pos) = program.reg_init.iter().position(|&(r, _)| r == v) {
        let (_, value) = program.reg_init.remove(pos);
        program.mem_init.push((slot, value));
    }
    tmps
}

// ---------------------------------------------------------------------------
// Rewrite to architectural registers
// ---------------------------------------------------------------------------

fn rewrite(program: &Program<Vreg>, map: &HashMap<Vreg, ArchReg>) -> Program<ArchReg> {
    let conv = |r: Option<Vreg>| r.map(|v| *map.get(&v).expect("every vreg coloured"));
    Program {
        name: program.name.clone(),
        blocks: program
            .blocks
            .iter()
            .map(|b| Block {
                label: b.label.clone(),
                instrs: b
                    .instrs
                    .iter()
                    .map(|i| Instr {
                        op: i.op,
                        dest: conv(i.dest),
                        srcs: [conv(i.srcs[0]), conv(i.srcs[1])],
                        imm: i.imm,
                        target: i.target,
                        sched_inserted: i.sched_inserted,
                    })
                    .collect(),
            })
            .collect(),
        reg_init: program.reg_init.iter().map(|&(v, x)| (map[&v], x)).collect(),
        mem_init: program.mem_init.clone(),
        global_candidates: program
            .global_candidates
            .iter()
            .filter_map(|v| map.get(v).copied())
            .collect(),
    }
}

fn program_vregs(program: &Program<Vreg>) -> Vec<Vreg> {
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    for block in &program.blocks {
        for instr in &block.instrs {
            for r in instr.named_regs() {
                if seen.insert(r) {
                    out.push(r);
                }
            }
        }
    }
    for &(r, _) in &program.reg_init {
        if seen.insert(r) {
            out.push(r);
        }
    }
    out
}

fn max_vreg_index(program: &Program<Vreg>) -> u32 {
    program_vregs(program).iter().map(|v| v.index()).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{LocalScheduler, PartitionConfig};
    use mcl_trace::{Profile, ProgramBuilder, Vm};

    fn profile_of(p: &Program<Vreg>) -> Profile {
        let mut vm = Vm::new(p);
        vm.run_to_end().unwrap();
        vm.profile().clone()
    }

    /// Schedules + allocates, then checks machine semantics against IL
    /// semantics through memory state.
    fn check_semantics(il: &Program<Vreg>, kind: AllocatorKind, clusters: u8) -> Allocation {
        let assignment = if clusters == 1 {
            RegisterAssignment::single_cluster()
        } else {
            RegisterAssignment::even_odd_with_default_globals(clusters)
        };
        let profile = profile_of(il);
        let mut part = if clusters == 1 {
            Partition::single_cluster(il)
        } else {
            LocalScheduler::new(PartitionConfig::default()).partition(il, &profile)
        };
        let alloc = allocate(il, &mut part, &assignment, kind).expect("allocatable");
        assert!(alloc.program.validate().is_ok(), "machine program must validate");

        let mut vm_il = Vm::new(il);
        vm_il.run_to_end().unwrap();
        let mut vm_m = Vm::new(&alloc.program);
        vm_m.run_to_end().unwrap();
        // Compare memory, ignoring the spill area.
        for &(addr, _) in &il.mem_init {
            assert_eq!(vm_il.memory().read(addr), vm_m.memory().read(addr));
        }
        alloc
    }

    fn store_heavy_program(values: usize) -> (Program<Vreg>, Vec<Vreg>) {
        // Compute `values` simultaneously-live results, then store all.
        let mut b = ProgramBuilder::new("wide");
        let base = b.vreg_int("base");
        b.lda(base, 0x4000);
        let vs: Vec<Vreg> = (0..values).map(|i| b.vreg_int(&format!("v{i}"))).collect();
        for (i, &v) in vs.iter().enumerate() {
            b.lda(v, i as i64 + 1);
        }
        // All values are live here.
        for (i, &v) in vs.iter().enumerate() {
            b.stq(base, (i as i64) * 8, v);
        }
        (b.finish().unwrap(), vs)
    }

    #[test]
    fn simple_program_allocates_without_spills() {
        let (p, _) = store_heavy_program(4);
        let alloc = check_semantics(&p, AllocatorKind::ClusterAware, 2);
        assert_eq!(alloc.stats.memory_spills, 0);
        assert_eq!(alloc.stats.passes, 1);
    }

    #[test]
    fn no_two_interfering_ranges_share_a_register() {
        let (p, _) = store_heavy_program(10);
        let assignment = RegisterAssignment::even_odd_with_default_globals(2);
        let profile = profile_of(&p);
        let mut part =
            LocalScheduler::new(PartitionConfig::default()).partition(&p, &profile);
        let alloc = allocate(&p, &mut part, &assignment, AllocatorKind::ClusterAware).unwrap();
        // Rebuild interference on the *original* program and check the map.
        let cfg = Cfg::of(&p);
        let live = Liveness::of(&p, &cfg);
        let graph = InterferenceGraph::of(&p, &cfg, &live);
        for a in graph.nodes() {
            for b in graph.neighbors(a).unwrap() {
                if let (Some(&ra), Some(&rb)) = (alloc.map.get(&a), alloc.map.get(b)) {
                    assert_ne!(ra, rb, "{a} and {b} interfere but share {ra}");
                }
            }
        }
    }

    #[test]
    fn pressure_beyond_one_cluster_moves_ranges_across() {
        // Force all 20 simultaneously-live values onto cluster 0: they
        // exceed its 15 local integer registers, so the allocator must
        // use the paper's first spill resort — registers in the other
        // cluster — and never touch memory.
        let (p, _) = store_heavy_program(20);
        let assignment = RegisterAssignment::even_odd_with_default_globals(2);
        let mut part = Partition::single_cluster(&p); // everything on C0
        let alloc = allocate(&p, &mut part, &assignment, AllocatorKind::ClusterAware).unwrap();
        assert!(
            alloc.stats.cross_cluster_moves > 0,
            "expected cross-cluster spills before memory spills: {:?}",
            alloc.stats
        );
        assert_eq!(alloc.stats.memory_spills, 0, "two clusters suffice: {:?}", alloc.stats);

        // Semantics preserved.
        let mut vm_il = Vm::new(&p);
        vm_il.run_to_end().unwrap();
        let mut vm_m = Vm::new(&alloc.program);
        vm_m.run_to_end().unwrap();
        for i in 0..20u64 {
            assert_eq!(vm_m.memory().read(0x4000 + i * 8), vm_il.memory().read(0x4000 + i * 8));
        }
    }

    #[test]
    fn extreme_pressure_spills_to_memory() {
        // 40 simultaneously-live values exceed both clusters combined.
        let (p, _) = store_heavy_program(40);
        let alloc = check_semantics(&p, AllocatorKind::ClusterAware, 2);
        assert!(alloc.stats.memory_spills > 0);
        // Spill code grew the program.
        assert!(alloc.program.static_len() > p.static_len());
    }

    #[test]
    fn blind_allocation_spreads_parity() {
        let mut b = ProgramBuilder::new("chain");
        let vs: Vec<Vreg> = (0..6).map(|i| b.vreg_int(&format!("v{i}"))).collect();
        b.lda(vs[0], 1);
        for i in 1..6 {
            b.addq_imm(vs[i], vs[i - 1], 1);
        }
        let base = b.vreg_int("base");
        b.lda(base, 0x4000);
        b.stq(base, 0, vs[5]);
        let p = b.finish().unwrap();
        let alloc = check_semantics(&p, AllocatorKind::Blind, 2);
        // Round-robin colour choice must produce both parities.
        let parities: HashSet<u8> =
            alloc.map.values().filter(|r| !r.is_zero()).map(|r| r.index() % 2).collect();
        assert_eq!(parities.len(), 2, "blind allocation should mix parities: {:?}", alloc.map);
    }

    #[test]
    fn global_candidates_get_global_registers() {
        let mut b = ProgramBuilder::new("glob");
        let sp = b.vreg_int("sp");
        let x = b.vreg_int("x");
        b.designate_global_candidate(sp);
        b.lda(sp, 0x8000);
        b.lda(x, 42);
        b.stq(sp, 0, x);
        let p = b.finish().unwrap();
        let assignment = RegisterAssignment::even_odd_with_default_globals(2);
        let profile = profile_of(&p);
        let mut part = LocalScheduler::new(PartitionConfig::default()).partition(&p, &profile);
        let alloc = allocate(&p, &mut part, &assignment, AllocatorKind::ClusterAware).unwrap();
        let r = alloc.map[&sp];
        assert!(
            assignment.assignment_of(r).is_global(),
            "global candidate got non-global {r}"
        );
    }

    #[test]
    fn too_many_globals_are_demoted_not_failed() {
        let mut b = ProgramBuilder::new("glob3");
        let gs: Vec<Vreg> = (0..4).map(|i| b.vreg_int(&format!("g{i}"))).collect();
        let base = b.vreg_int("base");
        b.lda(base, 0x4000);
        for &g in &gs {
            b.designate_global_candidate(g);
        }
        for (i, &g) in gs.iter().enumerate() {
            b.lda(g, i as i64);
        }
        for (i, &g) in gs.iter().enumerate() {
            b.stq(base, (i as i64) * 8, g);
        }
        let p = b.finish().unwrap();
        let assignment = RegisterAssignment::even_odd_with_default_globals(2);
        let profile = profile_of(&p);
        let mut part = LocalScheduler::new(PartitionConfig::default()).partition(&p, &profile);
        // Only 2 global registers (SP, GP) exist for 4 candidates.
        let alloc = allocate(&p, &mut part, &assignment, AllocatorKind::ClusterAware).unwrap();
        assert!(alloc.stats.demoted_globals >= 2, "stats: {:?}", alloc.stats);
        check_semantics(&p, AllocatorKind::ClusterAware, 2);
    }

    #[test]
    fn spilled_initial_values_land_in_memory() {
        // Force a spill of a reg_init'd value and check semantics hold.
        let mut b = ProgramBuilder::new("spill-init");
        let init = b.vreg_int("init");
        b.reg_init(init, 777);
        let vs: Vec<Vreg> = (0..35).map(|i| b.vreg_int(&format!("v{i}"))).collect();
        for (i, &v) in vs.iter().enumerate() {
            b.lda(v, i as i64);
        }
        let base = b.vreg_int("base");
        b.lda(base, 0x4000);
        for (i, &v) in vs.iter().enumerate() {
            b.stq(base, (i as i64) * 8, v);
        }
        b.stq(base, 35 * 8, init);
        let p = b.finish().unwrap();
        let alloc = check_semantics(&p, AllocatorKind::ClusterAware, 2);
        let _ = alloc;
        // Verify the stored init value via the machine program run.
        let assignment = RegisterAssignment::even_odd_with_default_globals(2);
        let profile = profile_of(&p);
        let mut part = LocalScheduler::new(PartitionConfig::default()).partition(&p, &profile);
        let alloc = allocate(&p, &mut part, &assignment, AllocatorKind::ClusterAware).unwrap();
        let mut vm = Vm::new(&alloc.program);
        vm.run_to_end().unwrap();
        assert_eq!(vm.memory().read(0x4000 + 35 * 8), 777);
    }

    #[test]
    fn fp_ranges_use_fp_registers() {
        let mut b = ProgramBuilder::new("fp");
        let i = b.vreg_int("i");
        let f = b.vreg_fp("f");
        let g = b.vreg_fp("g");
        let base = b.vreg_int("base");
        b.lda(base, 0x4000);
        b.lda(i, 4);
        b.cvtqt(f, i);
        b.sqrtt(g, f);
        b.stt(base, 0, g);
        let p = b.finish().unwrap();
        let alloc = check_semantics(&p, AllocatorKind::ClusterAware, 2);
        assert_eq!(alloc.map[&f].bank(), RegBank::Fp);
        assert_eq!(alloc.map[&g].bank(), RegBank::Fp);
        assert_eq!(alloc.map[&i].bank(), RegBank::Int);
        let mut vm = Vm::new(&alloc.program);
        vm.run_to_end().unwrap();
        assert_eq!(f64::from_bits(vm.memory().read(0x4000)), 2.0);
    }

    #[test]
    fn single_cluster_allocation_works() {
        let (p, _) = store_heavy_program(20);
        let alloc = check_semantics(&p, AllocatorKind::ClusterAware, 1);
        assert_eq!(alloc.stats.cross_cluster_moves, 0);
    }
}
