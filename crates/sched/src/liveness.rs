//! Live-variable analysis.

use std::collections::HashSet;

use mcl_trace::{BlockId, Program, RegName};

use crate::cfg::Cfg;

/// Per-block liveness: which registers are live on entry to and exit
/// from each basic block.
///
/// Live ranges are the currency of the paper's schedulers; liveness here
/// feeds the interference graph used by the register allocator.
#[derive(Debug, Clone)]
pub struct Liveness<R> {
    live_in: Vec<HashSet<R>>,
    live_out: Vec<HashSet<R>>,
}

impl<R: RegName> Liveness<R> {
    /// Computes liveness for `program` using `cfg` (standard backward
    /// iterative dataflow to a fixpoint).
    ///
    /// Registers listed in [`Program::reg_init`] are treated as defined
    /// before entry (they do not extend liveness), and nothing is live
    /// out of program exit.
    #[must_use]
    pub fn of(program: &Program<R>, cfg: &Cfg) -> Liveness<R> {
        let n = program.blocks.len();
        // use/def per block.
        let mut uses: Vec<HashSet<R>> = vec![HashSet::new(); n];
        let mut defs: Vec<HashSet<R>> = vec![HashSet::new(); n];
        for (bi, block) in program.blocks.iter().enumerate() {
            for instr in &block.instrs {
                for src in instr.reads() {
                    if !defs[bi].contains(&src) {
                        uses[bi].insert(src);
                    }
                }
                if let Some(dest) = instr.writes() {
                    defs[bi].insert(dest);
                }
            }
        }

        let mut live_in: Vec<HashSet<R>> = vec![HashSet::new(); n];
        let mut live_out: Vec<HashSet<R>> = vec![HashSet::new(); n];
        // Iterate in postorder (reverse of RPO) for fast convergence,
        // then loop until stable (handles cycles).
        let order: Vec<usize> = cfg.reverse_postorder().into_iter().rev().collect();
        // Fall back to all blocks if some are unreachable (they still
        // deserve consistent, if trivial, results).
        let mut changed = true;
        while changed {
            changed = false;
            for &bi in &order {
                let mut out: HashSet<R> = HashSet::new();
                for &s in cfg.succs(BlockId::new(bi)) {
                    out.extend(live_in[s].iter().copied());
                }
                let mut inn: HashSet<R> = uses[bi].clone();
                for &r in &out {
                    if !defs[bi].contains(&r) {
                        inn.insert(r);
                    }
                }
                if out != live_out[bi] || inn != live_in[bi] {
                    live_out[bi] = out;
                    live_in[bi] = inn;
                    changed = true;
                }
            }
        }
        Liveness { live_in, live_out }
    }

    /// Registers live on entry to `block`.
    #[must_use]
    pub fn live_in(&self, block: BlockId) -> &HashSet<R> {
        &self.live_in[block.index()]
    }

    /// Registers live on exit from `block`.
    #[must_use]
    pub fn live_out(&self, block: BlockId) -> &HashSet<R> {
        &self.live_out[block.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcl_trace::ProgramBuilder;

    #[test]
    fn loop_carried_value_is_live_around_the_loop() {
        let mut b = ProgramBuilder::new("t");
        let i = b.vreg_int("i");
        let sum = b.vreg_int("sum");
        let body = b.new_block("body");
        let exit = b.new_block("exit");
        b.lda(i, 3);
        b.lda(sum, 0);
        b.switch_to(body);
        b.addq(sum, sum, i);
        b.subq_imm(i, i, 1);
        b.bne(i, body);
        b.switch_to(exit);
        let out = b.vreg_int("out");
        b.addq_imm(out, sum, 0);
        let p = b.finish().unwrap();
        let cfg = Cfg::of(&p);
        let live = Liveness::of(&p, &cfg);

        // Both i and sum are live into and out of the loop body.
        assert!(live.live_in(body).contains(&i));
        assert!(live.live_in(body).contains(&sum));
        assert!(live.live_out(body).contains(&i));
        assert!(live.live_out(body).contains(&sum));
        // Only sum survives into the exit block.
        assert!(live.live_in(exit).contains(&sum));
        assert!(!live.live_in(exit).contains(&i));
        // Nothing is live at program exit.
        assert!(live.live_out(exit).is_empty());
    }

    #[test]
    fn dead_definition_is_not_live() {
        let mut b = ProgramBuilder::new("t");
        let x = b.vreg_int("x");
        let y = b.vreg_int("y");
        let next = b.new_block("next");
        b.lda(x, 1);
        b.lda(y, 2); // dead: overwritten in next before use
        b.switch_to(next);
        b.lda(y, 3);
        b.addq(x, x, y);
        let p = b.finish().unwrap();
        let cfg = Cfg::of(&p);
        let live = Liveness::of(&p, &cfg);
        assert!(live.live_in(next).contains(&x));
        assert!(!live.live_in(next).contains(&y), "y is redefined before use");
    }

    #[test]
    fn branch_condition_is_a_use() {
        let mut b = ProgramBuilder::new("t");
        let c = b.vreg_int("c");
        let t = b.new_block("t");
        b.reg_init(c, 1);
        b.bne(c, t);
        b.switch_to(t);
        let p = b.finish().unwrap();
        let cfg = Cfg::of(&p);
        let live = Liveness::of(&p, &cfg);
        assert!(live.live_in(BlockId::new(0)).contains(&c));
    }
}
