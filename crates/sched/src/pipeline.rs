//! The end-to-end scheduling pipeline (Section 3.1's six steps).

use mcl_isa::{assign::RegisterAssignment, ArchReg, Latencies};
use mcl_trace::{Profile, Program, ValidateError, Vm, VmError, Vreg};


use crate::alloc::{allocate, Allocation, AllocError, AllocatorKind, SpillStats};
use crate::listsched::list_schedule;
use crate::partition::{LocalScheduler, Partition, PartitionConfig};

/// Which scheduler produces the register assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// Cluster-blind allocation — models the paper's *native binary*
    /// ("none" column of Table 2).
    Naive,
    /// The paper's local scheduler (Section 3.5): profile-guided
    /// live-range partitioning, then cluster-aware allocation.
    Local,
    /// The local scheduler with global-register designation disabled
    /// (every live range is a local candidate) — ablation A4.
    LocalNoGlobals,
    /// Round-robin live-range partitioning with cluster-aware
    /// allocation — a balance-only strawman baseline.
    RoundRobin,
    /// Integer live ranges on cluster 0, floating point on cluster 1 —
    /// the historic split-datapath organisation, as a baseline.
    BankSplit,
}

/// Pipeline tuning.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleOptions {
    /// The local scheduler's imbalance constant (Section 3.5).
    pub imbalance_threshold: f64,
    /// Whether to run the prepass list scheduler (step 2).
    pub prepass_schedule: bool,
    /// Externally supplied per-block execution estimates; when absent
    /// the pipeline profiles the program by executing it once (as the
    /// paper derives estimates "from profiling the execution").
    pub profile: Option<Profile>,
    /// Functional-unit latencies used by the list scheduler.
    pub latencies: Latencies,
}

impl Default for ScheduleOptions {
    fn default() -> ScheduleOptions {
        ScheduleOptions {
            imbalance_threshold: 4.0,
            prepass_schedule: true,
            profile: None,
            latencies: Latencies::table1(),
        }
    }
}

/// Statistics from one pipeline run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScheduleStats {
    /// Spill/retry statistics from register allocation.
    pub spill: SpillStats,
    /// Instructions executed by the profiling run (0 when a profile was
    /// supplied).
    pub profiled_steps: u64,
    /// Live ranges assigned to each cluster by the partitioner.
    pub partition_counts: Vec<usize>,
}

/// The kind-independent front half of the pipeline: the prepass-scheduled
/// intermediate-language program plus its execution profile.
///
/// Produced by [`SchedulePipeline::prepare`] and consumed by
/// [`SchedulePipeline::run_prepared`]; callers that schedule one program
/// under several scheduler kinds or partitioner thresholds (as the
/// benchmark harness does) prepare once and share the result — the
/// profiling run is by far the most expensive step.
#[derive(Debug, Clone)]
pub struct PreparedIl {
    scheduled_il: Program<Vreg>,
    profile: Profile,
    profiled_steps: u64,
}

impl PreparedIl {
    /// The prepass-scheduled intermediate-language program.
    #[must_use]
    pub fn scheduled_il(&self) -> &Program<Vreg> {
        &self.scheduled_il
    }

    /// The per-block execution profile.
    #[must_use]
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// Instructions executed by the profiling run (0 when a profile was
    /// supplied via [`ScheduleOptions::profile`]).
    #[must_use]
    pub fn profiled_steps(&self) -> u64 {
        self.profiled_steps
    }
}

/// A scheduled (machine-level) program plus the decisions behind it.
#[derive(Debug, Clone)]
pub struct Scheduled {
    /// The machine program ready for tracing/simulation.
    pub program: Program<ArchReg>,
    /// The final live-range partition (after any cross-cluster spills).
    pub partition: Partition,
    /// Pipeline statistics.
    pub stats: ScheduleStats,
}

/// Errors from [`SchedulePipeline::run`].
#[derive(Debug)]
pub enum ScheduleError {
    /// The input program is structurally invalid.
    Validate(ValidateError),
    /// The profiling run failed.
    Vm(VmError),
    /// Register allocation failed.
    Alloc(AllocError),
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::Validate(e) => write!(f, "invalid program: {e}"),
            ScheduleError::Vm(e) => write!(f, "profiling run failed: {e}"),
            ScheduleError::Alloc(e) => write!(f, "register allocation failed: {e}"),
        }
    }
}

impl std::error::Error for ScheduleError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScheduleError::Validate(e) => Some(e),
            ScheduleError::Vm(e) => Some(e),
            ScheduleError::Alloc(e) => Some(e),
        }
    }
}

impl From<ValidateError> for ScheduleError {
    fn from(e: ValidateError) -> ScheduleError {
        ScheduleError::Validate(e)
    }
}

impl From<VmError> for ScheduleError {
    fn from(e: VmError) -> ScheduleError {
        ScheduleError::Vm(e)
    }
}

impl From<AllocError> for ScheduleError {
    fn from(e: AllocError) -> ScheduleError {
        ScheduleError::Alloc(e)
    }
}

/// Drives intermediate-language programs through prepass scheduling,
/// profiling, live-range partitioning, and register allocation, yielding
/// machine programs for the simulator.
///
/// # Example
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct SchedulePipeline {
    kind: SchedulerKind,
    assignment: RegisterAssignment,
    options: ScheduleOptions,
}

impl SchedulePipeline {
    /// Creates a pipeline targeting the given register-to-cluster
    /// assignment.
    #[must_use]
    pub fn new(kind: SchedulerKind, assignment: &RegisterAssignment) -> SchedulePipeline {
        SchedulePipeline { kind, assignment: assignment.clone(), options: ScheduleOptions::default() }
    }

    /// Replaces the pipeline options.
    #[must_use]
    pub fn with_options(mut self, options: ScheduleOptions) -> SchedulePipeline {
        self.options = options;
        self
    }

    /// The scheduler kind.
    #[must_use]
    pub fn kind(&self) -> SchedulerKind {
        self.kind
    }

    /// Runs the pipeline on an IL program — equivalent to
    /// [`SchedulePipeline::prepare`] followed by
    /// [`SchedulePipeline::run_prepared`].
    ///
    /// # Errors
    ///
    /// See [`ScheduleError`].
    pub fn run(&self, il: &Program<Vreg>) -> Result<Scheduled, ScheduleError> {
        self.run_prepared(&self.prepare(il)?)
    }

    /// The kind-independent front half: validation, prepass code
    /// scheduling (step 2), and profiling (footnote 1 of Section 3.5).
    ///
    /// The result depends only on the program and the options' prepass /
    /// profile / latency fields — not on the scheduler kind or the
    /// imbalance threshold — so it can be shared across
    /// [`SchedulePipeline::run_prepared`] calls with different kinds.
    ///
    /// # Errors
    ///
    /// See [`ScheduleError`].
    pub fn prepare(&self, il: &Program<Vreg>) -> Result<PreparedIl, ScheduleError> {
        il.validate()?;

        // Step 2: prepass code scheduling.
        let scheduled_il = if self.options.prepass_schedule {
            list_schedule(il, &self.options.latencies)
        } else {
            il.clone()
        };

        // Profiling (footnote 1 of Section 3.5).
        let mut profiled_steps = 0;
        let profile = match &self.options.profile {
            Some(p) => p.clone(),
            None => {
                let mut vm = Vm::new(&scheduled_il);
                profiled_steps = vm.run_to_end()?;
                vm.profile().clone()
            }
        };

        Ok(PreparedIl { scheduled_il, profile, profiled_steps })
    }

    /// The kind-dependent back half: live-range partitioning (step 4)
    /// and register allocation (step 5) over a prepared program.
    ///
    /// # Errors
    ///
    /// See [`ScheduleError`].
    pub fn run_prepared(&self, prepared: &PreparedIl) -> Result<Scheduled, ScheduleError> {
        // Step 3 (ablation): optionally ignore global designations. The
        // designation is invisible to the profiling VM, so clearing it
        // here (on a copy) matches clearing it before profiling.
        let no_globals;
        let scheduled_il = if self.kind == SchedulerKind::LocalNoGlobals {
            let mut p = prepared.scheduled_il.clone();
            p.global_candidates.clear();
            no_globals = p;
            &no_globals
        } else {
            &prepared.scheduled_il
        };
        let profile = &prepared.profile;

        // Step 4: live-range partitioning.
        let multicluster = self.assignment.clusters() > 1;
        let mut partition = match (self.kind, multicluster) {
            (_, false) | (SchedulerKind::Naive, _) => Partition::single_cluster(scheduled_il),
            (SchedulerKind::Local | SchedulerKind::LocalNoGlobals, true) => {
                let config = PartitionConfig {
                    clusters: self.assignment.clusters(),
                    imbalance_threshold: self.options.imbalance_threshold,
                };
                LocalScheduler::new(config).partition(scheduled_il, profile)
            }
            (SchedulerKind::RoundRobin, true) => {
                Partition::round_robin(scheduled_il, self.assignment.clusters())
            }
            (SchedulerKind::BankSplit, true) => Partition::by_bank(scheduled_il),
        };

        // Step 5: register allocation (spill code inserted as needed).
        let alloc_kind = match self.kind {
            SchedulerKind::Naive => AllocatorKind::Blind,
            _ => AllocatorKind::ClusterAware,
        };
        let Allocation { program, map: _, stats: spill } =
            allocate(scheduled_il, &mut partition, &self.assignment, alloc_kind)?;

        let partition_counts = partition.counts(self.assignment.clusters().max(1));
        Ok(Scheduled {
            program,
            partition,
            stats: ScheduleStats {
                spill,
                profiled_steps: prepared.profiled_steps,
                partition_counts,
            },
        })
    }
}

/// Convenience: schedule `il` for a machine program with defaults.
///
/// # Errors
///
/// See [`ScheduleError`].
pub fn schedule(
    il: &Program<Vreg>,
    kind: SchedulerKind,
    assignment: &RegisterAssignment,
) -> Result<Program<ArchReg>, ScheduleError> {
    Ok(SchedulePipeline::new(kind, assignment).run(il)?.program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcl_isa::ClusterId;
    use mcl_trace::ProgramBuilder;

    /// A small loop workload exercising both banks and memory.
    fn sample_il() -> Program<Vreg> {
        let mut b = ProgramBuilder::new("sample");
        let sp = b.vreg_int("sp");
        b.designate_global_candidate(sp);
        b.reg_init(sp, 0x9000);
        let i = b.vreg_int("i");
        let acc = b.vreg_fp("acc");
        let fi = b.vreg_fp("fi");
        let body = b.new_block("body");
        let exit = b.new_block("exit");
        b.lda(i, 20);
        b.cvtqt(acc, i);
        b.switch_to(body);
        b.cvtqt(fi, i);
        b.addt(acc, acc, fi);
        b.subq_imm(i, i, 1);
        b.bne(i, body);
        b.switch_to(exit);
        b.stt(sp, 0, acc);
        b.finish().unwrap()
    }

    fn run_and_compare(kind: SchedulerKind, assignment: &RegisterAssignment) -> Scheduled {
        let il = sample_il();
        let scheduled = SchedulePipeline::new(kind, assignment).run(&il).unwrap();
        let mut vm_il = Vm::new(&il);
        vm_il.run_to_end().unwrap();
        let mut vm_m = Vm::new(&scheduled.program);
        vm_m.run_to_end().unwrap();
        assert_eq!(
            vm_il.memory().read(0x9000),
            vm_m.memory().read(0x9000),
            "machine program must compute the same result"
        );
        scheduled
    }

    #[test]
    fn local_pipeline_preserves_semantics_dual_cluster() {
        let assignment = RegisterAssignment::even_odd_with_default_globals(2);
        let s = run_and_compare(SchedulerKind::Local, &assignment);
        assert_eq!(s.stats.partition_counts.len(), 2);
        assert!(s.stats.profiled_steps > 0);
    }

    #[test]
    fn naive_pipeline_preserves_semantics_dual_cluster() {
        let assignment = RegisterAssignment::even_odd_with_default_globals(2);
        run_and_compare(SchedulerKind::Naive, &assignment);
    }

    #[test]
    fn single_cluster_pipeline_preserves_semantics() {
        let assignment = RegisterAssignment::single_cluster();
        let s = run_and_compare(SchedulerKind::Naive, &assignment);
        assert_eq!(s.stats.partition_counts.len(), 1);
    }

    #[test]
    fn round_robin_pipeline_preserves_semantics() {
        let assignment = RegisterAssignment::even_odd_with_default_globals(2);
        run_and_compare(SchedulerKind::RoundRobin, &assignment);
    }

    #[test]
    fn local_no_globals_ignores_designations() {
        let assignment = RegisterAssignment::even_odd_with_default_globals(2);
        let il = sample_il();
        let s = SchedulePipeline::new(SchedulerKind::LocalNoGlobals, &assignment)
            .run(&il)
            .unwrap();
        // The sp live range must now be a local register somewhere.
        let total: usize = s.stats.partition_counts.iter().sum();
        // All 4 int/fp ranges are local candidates (sp, i, acc, fi) plus
        // any spill temporaries.
        assert!(total >= 4, "counts: {:?}", s.stats.partition_counts);
        run_and_compare(SchedulerKind::LocalNoGlobals, &assignment);
    }

    #[test]
    fn supplied_profile_skips_the_profiling_run() {
        let assignment = RegisterAssignment::even_odd_with_default_globals(2);
        let il = sample_il();
        let profile = Profile::from_counts(vec![1, 20, 1]);
        let s = SchedulePipeline::new(SchedulerKind::Local, &assignment)
            .with_options(ScheduleOptions { profile: Some(profile), ..Default::default() })
            .run(&il)
            .unwrap();
        assert_eq!(s.stats.profiled_steps, 0);
        assert!(s.program.validate().is_ok());
    }

    #[test]
    fn local_partition_covers_every_live_range() {
        let assignment = RegisterAssignment::even_odd_with_default_globals(2);
        let il = sample_il();
        let s = SchedulePipeline::new(SchedulerKind::Local, &assignment).run(&il).unwrap();
        // Spot-check: partition knows a cluster (or global) for the
        // machine program's history.
        let c0 = s.partition.counts(2);
        assert_eq!(c0.len(), 2);
        let _ = ClusterId::C0;
    }

    #[test]
    fn prepass_can_be_disabled() {
        let assignment = RegisterAssignment::even_odd_with_default_globals(2);
        let il = sample_il();
        let s = SchedulePipeline::new(SchedulerKind::Local, &assignment)
            .with_options(ScheduleOptions { prepass_schedule: false, ..Default::default() })
            .run(&il)
            .unwrap();
        assert!(s.program.validate().is_ok());
    }

    #[test]
    fn invalid_program_is_rejected() {
        let assignment = RegisterAssignment::single_cluster();
        let empty = Program::<Vreg> {
            name: "empty".into(),
            blocks: vec![],
            reg_init: vec![],
            mem_init: vec![],
            global_candidates: vec![],
        };
        let err = SchedulePipeline::new(SchedulerKind::Naive, &assignment).run(&empty);
        assert!(matches!(err, Err(ScheduleError::Validate(_))));
    }
}
