//! Interference graphs for register allocation.

use std::collections::{HashMap, HashSet};

use mcl_trace::{BlockId, Program, RegName};

use crate::cfg::Cfg;
use crate::liveness::Liveness;

/// An interference graph over a program's registers: nodes are registers
/// (live ranges), edges connect pairs that are simultaneously live and
/// therefore cannot share a colour.
///
/// Built by walking each block backwards from its live-out set, the
/// classic construction from Briggs et al. A definition interferes with
/// everything live across it (except itself).
#[derive(Debug, Clone, Default)]
pub struct InterferenceGraph<R> {
    adj: HashMap<R, HashSet<R>>,
}

impl<R: RegName> InterferenceGraph<R> {
    /// Builds the interference graph of `program`.
    ///
    /// Registers in [`Program::reg_init`] are live from program entry, so
    /// they are treated as defined at entry (they interfere with whatever
    /// is live into block 0).
    #[must_use]
    pub fn of(program: &Program<R>, cfg: &Cfg, liveness: &Liveness<R>) -> InterferenceGraph<R> {
        let mut graph = InterferenceGraph { adj: HashMap::new() };
        // Ensure every named register is a node even if interference-free.
        for block in &program.blocks {
            for instr in &block.instrs {
                for r in instr.named_regs() {
                    graph.adj.entry(r).or_default();
                }
            }
        }
        for (reg, _) in &program.reg_init {
            graph.adj.entry(*reg).or_default();
        }

        for (bi, block) in program.blocks.iter().enumerate() {
            let mut live: HashSet<R> = liveness.live_out(BlockId::new(bi)).clone();
            for instr in block.instrs.iter().rev() {
                if let Some(dest) = instr.writes() {
                    for &other in &live {
                        if other != dest {
                            graph.add_edge(dest, other);
                        }
                    }
                    live.remove(&dest);
                }
                for src in instr.reads() {
                    live.insert(src);
                }
            }
        }

        // reg_init values are all defined simultaneously at entry: they
        // interfere with each other if live into block 0, and with
        // everything live at entry.
        let entry_live: Vec<R> = if program.blocks.is_empty() {
            Vec::new()
        } else {
            liveness.live_in(BlockId::new(0)).iter().copied().collect()
        };
        let init_regs: Vec<R> = program.reg_init.iter().map(|&(r, _)| r).collect();
        for &r in &init_regs {
            if !entry_live.contains(&r) {
                continue;
            }
            for &other in &entry_live {
                if other != r {
                    graph.add_edge(r, other);
                }
            }
        }
        let _ = cfg;
        graph
    }

    /// Adds an undirected edge.
    pub fn add_edge(&mut self, a: R, b: R) {
        if a == b {
            return;
        }
        self.adj.entry(a).or_default().insert(b);
        self.adj.entry(b).or_default().insert(a);
    }

    /// Whether `a` and `b` interfere.
    #[must_use]
    pub fn interferes(&self, a: R, b: R) -> bool {
        self.adj.get(&a).is_some_and(|s| s.contains(&b))
    }

    /// The neighbours of `r`.
    #[must_use]
    pub fn neighbors(&self, r: R) -> Option<&HashSet<R>> {
        self.adj.get(&r)
    }

    /// The degree of `r` (0 for unknown nodes).
    #[must_use]
    pub fn degree(&self, r: R) -> usize {
        self.adj.get(&r).map_or(0, HashSet::len)
    }

    /// Iterates over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = R> + '_ {
        self.adj.keys().copied()
    }

    /// The number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Whether the graph is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcl_trace::ProgramBuilder;

    #[test]
    fn sequential_temporaries_do_not_interfere() {
        let mut b = ProgramBuilder::new("t");
        let x = b.vreg_int("x");
        let y = b.vreg_int("y");
        let out = b.vreg_int("out");
        b.lda(x, 1);
        b.addq_imm(out, x, 1); // x dies here
        b.lda(y, 2); // y born after x's death
        b.addq(out, out, y);
        let p = b.finish().unwrap();
        let cfg = Cfg::of(&p);
        let live = Liveness::of(&p, &cfg);
        let g = InterferenceGraph::of(&p, &cfg, &live);
        assert!(!g.interferes(x, y));
        assert!(g.interferes(x, out) || g.interferes(out, y));
    }

    #[test]
    fn simultaneously_live_values_interfere() {
        let mut b = ProgramBuilder::new("t");
        let x = b.vreg_int("x");
        let y = b.vreg_int("y");
        let z = b.vreg_int("z");
        b.lda(x, 1);
        b.lda(y, 2);
        b.addq(z, x, y); // x and y both live here
        let p = b.finish().unwrap();
        let cfg = Cfg::of(&p);
        let live = Liveness::of(&p, &cfg);
        let g = InterferenceGraph::of(&p, &cfg, &live);
        assert!(g.interferes(x, y));
        assert!(!g.interferes(z, x), "z is born as x dies");
    }

    #[test]
    fn loop_carried_values_interfere() {
        let mut b = ProgramBuilder::new("t");
        let i = b.vreg_int("i");
        let sum = b.vreg_int("sum");
        let body = b.new_block("body");
        b.lda(i, 3);
        b.lda(sum, 0);
        b.switch_to(body);
        b.addq(sum, sum, i);
        b.subq_imm(i, i, 1);
        b.bne(i, body);
        let p = b.finish().unwrap();
        let cfg = Cfg::of(&p);
        let live = Liveness::of(&p, &cfg);
        let g = InterferenceGraph::of(&p, &cfg, &live);
        assert!(g.interferes(i, sum));
        assert_eq!(g.degree(i), 1);
    }

    #[test]
    fn reg_init_values_interfere_with_each_other_when_used() {
        let mut b = ProgramBuilder::new("t");
        let a = b.vreg_int("a");
        let c = b.vreg_int("c");
        let out = b.vreg_int("out");
        b.reg_init(a, 10);
        b.reg_init(c, 20);
        b.addq(out, a, c);
        let p = b.finish().unwrap();
        let cfg = Cfg::of(&p);
        let live = Liveness::of(&p, &cfg);
        let g = InterferenceGraph::of(&p, &cfg, &live);
        assert!(g.interferes(a, c));
    }

    #[test]
    fn every_named_register_is_a_node() {
        let mut b = ProgramBuilder::new("t");
        let solo = b.vreg_int("solo");
        b.lda(solo, 1);
        let p = b.finish().unwrap();
        let cfg = Cfg::of(&p);
        let live = Liveness::of(&p, &cfg);
        let g = InterferenceGraph::of(&p, &cfg, &live);
        assert_eq!(g.len(), 1);
        assert_eq!(g.degree(solo), 0);
    }
}
