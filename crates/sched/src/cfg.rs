//! Control-flow-graph analysis over [`mcl_trace::Program`]s.

use mcl_isa::Opcode;
use mcl_trace::{BlockId, Program};

use mcl_trace::RegName;

/// Static successor/predecessor structure of a program.
///
/// Edge rules (matching the VM's dynamic semantics):
///
/// - a block with no terminator falls through to the next block;
/// - `br` has a single edge to its target;
/// - conditional branches have edges to the target and the fall-through;
/// - `jsr` has edges to the callee *and* to its fall-through (the return
///   point), so values live across a call stay live without flowing
///   *through* the callee body;
/// - `ret` has edges to every `jsr` fall-through in the program (any
///   return point), a sound over-approximation;
/// - `jmp` (computed goto) conservatively has edges to every block.
#[derive(Debug, Clone)]
pub struct Cfg {
    succs: Vec<Vec<usize>>,
    preds: Vec<Vec<usize>>,
}

impl Cfg {
    /// Builds the CFG of `program`.
    #[must_use]
    pub fn of<R: RegName>(program: &Program<R>) -> Cfg {
        let n = program.blocks.len();
        // Return points: fall-throughs of every jsr.
        let mut return_points: Vec<usize> = Vec::new();
        for (bi, block) in program.blocks.iter().enumerate() {
            if let Some(last) = block.instrs.last() {
                if last.op == Opcode::Jsr && bi + 1 < n {
                    return_points.push(bi + 1);
                }
            }
        }

        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (bi, block) in program.blocks.iter().enumerate() {
            let fallthrough = if bi + 1 < n { Some(bi + 1) } else { None };
            let mut out = Vec::new();
            match block.instrs.last() {
                None => out.extend(fallthrough),
                Some(last) => match last.op {
                    Opcode::Br => out.extend(last.target.map(BlockId::index)),
                    Opcode::Beq | Opcode::Bne | Opcode::Blt | Opcode::Bge => {
                        out.extend(last.target.map(BlockId::index));
                        out.extend(fallthrough);
                    }
                    Opcode::Jsr => {
                        out.extend(last.target.map(BlockId::index));
                        out.extend(fallthrough);
                    }
                    Opcode::Ret => out.extend(return_points.iter().copied()),
                    Opcode::Jmp => out.extend(0..n),
                    _ => out.extend(fallthrough),
                },
            }
            out.sort_unstable();
            out.dedup();
            succs[bi] = out;
        }

        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (bi, out) in succs.iter().enumerate() {
            for &s in out {
                preds[s].push(bi);
            }
        }
        Cfg { succs, preds }
    }

    /// The successors of `block`.
    #[must_use]
    pub fn succs(&self, block: BlockId) -> &[usize] {
        &self.succs[block.index()]
    }

    /// The predecessors of `block`.
    #[must_use]
    pub fn preds(&self, block: BlockId) -> &[usize] {
        &self.preds[block.index()]
    }

    /// The number of blocks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// Whether the CFG has no blocks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// A reverse postorder over blocks reachable from the entry — a good
    /// iteration order for forward dataflow (its reverse suits backward
    /// dataflow like liveness).
    #[must_use]
    pub fn reverse_postorder(&self) -> Vec<usize> {
        let n = self.len();
        let mut visited = vec![false; n];
        let mut post = Vec::with_capacity(n);
        // Iterative DFS with an explicit stack of (node, next-child).
        let mut stack: Vec<(usize, usize)> = Vec::new();
        if n > 0 {
            visited[0] = true;
            stack.push((0, 0));
        }
        while let Some(&mut (node, ref mut child)) = stack.last_mut() {
            if *child < self.succs[node].len() {
                let next = self.succs[node][*child];
                *child += 1;
                if !visited[next] {
                    visited[next] = true;
                    stack.push((next, 0));
                }
            } else {
                post.push(node);
                stack.pop();
            }
        }
        post.reverse();
        post
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcl_trace::{ProgramBuilder, Vreg};

    #[test]
    fn fallthrough_and_branch_edges() {
        let mut b = ProgramBuilder::new("t");
        let i = b.vreg_int("i");
        let body = b.new_block("body");
        let exit = b.new_block("exit");
        b.lda(i, 3); // entry falls through to body
        b.switch_to(body);
        b.subq_imm(i, i, 1);
        b.bne(i, body); // loop back-edge + fallthrough to exit
        b.switch_to(exit);
        b.lda(i, 0);
        let p = b.finish().unwrap();
        let cfg = Cfg::of(&p);
        assert_eq!(cfg.succs(BlockId::new(0)), &[1]);
        assert_eq!(cfg.succs(BlockId::new(1)), &[1, 2]);
        assert_eq!(cfg.succs(BlockId::new(2)), &[] as &[usize]);
        assert_eq!(cfg.preds(BlockId::new(1)), &[0, 1]);
    }

    #[test]
    fn unconditional_branch_has_single_edge() {
        let mut b = ProgramBuilder::<Vreg>::new("t");
        let x = b.vreg_int("x");
        let skipped = b.new_block("skipped");
        let exit = b.new_block("exit");
        b.br(exit);
        b.switch_to(skipped);
        b.lda(x, 1);
        b.switch_to(exit);
        b.lda(x, 2);
        let p = b.finish().unwrap();
        let cfg = Cfg::of(&p);
        assert_eq!(cfg.succs(BlockId::new(0)), &[exit.index()]);
        assert!(cfg.preds(skipped).is_empty());
        assert_eq!(cfg.preds(exit), &[0, skipped.index()]);
    }

    #[test]
    fn jsr_edges_include_return_point() {
        let mut b = ProgramBuilder::new("t");
        let link = b.vreg_int("link");
        let after = b.new_block("after");
        let callee = b.new_block("callee");
        b.jsr(link, callee);
        b.switch_to(callee);
        b.ret(link);
        let p = b.finish().unwrap();
        let cfg = Cfg::of(&p);
        // jsr: callee + fallthrough (after).
        assert_eq!(cfg.succs(BlockId::new(0)), &[after.index(), callee.index()]);
        // ret: every jsr fallthrough.
        assert_eq!(cfg.succs(callee), &[after.index()]);
    }

    #[test]
    fn reverse_postorder_starts_at_entry_and_respects_edges() {
        let mut b = ProgramBuilder::new("t");
        let i = b.vreg_int("i");
        let body = b.new_block("body");
        let exit = b.new_block("exit");
        b.lda(i, 3);
        b.switch_to(body);
        b.subq_imm(i, i, 1);
        b.bne(i, body);
        b.switch_to(exit);
        b.lda(i, 0);
        let p = b.finish().unwrap();
        let cfg = Cfg::of(&p);
        let rpo = cfg.reverse_postorder();
        assert_eq!(rpo[0], 0);
        let pos = |b: usize| rpo.iter().position(|&x| x == b).unwrap();
        assert!(pos(0) < pos(1));
        assert!(pos(1) < pos(2));
    }

    #[test]
    fn unreachable_blocks_are_absent_from_rpo() {
        let mut b = ProgramBuilder::<Vreg>::new("t");
        let halt = b.vreg_int("halt");
        let exit = b.new_block("exit");
        let dead = b.new_block("dead");
        b.br(exit);
        b.switch_to(exit);
        b.ret(halt); // ends the program; `dead` is unreachable
        b.switch_to(dead);
        b.lda(halt, 1);
        let p = b.finish().unwrap();
        let cfg = Cfg::of(&p);
        let rpo = cfg.reverse_postorder();
        assert!(!rpo.contains(&dead.index()));
    }
}
