//! Prepass code scheduling (list scheduling per basic block).
//!
//! The paper's methodology orders instructions into a code schedule
//! *before* live-range partitioning ("prepass scheduling must be used",
//! Section 3), because the partitioner estimates run-time distribution
//! balance from the fetch order. This module provides a classic
//! dependence-height list scheduler operating within basic blocks.

use std::collections::HashMap;

use mcl_isa::Latencies;
use mcl_trace::{Instr, Program, RegName};

/// Reorders every basic block of `program` by list scheduling and
/// returns the rescheduled program.
///
/// Constraints preserved:
///
/// - data dependences (read-after-write, write-after-read,
///   write-after-write) on registers;
/// - memory order: stores are ordered with respect to every other memory
///   operation (loads may reorder among themselves);
/// - the block terminator stays last.
///
/// Priority is the dependence height (critical-path length to the end of
/// the block under the Table 1 latencies), with the original program
/// order breaking ties, so the result is deterministic.
#[must_use]
pub fn list_schedule<R: RegName>(program: &Program<R>, latencies: &Latencies) -> Program<R> {
    let mut out = program.clone();
    for block in &mut out.blocks {
        block.instrs = schedule_block(&block.instrs, latencies);
    }
    out
}

fn schedule_block<R: RegName>(instrs: &[Instr<R>], latencies: &Latencies) -> Vec<Instr<R>> {
    let n = instrs.len();
    if n < 2 {
        return instrs.to_vec();
    }
    // The terminator (if any) is pinned; schedule the body.
    let body_len = if instrs[n - 1].is_terminator() { n - 1 } else { n };

    // Build the dependence graph over body instructions. succs[i] holds
    // (j, latency) edges i -> j meaning j must follow i.
    let mut succs: Vec<Vec<(usize, u32)>> = vec![Vec::new(); body_len];
    let mut preds: Vec<usize> = vec![0; body_len];
    let mut last_def: HashMap<R, usize> = HashMap::new();
    let mut last_uses: HashMap<R, Vec<usize>> = HashMap::new();
    let mut last_store: Option<usize> = None;
    let mut loads_since_store: Vec<usize> = Vec::new();

    let add_edge = |succs: &mut Vec<Vec<(usize, u32)>>,
                        preds: &mut Vec<usize>,
                        from: usize,
                        to: usize,
                        lat: u32| {
        if from != to && !succs[from].iter().any(|&(j, _)| j == to) {
            succs[from].push((to, lat));
            preds[to] += 1;
        }
    };

    for (i, instr) in instrs[..body_len].iter().enumerate() {
        let lat = latencies.of(instr.op);
        // RAW
        for src in instr.reads() {
            if let Some(&d) = last_def.get(&src) {
                let dlat = latencies.of(instrs[d].op);
                add_edge(&mut succs, &mut preds, d, i, dlat);
            }
            last_uses.entry(src).or_default().push(i);
        }
        if let Some(dest) = instr.writes() {
            // WAW
            if let Some(&d) = last_def.get(&dest) {
                add_edge(&mut succs, &mut preds, d, i, 1);
            }
            // WAR
            if let Some(users) = last_uses.get(&dest) {
                for &u in users {
                    add_edge(&mut succs, &mut preds, u, i, 0);
                }
            }
            last_def.insert(dest, i);
            last_uses.remove(&dest);
        }
        // Memory order.
        if instr.op.is_mem() {
            let is_store = matches!(instr.class(), mcl_isa::InstrClass::Store);
            if is_store {
                if let Some(s) = last_store {
                    add_edge(&mut succs, &mut preds, s, i, 1);
                }
                for &l in &loads_since_store {
                    add_edge(&mut succs, &mut preds, l, i, 0);
                }
                last_store = Some(i);
                loads_since_store.clear();
            } else {
                if let Some(s) = last_store {
                    add_edge(&mut succs, &mut preds, s, i, 1);
                }
                loads_since_store.push(i);
            }
        }
        let _ = lat;
    }

    // Dependence height (critical path to block end).
    let mut height = vec![0u32; body_len];
    for i in (0..body_len).rev() {
        let own = latencies.of(instrs[i].op);
        let mut h = own;
        for &(j, lat) in &succs[i] {
            h = h.max(lat.max(1) + height[j]);
        }
        height[i] = h;
    }

    // Greedy emission: at each step pick the ready instruction with the
    // greatest height; ties go to original order.
    let mut ready: Vec<usize> = (0..body_len).filter(|&i| preds[i] == 0).collect();
    let mut emitted = Vec::with_capacity(n);
    while !ready.is_empty() {
        let pick_pos = (0..ready.len())
            .min_by_key(|&p| (std::cmp::Reverse(height[ready[p]]), ready[p]))
            .expect("ready nonempty");
        let i = ready.swap_remove(pick_pos);
        emitted.push(instrs[i].clone());
        for &(j, _) in &succs[i] {
            preds[j] -= 1;
            if preds[j] == 0 {
                ready.push(j);
            }
        }
    }
    debug_assert_eq!(emitted.len(), body_len, "scheduling must emit every instruction");
    if body_len < n {
        emitted.push(instrs[n - 1].clone());
    }
    emitted
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcl_trace::{ProgramBuilder, Vm};

    #[test]
    fn schedule_preserves_semantics() {
        let mut b = ProgramBuilder::new("t");
        let x = b.vreg_int("x");
        let y = b.vreg_int("y");
        let z = b.vreg_int("z");
        let base = b.vreg_int("base");
        b.lda(base, 0x4000);
        b.lda(x, 5);
        b.mulq_imm(y, x, 3);
        b.stq(base, 0, y);
        b.lda(z, 7); // independent; may move up
        b.addq(y, y, z);
        b.stq(base, 8, y);
        let p = b.finish().unwrap();
        let scheduled = list_schedule(&p, &Latencies::table1());

        let mut vm1 = Vm::new(&p);
        vm1.run_to_end().unwrap();
        let mut vm2 = Vm::new(&scheduled);
        vm2.run_to_end().unwrap();
        assert_eq!(vm1.reg(y), vm2.reg(y));
        assert_eq!(vm1.memory().read(0x4000), vm2.memory().read(0x4000));
        assert_eq!(vm1.memory().read(0x4008), vm2.memory().read(0x4008));
    }

    #[test]
    fn long_latency_chains_are_hoisted() {
        let mut b = ProgramBuilder::new("t");
        let a = b.vreg_int("a");
        let m = b.vreg_int("m");
        let t1 = b.vreg_int("t1");
        let t2 = b.vreg_int("t2");
        let out = b.vreg_int("out");
        b.lda(a, 3);
        // Short independent chain first in program order...
        b.addq_imm(t1, a, 1);
        b.addq_imm(t2, t1, 1);
        // ...then a long multiply chain whose height should hoist it.
        b.mulq(m, a, a);
        b.mulq(m, m, m);
        b.addq(out, m, t2);
        let p = b.finish().unwrap();
        let s = list_schedule(&p, &Latencies::table1());
        let ops: Vec<_> = s.blocks[0].instrs.iter().map(|i| i.op).collect();
        // The first multiply should now precede the first short add.
        let first_mul = ops.iter().position(|&o| o == mcl_isa::Opcode::Mulq).unwrap();
        assert!(first_mul <= 1, "multiply chain should be hoisted, got {ops:?}");
        // Semantics preserved.
        let mut vm1 = Vm::new(&p);
        vm1.run_to_end().unwrap();
        let mut vm2 = Vm::new(&s);
        vm2.run_to_end().unwrap();
        assert_eq!(vm1.reg(out), vm2.reg(out));
    }

    #[test]
    fn terminator_stays_last() {
        let mut b = ProgramBuilder::new("t");
        let i = b.vreg_int("i");
        let body = b.new_block("body");
        b.lda(i, 2);
        b.switch_to(body);
        b.subq_imm(i, i, 1);
        b.bne(i, body);
        let p = b.finish().unwrap();
        let s = list_schedule(&p, &Latencies::table1());
        assert!(s.blocks[1].instrs.last().unwrap().is_terminator());
        assert!(s.validate().is_ok());
    }

    #[test]
    fn stores_keep_their_order() {
        let mut b = ProgramBuilder::new("t");
        let base = b.vreg_int("base");
        let x = b.vreg_int("x");
        b.lda(base, 0x4000);
        b.lda(x, 1);
        b.stq(base, 0, x);
        b.lda(x, 2);
        b.stq(base, 0, x); // must remain after the first store
        let p = b.finish().unwrap();
        let s = list_schedule(&p, &Latencies::table1());
        let mut vm = Vm::new(&s);
        vm.run_to_end().unwrap();
        assert_eq!(vm.memory().read(0x4000), 2);
    }

    #[test]
    fn empty_and_single_instruction_blocks_pass_through() {
        let mut b = ProgramBuilder::new("t");
        let x = b.vreg_int("x");
        let next = b.new_block("next");
        b.lda(x, 1);
        b.switch_to(next);
        let p = b.finish().unwrap();
        let s = list_schedule(&p, &Latencies::table1());
        assert_eq!(s, p);
    }
}
