//! Live-range partitioning: the paper's **local scheduler** (Section 3.5).
//!
//! The local scheduler decides, for each live range, the cluster it
//! should be assigned to, "so as to ensure the instruction-distribution
//! at run time is balanced in the vicinity of every instruction that
//! reads or writes" it:
//!
//! 1. Basic blocks are sorted by profiled execution count (descending),
//!    ties broken by static instruction count (descending).
//! 2. Each block is traversed **bottom-up, in order**; when an
//!    instruction writes an unassigned live range, a cluster is chosen
//!    for that range.
//! 3. If the estimated instruction distribution around the instruction is
//!    *unbalanced* (more than a compile-time-constant number of
//!    instructions distributed to one cluster than the other), the range
//!    goes to the under-subscribed cluster.
//! 4. Otherwise the range goes to the cluster *preferred by the majority*
//!    of the instructions that read or write it — a cluster is preferred
//!    by an instruction if the assignment lets that instruction be
//!    distributed to a single cluster.
//!
//! Live ranges designated global-register candidates (the stack/global
//! pointers; [`mcl_trace::Program::global_candidates`]) are excluded from
//! partitioning.
//!
//! The paper estimates imbalance "on a per-basic-block basis"; this
//! implementation concretises the "vicinity of an instruction" as one
//! full execution of its basic block: at the moment an instruction of a
//! loop body is distributed, the instructions *below* it were distributed
//! on the previous iteration and the instructions *above* it on the
//! current one, so the run-time imbalance around it is the block's net
//! signed distribution imbalance under the current partial assignment.
//! Instructions whose distribution is not yet determined contribute half
//! weight to each cluster.

use std::collections::{HashMap, HashSet};

use mcl_isa::ClusterId;
use mcl_trace::{BlockId, Instr, Profile, Program, Vreg};


/// Tuning knobs for the local scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionConfig {
    /// Number of clusters (the imbalance heuristic supports exactly 2,
    /// matching the paper's evaluation).
    pub clusters: u8,
    /// The compile-time imbalance constant of Section 3.5: the
    /// distribution is considered unbalanced around an instruction when
    /// the estimated signed cluster difference exceeds this value.
    pub imbalance_threshold: f64,
}

impl Default for PartitionConfig {
    fn default() -> PartitionConfig {
        PartitionConfig { clusters: 2, imbalance_threshold: 4.0 }
    }
}

/// The result of live-range partitioning: a total assignment of live
/// ranges to clusters (global candidates excepted).
#[derive(Debug, Clone, Default)]
pub struct Partition {
    cluster_of: HashMap<Vreg, ClusterId>,
    globals: HashSet<Vreg>,
    /// Live ranges in the order the partitioner assigned them (useful
    /// for tracing the algorithm; see the paper's Figure 6 walkthrough).
    pub assignment_order: Vec<Vreg>,
}

impl Partition {
    /// The cluster of a local live range; `None` for global candidates
    /// (which live in every cluster) and for unknown registers.
    #[must_use]
    pub fn cluster_of(&self, v: Vreg) -> Option<ClusterId> {
        self.cluster_of.get(&v).copied()
    }

    /// Whether `v` is a global-register candidate.
    #[must_use]
    pub fn is_global(&self, v: Vreg) -> bool {
        self.globals.contains(&v)
    }

    /// The global-register candidates.
    #[must_use]
    pub fn globals(&self) -> &HashSet<Vreg> {
        &self.globals
    }

    /// Reassigns a live range to a different cluster (used by the
    /// register allocator's spill-to-other-cluster policy).
    pub fn reassign(&mut self, v: Vreg, cluster: ClusterId) {
        self.cluster_of.insert(v, cluster);
    }

    /// Demotes a global candidate to a local live range on `cluster`
    /// (used when no global architectural register is available).
    pub fn demote_global(&mut self, v: Vreg, cluster: ClusterId) {
        self.globals.remove(&v);
        self.cluster_of.insert(v, cluster);
    }

    /// The number of live ranges assigned to each cluster.
    #[must_use]
    pub fn counts(&self, clusters: u8) -> Vec<usize> {
        let mut counts = vec![0usize; usize::from(clusters)];
        for c in self.cluster_of.values() {
            counts[c.index()] += 1;
        }
        counts
    }

    /// A partition that puts every live range of `program` on cluster 0
    /// (the single-cluster / non-partitioned configuration).
    #[must_use]
    pub fn single_cluster(program: &Program<Vreg>) -> Partition {
        let mut part = Partition::default();
        part.globals.extend(program.global_candidates.iter().copied());
        for v in named_vregs(program) {
            if !part.globals.contains(&v) {
                part.cluster_of.insert(v, ClusterId::C0);
            }
        }
        part
    }

    /// The historic integer/floating-point split: every integer live
    /// range on cluster 0, every floating-point live range on cluster 1
    /// (the organisation of early partitioned datapaths). A baseline that
    /// avoids *operand* transfers inside each bank but concentrates each
    /// bank's work on one cluster.
    #[must_use]
    pub fn by_bank(program: &Program<Vreg>) -> Partition {
        use mcl_isa::RegBank;
        let mut part = Partition::default();
        part.globals.extend(program.global_candidates.iter().copied());
        for v in named_vregs(program) {
            if !part.globals.contains(&v) {
                let cluster = match mcl_trace::RegName::bank(v) {
                    RegBank::Int => ClusterId::C0,
                    RegBank::Fp => ClusterId::C1,
                };
                part.cluster_of.insert(v, cluster);
            }
        }
        part
    }

    /// A cluster-blind partition that deals live ranges round-robin
    /// across clusters in storage order — a baseline that balances
    /// *counts* but ignores the instruction stream entirely.
    #[must_use]
    pub fn round_robin(program: &Program<Vreg>, clusters: u8) -> Partition {
        let mut part = Partition::default();
        part.globals.extend(program.global_candidates.iter().copied());
        let mut vregs: Vec<Vreg> = named_vregs(program)
            .into_iter()
            .filter(|v| !part.globals.contains(v))
            .collect();
        vregs.sort();
        for (i, v) in vregs.into_iter().enumerate() {
            part.cluster_of.insert(v, ClusterId::new((i % usize::from(clusters)) as u8));
        }
        part
    }
}

/// The local scheduler of Section 3.5.
#[derive(Debug, Clone, Default)]
pub struct LocalScheduler {
    config: PartitionConfig,
}

impl LocalScheduler {
    /// Creates a local scheduler with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration requests other than two clusters (the
    /// balance heuristic, like the paper's evaluation, is two-cluster).
    #[must_use]
    pub fn new(config: PartitionConfig) -> LocalScheduler {
        assert_eq!(config.clusters, 2, "the local scheduler supports two clusters");
        LocalScheduler { config }
    }

    /// Partitions the live ranges of `program` using `profile` as the
    /// per-block execution estimates.
    #[must_use]
    pub fn partition(&self, program: &Program<Vreg>, profile: &Profile) -> Partition {
        let mut part = Partition::default();
        part.globals.extend(program.global_candidates.iter().copied());

        // Index: which instructions read or write each live range.
        let mut users: HashMap<Vreg, Vec<(usize, usize)>> = HashMap::new();
        for (bi, block) in program.blocks.iter().enumerate() {
            for (ii, instr) in block.instrs.iter().enumerate() {
                for r in instr.named_regs() {
                    users.entry(r).or_default().push((bi, ii));
                }
            }
        }

        // Sort blocks: execution estimate descending, then static size
        // descending, then index (determinism).
        let mut order: Vec<usize> = (0..program.blocks.len()).collect();
        order.sort_by_key(|&bi| {
            (
                std::cmp::Reverse(profile.count(BlockId::new(bi))),
                std::cmp::Reverse(program.blocks[bi].instrs.len()),
                bi,
            )
        });

        for bi in order {
            let block = &program.blocks[bi];
            // Prefix signed imbalance (cluster 0 minus cluster 1) in
            // fetch order; recomputed lazily as assignments change.
            for ii in (0..block.instrs.len()).rev() {
                let instr = &block.instrs[ii];
                let Some(dest) = instr.writes() else { continue };
                if part.globals.contains(&dest) || part.cluster_of.contains_key(&dest) {
                    continue;
                }
                let imbalance = self.block_imbalance(block, &part);
                let cluster = if imbalance.abs() > self.config.imbalance_threshold {
                    // Unbalanced: feed the under-subscribed cluster.
                    if imbalance > 0.0 {
                        ClusterId::C1
                    } else {
                        ClusterId::C0
                    }
                } else {
                    self.majority_vote(program, &users, dest, &part)
                };
                part.cluster_of.insert(dest, cluster);
                part.assignment_order.push(dest);
            }
        }

        // Live ranges never written by an instruction (e.g. reg_init
        // inputs): assign by majority vote in deterministic order.
        let mut leftovers: Vec<Vreg> = named_vregs(program)
            .into_iter()
            .filter(|v| !part.globals.contains(v) && !part.cluster_of.contains_key(v))
            .collect();
        leftovers.sort();
        for v in leftovers {
            let cluster = self.majority_vote(program, &users, v, &part);
            part.cluster_of.insert(v, cluster);
            part.assignment_order.push(v);
        }
        part
    }

    /// The estimated signed distribution imbalance (cluster 0 minus
    /// cluster 1) in the run-time vicinity of an instruction of `block`:
    /// one full execution of the block under the current partial
    /// assignment (see the module docs for the rationale).
    fn block_imbalance(&self, block: &mcl_trace::Block<Vreg>, part: &Partition) -> f64 {
        let mut delta = 0.0;
        for instr in &block.instrs {
            let (w0, w1) = distribution_weights(instr, part);
            delta += w0 - w1;
        }
        delta
    }

    /// The cluster preferred by the majority of the instructions that
    /// read or write `v`: an instruction prefers cluster `c` when
    /// assigning `v` to `c` lets it be distributed to `c` alone.
    fn majority_vote(
        &self,
        program: &Program<Vreg>,
        users: &HashMap<Vreg, Vec<(usize, usize)>>,
        v: Vreg,
        part: &Partition,
    ) -> ClusterId {
        let mut votes = [0u32; 2];
        if let Some(sites) = users.get(&v) {
            for &(bi, ii) in sites {
                let instr = &program.blocks[bi].instrs[ii];
                // An instruction whose destination is a global candidate
                // is dual-distributed regardless: no preference.
                if instr.writes().is_some_and(|d| d != v && part.globals.contains(&d)) {
                    continue;
                }
                // Clusters demanded by the instruction's *other* local,
                // already-assigned registers.
                let mut demanded: Option<ClusterId> = None;
                let mut conflicted = false;
                for r in instr.named_regs() {
                    if r == v || part.globals.contains(&r) {
                        continue;
                    }
                    if let Some(c) = part.cluster_of(r) {
                        match demanded {
                            None => demanded = Some(c),
                            Some(d) if d != c => conflicted = true,
                            _ => {}
                        }
                    }
                }
                if conflicted {
                    continue; // dual regardless of v: abstain
                }
                if let Some(c) = demanded {
                    votes[c.index()] += 1;
                }
            }
        }
        if votes[0] > votes[1] {
            ClusterId::C0
        } else if votes[1] > votes[0] {
            ClusterId::C1
        } else {
            // Tie (or no information): keep the range counts balanced.
            let counts = part.counts(2);
            if counts[0] <= counts[1] {
                ClusterId::C0
            } else {
                ClusterId::C1
            }
        }
    }
}

/// The per-cluster distribution weight of one instruction under a
/// partial assignment: `1.0` to each cluster the instruction would be
/// distributed to, `0.5` to each when nothing is known yet.
fn distribution_weights(instr: &Instr<Vreg>, part: &Partition) -> (f64, f64) {
    let mut needs = [false; 2];
    let mut any_global_dest = false;
    for r in instr.named_regs() {
        if part.globals.contains(&r) {
            continue;
        }
        if let Some(c) = part.cluster_of(r) {
            needs[c.index()] = true;
        }
    }
    if let Some(d) = instr.writes() {
        if part.globals.contains(&d) {
            any_global_dest = true;
        }
    }
    if any_global_dest || (needs[0] && needs[1]) {
        (1.0, 1.0)
    } else if needs[0] {
        (1.0, 0.0)
    } else if needs[1] {
        (0.0, 1.0)
    } else {
        (0.5, 0.5)
    }
}

fn named_vregs(program: &Program<Vreg>) -> Vec<Vreg> {
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    for block in &program.blocks {
        for instr in &block.instrs {
            for r in instr.named_regs() {
                if seen.insert(r) {
                    out.push(r);
                }
            }
        }
    }
    for &(r, _) in &program.reg_init {
        if seen.insert(r) {
            out.push(r);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcl_trace::ProgramBuilder;

    /// Builds the program of the paper's Figure 6. Returns the live
    /// ranges keyed by their paper names.
    fn figure6() -> (Program<Vreg>, HashMap<char, Vreg>, Profile) {
        let mut b = ProgramBuilder::new("figure6");
        let c = b.vreg_int("C");
        let e = b.vreg_int("E");
        let g = b.vreg_int("G");
        let h = b.vreg_int("H");
        let s = b.vreg_int("S");
        let a = b.vreg_int("A");
        let bb = b.vreg_int("B");
        let d = b.vreg_int("D");
        b.designate_global_candidate(s);
        b.reg_init(s, 0x8000);

        let bb2 = b.new_block("bb2");
        let bb3 = b.new_block("bb3");
        let bb4 = b.new_block("bb4");
        let bb5 = b.new_block("bb5");

        // bb1: 1: C = 0        2: E = 16
        b.lda(c, 0);
        b.lda(e, 16);
        // bb2: 3: G = [S] + 8  4: H = [S] + 4   (encoded as offset loads)
        b.switch_to(bb2);
        b.ldq(g, s, 8);
        b.ldq(h, s, 4 & !7); // aligned encoding of the same shape
        // bb3: 5: G = [S] + E  6: H = [S] + 12  7: S = H + E
        b.switch_to(bb3);
        b.ldq(g, s, 0);
        b.addq(g, g, e);
        b.ldq(h, s, 16);
        b.addq(s, h, e);
        // bb4: 8: A = G + 10   9: B = A x A   10: G = B / H   11: C = G + C
        b.switch_to(bb4);
        b.addq_imm(a, g, 10);
        b.mulq(bb, a, a);
        b.addq(g, bb, h); // stands in for the divide (no integer divide in the ISA)
        b.addq(c, g, c);
        // bb5: 12: D = C + G
        b.switch_to(bb5);
        b.addq(d, c, g);

        let program = b.finish().unwrap();
        let profile = Profile::from_counts(vec![20, 10, 10, 100, 20]);
        let names =
            HashMap::from([('C', c), ('E', e), ('G', g), ('H', h), ('S', s), ('A', a), ('B', bb), ('D', d)]);
        (program, names, profile)
    }

    #[test]
    fn figure6_assignment_order_matches_the_paper() {
        let (program, names, profile) = figure6();
        let sched = LocalScheduler::new(PartitionConfig::default());
        let part = sched.partition(&program, &profile);
        // The paper: blocks traversed in order 4, 1, 5, 3, 2, so live
        // ranges are assigned in the order C, G, B, A, E, D, H (S is a
        // global candidate and is never partitioned).
        let expect: Vec<Vreg> =
            ['C', 'G', 'B', 'A', 'E', 'D', 'H'].iter().map(|ch| names[ch]).collect();
        assert_eq!(part.assignment_order, expect);
        assert!(part.is_global(names[&'S']));
        assert_eq!(part.cluster_of(names[&'S']), None);
    }

    #[test]
    fn figure6_every_local_range_gets_a_cluster() {
        let (program, names, profile) = figure6();
        let sched = LocalScheduler::new(PartitionConfig::default());
        let part = sched.partition(&program, &profile);
        for (&ch, &v) in &names {
            if ch == 'S' {
                continue;
            }
            assert!(part.cluster_of(v).is_some(), "live range {ch} unassigned");
        }
        let counts = part.counts(2);
        assert_eq!(counts[0] + counts[1], 7);
    }

    #[test]
    fn related_ranges_cluster_together_when_balanced() {
        // A single dependent chain: the majority vote should keep the
        // whole chain on one cluster (no dual distribution).
        let mut b = ProgramBuilder::new("chain");
        let v0 = b.vreg_int("v0");
        let v1 = b.vreg_int("v1");
        let v2 = b.vreg_int("v2");
        b.lda(v0, 1);
        b.addq_imm(v1, v0, 1);
        b.addq_imm(v2, v1, 1);
        let p = b.finish().unwrap();
        let profile = Profile::from_counts(vec![1]);
        let part = LocalScheduler::new(PartitionConfig::default()).partition(&p, &profile);
        let c0 = part.cluster_of(v0);
        assert_eq!(part.cluster_of(v1), c0);
        assert_eq!(part.cluster_of(v2), c0);
    }

    #[test]
    fn imbalance_threshold_forces_the_other_cluster() {
        // Two long independent chains; with a tight threshold the second
        // chain must land on the other cluster.
        let mut b = ProgramBuilder::new("two-chains");
        let xs: Vec<Vreg> = (0..8).map(|i| b.vreg_int(&format!("x{i}"))).collect();
        let ys: Vec<Vreg> = (0..8).map(|i| b.vreg_int(&format!("y{i}"))).collect();
        b.lda(xs[0], 1);
        for i in 1..8 {
            b.addq_imm(xs[i], xs[i - 1], 1);
        }
        b.lda(ys[0], 2);
        for i in 1..8 {
            b.addq_imm(ys[i], ys[i - 1], 1);
        }
        let p = b.finish().unwrap();
        let profile = Profile::from_counts(vec![1]);
        let part = LocalScheduler::new(PartitionConfig { clusters: 2, imbalance_threshold: 2.0 })
            .partition(&p, &profile);
        let cx = part.cluster_of(xs[0]).unwrap();
        let cy = part.cluster_of(ys[7]).unwrap();
        assert_ne!(cx, cy, "the chains should be split across clusters");
    }

    #[test]
    fn round_robin_balances_counts() {
        let mut b = ProgramBuilder::new("rr");
        let vs: Vec<Vreg> = (0..10).map(|i| b.vreg_int(&format!("v{i}"))).collect();
        for &v in &vs {
            b.lda(v, 1);
        }
        let p = b.finish().unwrap();
        let part = Partition::round_robin(&p, 2);
        let counts = part.counts(2);
        assert_eq!(counts, vec![5, 5]);
    }

    #[test]
    fn single_cluster_partition_uses_cluster_zero_only() {
        let mut b = ProgramBuilder::new("sc");
        let v = b.vreg_int("v");
        b.lda(v, 1);
        let p = b.finish().unwrap();
        let part = Partition::single_cluster(&p);
        assert_eq!(part.cluster_of(v), Some(ClusterId::C0));
        assert_eq!(part.counts(2), vec![1, 0]);
    }

    #[test]
    fn demote_global_makes_a_range_local() {
        let mut b = ProgramBuilder::new("dg");
        let v = b.vreg_int("v");
        b.designate_global_candidate(v);
        b.lda(v, 1);
        let p = b.finish().unwrap();
        let profile = Profile::from_counts(vec![1]);
        let mut part = LocalScheduler::new(PartitionConfig::default()).partition(&p, &profile);
        assert!(part.is_global(v));
        part.demote_global(v, ClusterId::C1);
        assert!(!part.is_global(v));
        assert_eq!(part.cluster_of(v), Some(ClusterId::C1));
    }
}
