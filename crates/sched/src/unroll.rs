//! Loop unrolling (the paper's Section 6 future work).
//!
//! "Loop unrolling, which is a part of trace scheduling, could also be
//! used to generate a code schedule in which multiple iterations of a
//! loop were interleaved, with each iteration scheduled to use a
//! separate cluster of a multicluster processor."
//!
//! [`unroll_self_loops`] unrolls single-block self-loops (a block whose
//! terminator is a conditional branch back to itself) by a given factor:
//! the body is replicated, iteration-private temporaries are renamed per
//! copy (so the copies carry no false dependences and the partitioner is
//! free to place different iterations on different clusters), and the
//! intermediate copies exit through an inverted branch. Loop-carried
//! values and values live after the loop keep their names, preserving
//! semantics for any trip count.

use std::collections::{HashMap, HashSet};

use mcl_isa::Opcode;
use mcl_trace::{BlockId, Instr, Program, RegName, Vreg};

use crate::cfg::Cfg;
use crate::liveness::Liveness;

/// Inverts a conditional branch's sense (`bne` ↔ `beq`, `blt` ↔ `bge`).
fn invert(op: Opcode) -> Option<Opcode> {
    match op {
        Opcode::Bne => Some(Opcode::Beq),
        Opcode::Beq => Some(Opcode::Bne),
        Opcode::Blt => Some(Opcode::Bge),
        Opcode::Bge => Some(Opcode::Blt),
        _ => None,
    }
}

/// Unrolls every eligible single-block self-loop of `program` by
/// `factor` (a factor of 1 returns the program unchanged).
///
/// A block is eligible when its final instruction is an invertible
/// conditional branch targeting the block itself and an exit block
/// follows it. Each copy becomes its own basic block: intermediate
/// copies leave the loop through an inverted branch to the exit, the
/// last copy carries the original back edge. Temporaries that are
/// neither live into the loop head nor live out of the loop are renamed
/// per copy; everything else (loop-carried values, exit-live values)
/// keeps its live range, so semantics are preserved for any trip count.
#[must_use]
pub fn unroll_self_loops(program: &Program<Vreg>, factor: u32) -> Program<Vreg> {
    if factor <= 1 {
        return program.clone();
    }
    let cfg = Cfg::of(program);
    let live = Liveness::of(program, &cfg);
    let mut next_index = max_vreg_index(program) + 1;
    let extra = (factor - 1) as usize;

    // Pass 1: find the eligible loop heads.
    let mut loops: Vec<usize> = Vec::new();
    for (bi, block) in program.blocks.iter().enumerate() {
        if let Some(last) = block.instrs.last() {
            if invert(last.op).is_some()
                && last.target == Some(BlockId::new(bi))
                && bi + 1 < program.blocks.len()
            {
                loops.push(bi);
            }
        }
    }
    if loops.is_empty() {
        return program.clone();
    }

    // Block-index remapping: each unrolled head gains `extra` blocks.
    let remap = |old: usize| -> usize {
        old + loops.iter().filter(|&&l| l < old).count() * extra
    };

    let mut blocks: Vec<mcl_trace::Block<Vreg>> = Vec::with_capacity(program.blocks.len());
    for (bi, block) in program.blocks.iter().enumerate() {
        if !loops.contains(&bi) {
            // Retarget branches for the shifted layout.
            let mut b = block.clone();
            for instr in &mut b.instrs {
                if let Some(t) = instr.target {
                    instr.target = Some(BlockId::new(remap(t.index())));
                }
            }
            blocks.push(b);
            continue;
        }

        let head = remap(bi);
        let exit = head + factor as usize; // block following the last copy
        let last = block.instrs.last().expect("eligible loop has a terminator");
        let inverted = invert(last.op).expect("eligible loop branch inverts");
        let exit_live: HashSet<Vreg> = live.live_in(BlockId::new(bi + 1)).clone();
        let head_live = live.live_in(BlockId::new(bi));

        // Registers private to one iteration may be renamed per copy.
        // Program order, not a set: fresh indices are handed out in
        // iteration order below, and the unrolled program's bytes must
        // be identical across processes (content-addressed caching
        // hashes the packed trace).
        let mut renameable: Vec<Vreg> = Vec::new();
        for instr in &block.instrs {
            if let Some(d) = instr.writes() {
                if !head_live.contains(&d) && !exit_live.contains(&d) && !renameable.contains(&d)
                {
                    renameable.push(d);
                }
            }
        }

        let body = &block.instrs[..block.instrs.len() - 1];
        for copy in 0..factor {
            let mut rename: HashMap<Vreg, Vreg> = HashMap::new();
            if copy > 0 {
                for &v in &renameable {
                    let fresh = Vreg::new(v.bank(), next_index);
                    next_index += 1;
                    rename.insert(v, fresh);
                }
            }
            let apply = |r: Option<Vreg>, rename: &HashMap<Vreg, Vreg>| {
                r.map(|v| rename.get(&v).copied().unwrap_or(v))
            };
            let mut instrs: Vec<Instr<Vreg>> = Vec::with_capacity(body.len() + 1);
            for instr in body {
                let mut instr = instr.clone();
                instr.dest = apply(instr.dest, &rename);
                instr.srcs = [apply(instr.srcs[0], &rename), apply(instr.srcs[1], &rename)];
                instrs.push(instr);
            }
            let mut b = last.clone();
            b.srcs[0] = apply(b.srcs[0], &rename);
            if copy + 1 < factor {
                // Intermediate copies: leave the loop when the original
                // branch would *not* be taken; otherwise fall through to
                // the next copy.
                b.op = inverted;
                b.target = Some(BlockId::new(exit));
            } else {
                // The last copy carries the back edge to the head.
                b.target = Some(BlockId::new(head));
            }
            instrs.push(b);
            blocks.push(mcl_trace::Block {
                label: format!("{}_x{factor}_{copy}", block.label),
                instrs,
            });
        }
    }

    Program {
        name: program.name.clone(),
        blocks,
        reg_init: program.reg_init.clone(),
        mem_init: program.mem_init.clone(),
        global_candidates: program.global_candidates.clone(),
    }
}

fn max_vreg_index(program: &Program<Vreg>) -> u32 {
    let mut max = 0;
    for block in &program.blocks {
        for instr in &block.instrs {
            for r in instr.named_regs() {
                max = max.max(r.index());
            }
        }
    }
    for &(r, _) in &program.reg_init {
        max = max.max(r.index());
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcl_trace::{ProgramBuilder, Vm};

    /// sum of f(i) over a countdown loop with an iteration-private temp.
    fn loop_program(n: i64) -> (Program<Vreg>, Vreg) {
        let mut b = ProgramBuilder::new("loop");
        let i = b.vreg_int("i");
        let sum = b.vreg_int("sum");
        let t = b.vreg_int("t"); // private per iteration
        let body = b.new_block("body");
        let done = b.new_block("done");
        b.lda(i, n);
        b.lda(sum, 0);
        b.switch_to(body);
        b.mulq_imm(t, i, 3);
        b.addq_imm(t, t, 1);
        b.addq(sum, sum, t);
        b.subq_imm(i, i, 1);
        b.bne(i, body);
        b.switch_to(done);
        let out = b.vreg_int("out");
        b.lda(out, 0x4000);
        b.stq(out, 0, sum);
        (b.finish().unwrap(), sum)
    }

    fn result_of(p: &Program<Vreg>) -> u64 {
        let mut vm = Vm::new(p);
        vm.run_to_end().unwrap();
        vm.memory().read(0x4000)
    }

    #[test]
    fn factor_one_is_identity() {
        let (p, _) = loop_program(10);
        assert_eq!(unroll_self_loops(&p, 1), p);
    }

    #[test]
    fn unrolling_preserves_semantics_for_all_trip_counts() {
        for factor in [2u32, 3, 4] {
            for n in 1..=13 {
                let (p, _) = loop_program(n);
                let u = unroll_self_loops(&p, factor);
                assert!(u.validate().is_ok(), "factor {factor}, n {n}");
                assert_eq!(
                    result_of(&p),
                    result_of(&u),
                    "factor {factor}, n {n}"
                );
            }
        }
    }

    #[test]
    fn unrolled_body_is_replicated() {
        let (p, _) = loop_program(10);
        let u = unroll_self_loops(&p, 4);
        // One block per copy, 5 instructions each.
        assert_eq!(u.blocks.len(), p.blocks.len() + 3);
        for copy in 0..4 {
            assert_eq!(u.blocks[1 + copy].instrs.len(), 5, "copy {copy}");
            assert!(u.blocks[1 + copy].label.contains("x4"));
            let branches = u.blocks[1 + copy]
                .instrs
                .iter()
                .filter(|i| i.op.is_conditional_branch())
                .count();
            assert_eq!(branches, 1);
        }
        // Early copies exit with the inverted branch; the last loops back.
        assert_eq!(u.blocks[1].instrs.last().unwrap().op, Opcode::Beq);
        assert_eq!(u.blocks[4].instrs.last().unwrap().op, Opcode::Bne);
        assert_eq!(u.blocks[4].instrs.last().unwrap().target, Some(BlockId::new(1)));
    }

    #[test]
    fn private_temporaries_are_renamed_but_carried_values_are_not() {
        let (p, sum) = loop_program(10);
        let u = unroll_self_loops(&p, 2);
        let body: Vec<&Instr<Vreg>> =
            u.blocks[1].instrs.iter().chain(&u.blocks[2].instrs).collect();
        // `sum` appears in every copy under its own name (loop carried).
        let sum_writes = body.iter().filter(|i| i.writes() == Some(sum)).count();
        assert_eq!(sum_writes, 2);
        // The private temp has two distinct names across the copies.
        let temp_dests: HashSet<Vreg> = body
            .iter()
            .filter(|i| i.op == Opcode::Mulq)
            .filter_map(|i| i.writes())
            .collect();
        assert_eq!(temp_dests.len(), 2, "each copy gets its own temporary");
    }

    #[test]
    fn non_self_loops_are_untouched() {
        // A two-block loop is not a self-loop; leave it alone.
        let mut b = ProgramBuilder::new("two-block");
        let i = b.vreg_int("i");
        let a = b.new_block("a");
        let bl = b.new_block("b");
        b.lda(i, 3);
        b.switch_to(a);
        b.subq_imm(i, i, 1);
        b.switch_to(bl);
        b.bne(i, a);
        let p = b.finish().unwrap();
        let u = unroll_self_loops(&p, 4);
        assert_eq!(u.blocks.iter().map(|b| b.instrs.len()).sum::<usize>(), p.static_len());
    }

    #[test]
    fn loop_at_program_end_is_left_alone() {
        let mut b = ProgramBuilder::new("tail-loop");
        let i = b.vreg_int("i");
        let body = b.new_block("body");
        b.lda(i, 5);
        b.switch_to(body);
        b.subq_imm(i, i, 1);
        b.bne(i, body);
        let p = b.finish().unwrap();
        let u = unroll_self_loops(&p, 3);
        // No exit block exists to retarget, so the loop stays as is.
        assert_eq!(u.blocks[1].instrs.len(), p.blocks[1].instrs.len());
        let mut vm = Vm::new(&u);
        vm.run_to_end().unwrap();
        assert_eq!(vm.reg(i), 0);
    }

    #[test]
    fn unrolled_loops_still_schedule_and_match() {
        use crate::pipeline::{SchedulePipeline, SchedulerKind};
        use mcl_isa::assign::RegisterAssignment;
        let (p, _) = loop_program(24);
        let u = unroll_self_loops(&p, 4);
        let assign = RegisterAssignment::even_odd_with_default_globals(2);
        let s = SchedulePipeline::new(SchedulerKind::Local, &assign).run(&u).unwrap();
        let mut vm = Vm::new(&s.program);
        vm.run_to_end().unwrap();
        assert_eq!(vm.memory().read(0x4000), result_of(&p));
    }
}
