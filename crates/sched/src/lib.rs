//! Static instruction scheduling for the multicluster architecture.
//!
//! This crate implements Section 3 of the paper — the compilation
//! pipeline that takes an intermediate-language program (whose
//! instructions name *live ranges*) and produces a machine program whose
//! architectural-register assignment controls how the multicluster
//! hardware distributes instructions:
//!
//! 1. code optimisation — assumed already done (the IL arrives
//!    optimised), as in the paper;
//! 2. *code scheduling* — per-basic-block list scheduling
//!    ([`listsched`]), establishing the fetch order the partitioner
//!    analyses (prepass scheduling, Section 3);
//! 3. global-register designation — stack-/global-pointer-like live
//!    ranges become global-register candidates (carried on
//!    [`mcl_trace::Program::global_candidates`]);
//! 4. *live-range partitioning* — the **local scheduler** of Section 3.5
//!    ([`partition`]): per-block bottom-up traversal in decreasing
//!    profile order, balance-threshold test, majority-vote preferred
//!    cluster;
//! 5. *register allocation* — Briggs-style optimistic graph colouring
//!    ([`alloc`]) with the paper's spill policy: spill "first to a local
//!    register in the other cluster and, if no register is available,
//!    then to memory";
//! 6. final machine-level schedule (spill code in place).
//!
//! The whole pipeline is driven through [`SchedulePipeline`]. The
//! cluster-blind [`SchedulerKind::Naive`] baseline models the *native
//! binary* of the paper's Table 2 ("none" column).
//!
//! # Example
//!
//! ```
//! use mcl_isa::assign::RegisterAssignment;
//! use mcl_sched::{SchedulePipeline, SchedulerKind};
//! use mcl_trace::ProgramBuilder;
//!
//! let mut b = ProgramBuilder::new("demo");
//! let x = b.vreg_int("x");
//! let y = b.vreg_int("y");
//! b.lda(x, 2);
//! b.lda(y, 3);
//! b.mulq(x, x, y);
//! let il = b.finish()?;
//!
//! let assign = RegisterAssignment::even_odd_with_default_globals(2);
//! let scheduled = SchedulePipeline::new(SchedulerKind::Local, &assign).run(&il)?;
//! assert_eq!(scheduled.program.static_len(), 3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod alloc;
pub mod cfg;
pub mod interference;
pub mod listsched;
pub mod liveness;
pub mod partition;
pub mod pipeline;
pub mod unroll;

pub use alloc::{Allocation, AllocatorKind, SpillStats};
pub use cfg::Cfg;
pub use interference::InterferenceGraph;
pub use liveness::Liveness;
pub use partition::{LocalScheduler, Partition, PartitionConfig};
pub use unroll::unroll_self_loops;
pub use pipeline::{
    PreparedIl, ScheduleError, ScheduleOptions, SchedulePipeline, ScheduleStats, Scheduled,
    SchedulerKind,
};
