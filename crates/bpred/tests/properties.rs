//! Property tests for the branch predictors: totality, determinism, and
//! learning guarantees on structured streams.
//!
//! Cases are generated with the dependency-free [`mcl_testutil::Rng`]
//! (the build has no registry access, so `proptest` is unavailable);
//! seeds are fixed, so every run checks the same cases.

use mcl_bpred::{Bimodal, BranchPredictor, Gshare, McFarling, PredictorConfig, StaticPredictor};
use mcl_testutil::{check_cases, Rng};

fn predictors() -> Vec<Box<dyn BranchPredictor + Send>> {
    vec![
        Box::new(Bimodal::new(256)),
        Box::new(Gshare::new(256)),
        Box::new(McFarling::new(256)),
        Box::new(StaticPredictor::AlwaysTaken),
    ]
}

#[test]
fn predictors_are_total_over_arbitrary_pcs() {
    check_cases(64, |rng| {
        let pcs = rng.vec_in(1, 200, Rng::next_u64);
        let outcomes = rng.vec(pcs.len(), Rng::flip);
        for mut p in predictors() {
            for (&pc, &taken) in pcs.iter().zip(&outcomes) {
                let _ = p.predict(pc);
                p.update(pc, taken);
            }
        }
    });
}

#[test]
fn predictions_are_deterministic() {
    check_cases(64, |rng| {
        let stream = rng.vec_in(1, 200, |r| (r.below(1024), r.flip()));
        let run = |mut p: Box<dyn BranchPredictor + Send>| -> Vec<bool> {
            stream
                .iter()
                .map(|&(pc, taken)| {
                    let pred = p.predict(pc * 4);
                    p.update(pc * 4, taken);
                    pred
                })
                .collect()
        };
        assert_eq!(run(Box::new(McFarling::new(256))), run(Box::new(McFarling::new(256))));
        assert_eq!(run(Box::new(Gshare::new(256))), run(Box::new(Gshare::new(256))));
    });
}

#[test]
fn bimodal_learns_any_strongly_biased_branch() {
    check_cases(64, |rng| {
        let pc = rng.next_u64();
        let bias = rng.flip();
        let mut p = Bimodal::new(1024);
        for _ in 0..4 {
            p.update(pc, bias);
        }
        assert_eq!(p.predict(pc), bias);
    });
}

#[test]
fn mcfarling_learns_short_periodic_patterns() {
    check_cases(32, |rng| {
        let period = rng.range(2, 8);
        let pc = rng.below(4096) * 4;
        // A strict period-k pattern is history-predictable; after
        // warmup, the combining predictor should be nearly perfect.
        let mut p = McFarling::new(4096);
        let mut correct = 0usize;
        let total = 600usize;
        for i in 0..total {
            let outcome = i % period == 0;
            if i >= 200 && p.predict(pc) == outcome {
                correct += 1;
            }
            p.update(pc, outcome);
        }
        let rate = correct as f64 / (total - 200) as f64;
        assert!(rate > 0.9, "period {period}: {rate}");
    });
}

#[test]
fn predict_never_mutates() {
    check_cases(64, |rng| {
        let pcs = rng.vec_in(1, 100, |r| r.below(4096));
        // Calling predict many times between updates changes nothing:
        // the paper's delayed-update semantics depend on this.
        let mut p = McFarling::new(256);
        for &pc in &pcs {
            p.update(pc * 4, pc % 3 == 0);
        }
        let before: Vec<bool> = pcs.iter().map(|&pc| p.predict(pc * 4)).collect();
        for _ in 0..10 {
            for &pc in &pcs {
                let _ = p.predict(pc * 4);
            }
        }
        let after: Vec<bool> = pcs.iter().map(|&pc| p.predict(pc * 4)).collect();
        assert_eq!(before, after);
    });
}

#[test]
fn config_built_predictors_match_direct_construction() {
    let stream: Vec<(u64, bool)> = (0..500u64).map(|i| (0x40 + (i % 16) * 4, i % 3 != 0)).collect();
    let mut a = PredictorConfig::McFarling { entries: 4096 }.build();
    let mut b = McFarling::new(4096);
    for &(pc, taken) in &stream {
        assert_eq!(a.predict(pc), b.predict(pc));
        a.update(pc, taken);
        b.update(pc, taken);
    }
}
