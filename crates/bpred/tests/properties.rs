//! Property tests for the branch predictors: totality, determinism, and
//! learning guarantees on structured streams.

use mcl_bpred::{Bimodal, BranchPredictor, Gshare, McFarling, PredictorConfig, StaticPredictor};
use proptest::prelude::*;

fn predictors() -> Vec<Box<dyn BranchPredictor + Send>> {
    vec![
        Box::new(Bimodal::new(256)),
        Box::new(Gshare::new(256)),
        Box::new(McFarling::new(256)),
        Box::new(StaticPredictor::AlwaysTaken),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn predictors_are_total_over_arbitrary_pcs(
        pcs in prop::collection::vec(any::<u64>(), 1..200),
        outcomes in prop::collection::vec(any::<bool>(), 1..200),
    ) {
        for mut p in predictors() {
            for (&pc, &taken) in pcs.iter().zip(&outcomes) {
                let _ = p.predict(pc);
                p.update(pc, taken);
            }
        }
    }

    #[test]
    fn predictions_are_deterministic(
        stream in prop::collection::vec((0u64..1024, any::<bool>()), 1..200),
    ) {
        let run = |mut p: Box<dyn BranchPredictor + Send>| -> Vec<bool> {
            stream
                .iter()
                .map(|&(pc, taken)| {
                    let pred = p.predict(pc * 4);
                    p.update(pc * 4, taken);
                    pred
                })
                .collect()
        };
        prop_assert_eq!(run(Box::new(McFarling::new(256))), run(Box::new(McFarling::new(256))));
        prop_assert_eq!(run(Box::new(Gshare::new(256))), run(Box::new(Gshare::new(256))));
    }

    #[test]
    fn bimodal_learns_any_strongly_biased_branch(pc in any::<u64>(), bias in any::<bool>()) {
        let mut p = Bimodal::new(1024);
        for _ in 0..4 {
            p.update(pc, bias);
        }
        prop_assert_eq!(p.predict(pc), bias);
    }

    #[test]
    fn mcfarling_learns_short_periodic_patterns(period in 2usize..8, pc in 0u64..4096) {
        // A strict period-k pattern is history-predictable; after
        // warmup, the combining predictor should be nearly perfect.
        let pc = pc * 4;
        let mut p = McFarling::new(4096);
        let mut correct = 0usize;
        let total = 600usize;
        for i in 0..total {
            let outcome = i % period == 0;
            if i >= 200 && p.predict(pc) == outcome {
                correct += 1;
            }
            p.update(pc, outcome);
        }
        let rate = correct as f64 / (total - 200) as f64;
        prop_assert!(rate > 0.9, "period {period}: {rate}");
    }

    #[test]
    fn predict_never_mutates(pcs in prop::collection::vec(0u64..4096, 1..100)) {
        // Calling predict many times between updates changes nothing:
        // the paper's delayed-update semantics depend on this.
        let mut p = McFarling::new(256);
        for &pc in &pcs {
            p.update(pc * 4, pc % 3 == 0);
        }
        let before: Vec<bool> = pcs.iter().map(|&pc| p.predict(pc * 4)).collect();
        for _ in 0..10 {
            for &pc in &pcs {
                let _ = p.predict(pc * 4);
            }
        }
        let after: Vec<bool> = pcs.iter().map(|&pc| p.predict(pc * 4)).collect();
        prop_assert_eq!(before, after);
    }
}

#[test]
fn config_built_predictors_match_direct_construction() {
    let stream: Vec<(u64, bool)> = (0..500u64).map(|i| (0x40 + (i % 16) * 4, i % 3 != 0)).collect();
    let mut a = PredictorConfig::McFarling { entries: 4096 }.build();
    let mut b = McFarling::new(4096);
    for &(pc, taken) in &stream {
        assert_eq!(a.predict(pc), b.predict(pc));
        a.update(pc, taken);
        b.update(pc, taken);
    }
}
