//! The global-history (gshare) predictor.

use crate::{BranchPredictor, TwoBit};

/// A global-history predictor: a table of two-bit counters indexed by
/// the branch address XORed with a global history register (the *gshare*
/// indexing of McFarling's TN-36, which he found to make the best use of
/// a given table size).
///
/// The history register is architectural: it shifts in outcomes on
/// [`BranchPredictor::update`] only (i.e. when branches execute), which
/// models the paper's delayed-update timing — predictions between a
/// branch's fetch and its execution are made with that branch's outcome
/// missing from the history.
///
/// # Example
///
/// ```
/// use mcl_bpred::{Gshare, BranchPredictor};
///
/// let mut p = Gshare::new(1024);
/// // An alternating branch is perfectly predictable from one bit of
/// // history once trained.
/// let mut correct = 0;
/// for i in 0..200 {
///     let outcome = i % 2 == 0;
///     if p.predict(0x80) == outcome { correct += 1; }
///     p.update(0x80, outcome);
/// }
/// assert!(correct > 180);
/// ```
#[derive(Debug, Clone)]
pub struct Gshare {
    table: Vec<TwoBit>,
    mask: u64,
    history: u64,
    history_bits: u32,
}

impl Gshare {
    /// Creates a gshare predictor with `entries` two-bit counters and a
    /// history register of `log2(entries)` bits.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    #[must_use]
    pub fn new(entries: usize) -> Gshare {
        assert!(entries.is_power_of_two() && entries > 0, "entries must be a power of two");
        Gshare {
            table: vec![TwoBit::WEAK_NOT_TAKEN; entries],
            mask: entries as u64 - 1,
            history: 0,
            history_bits: entries.trailing_zeros(),
        }
    }

    /// The current global history register (for diagnostics).
    #[must_use]
    pub fn history(&self) -> u64 {
        self.history
    }

    fn index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.history) & self.mask) as usize
    }
}

impl BranchPredictor for Gshare {
    fn predict(&self, pc: u64) -> bool {
        self.table[self.index(pc)].taken()
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let idx = self.index(pc);
        self.table[idx].train(taken);
        self.history = ((self.history << 1) | u64::from(taken)) & ((1 << self.history_bits) - 1);
    }

    fn name(&self) -> &'static str {
        "gshare"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn history_shifts_on_update_only() {
        let mut p = Gshare::new(16);
        let h0 = p.history();
        let _ = p.predict(0x40);
        assert_eq!(p.history(), h0, "predict must not touch history");
        p.update(0x40, true);
        assert_eq!(p.history(), (h0 << 1 | 1) & 0xF);
    }

    #[test]
    fn learns_history_correlated_pattern() {
        // Branch B is taken exactly when the previous branch A was taken.
        let mut p = Gshare::new(256);
        let mut correct = 0;
        for i in 0..400 {
            let a_taken = (i / 3) % 2 == 0; // slowly alternating
            p.update(0x10, a_taken);
            let b = a_taken;
            if p.predict(0x20) == b {
                correct += 1;
            }
            p.update(0x20, b);
        }
        assert!(correct > 300, "got {correct}/400");
    }

    #[test]
    fn history_is_bounded() {
        let mut p = Gshare::new(16);
        for _ in 0..100 {
            p.update(0x0, true);
        }
        assert!(p.history() <= 0xF);
    }
}
