//! McFarling's combining predictor.

use crate::bimodal::Bimodal;
use crate::gshare::Gshare;
use crate::{BranchPredictor, TwoBit};

/// The combining predictor of McFarling's TN-36, as used by the paper:
/// a bimodal predictor, a global-history (gshare) predictor, and a table
/// of two-bit *chooser* counters (indexed by branch address) that selects
/// between them per branch.
///
/// On update, both component predictors train on the outcome; the chooser
/// trains toward whichever component predicted correctly when the two
/// disagreed. All state — both tables, the chooser, and the global
/// history register — is architectural and changes only on
/// [`BranchPredictor::update`], modelling the paper's
/// update-after-execute timing.
///
/// # Example
///
/// ```
/// use mcl_bpred::{McFarling, BranchPredictor};
///
/// let mut p = McFarling::paper_default();
/// let mut correct = 0;
/// for i in 0..400u64 {
///     // A loop branch taken 9 of every 10 iterations.
///     let outcome = i % 10 != 9;
///     if p.predict(0x200) == outcome { correct += 1; }
///     p.update(0x200, outcome);
/// }
/// assert!(correct >= 320);
/// ```
#[derive(Debug, Clone)]
pub struct McFarling {
    bimodal: Bimodal,
    gshare: Gshare,
    chooser: Vec<TwoBit>,
    mask: u64,
}

impl McFarling {
    /// Creates a combining predictor with `entries` counters in each of
    /// the three tables.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    #[must_use]
    pub fn new(entries: usize) -> McFarling {
        assert!(entries.is_power_of_two() && entries > 0, "entries must be a power of two");
        McFarling {
            bimodal: Bimodal::new(entries),
            gshare: Gshare::new(entries),
            // Weakly prefer the bimodal component initially, as TN-36
            // suggests (the global predictor needs warm-up).
            chooser: vec![TwoBit::WEAK_NOT_TAKEN; entries],
            mask: entries as u64 - 1,
        }
    }

    /// The configuration used throughout the reproduction (4K entries
    /// per table).
    #[must_use]
    pub fn paper_default() -> McFarling {
        McFarling::new(4096)
    }

    fn chooser_index(&self, pc: u64) -> usize {
        ((pc >> 2) & self.mask) as usize
    }

    /// Which component the chooser currently selects for `pc`
    /// (`true` = gshare, `false` = bimodal). Exposed for diagnostics.
    #[must_use]
    pub fn selects_global(&self, pc: u64) -> bool {
        self.chooser[self.chooser_index(pc)].taken()
    }
}

impl BranchPredictor for McFarling {
    fn predict(&self, pc: u64) -> bool {
        if self.selects_global(pc) {
            self.gshare.predict(pc)
        } else {
            self.bimodal.predict(pc)
        }
    }

    fn update(&mut self, pc: u64, taken: bool) {
        // Recompute the component predictions as of update time, then
        // train. When the components disagree, move the chooser toward
        // the one that was right.
        let bim = self.bimodal.predict(pc);
        let gsh = self.gshare.predict(pc);
        if bim != gsh {
            let idx = self.chooser_index(pc);
            self.chooser[idx].train(gsh == taken);
        }
        self.bimodal.update(pc, taken);
        self.gshare.update(pc, taken);
    }

    fn name(&self) -> &'static str {
        "mcfarling"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beats_bimodal_on_history_correlated_branches() {
        // Alternating branch: bimodal oscillates, gshare nails it; the
        // chooser should learn to pick gshare.
        let mut combined = McFarling::new(256);
        let mut bimodal = Bimodal::new(256);
        let (mut c_ok, mut b_ok) = (0, 0);
        for i in 0..600 {
            let outcome = i % 2 == 0;
            if combined.predict(0x44) == outcome {
                c_ok += 1;
            }
            if bimodal.predict(0x44) == outcome {
                b_ok += 1;
            }
            combined.update(0x44, outcome);
            bimodal.update(0x44, outcome);
        }
        assert!(c_ok > b_ok + 100, "combined {c_ok} vs bimodal {b_ok}");
        assert!(combined.selects_global(0x44));
    }

    #[test]
    fn tracks_bimodal_on_static_branches() {
        let mut p = McFarling::new(256);
        let mut ok = 0;
        for _ in 0..100 {
            if p.predict(0x88) {
                ok += 1;
            }
            p.update(0x88, true);
        }
        assert!(ok >= 95);
    }

    #[test]
    fn chooser_only_moves_on_disagreement() {
        let mut p = McFarling::new(16);
        let before = p.chooser[p.chooser_index(0x10)];
        // Train a branch both components agree on (always taken from
        // initialisation both predict not-taken, so first updates agree).
        p.update(0x10, false);
        assert_eq!(p.chooser[p.chooser_index(0x10)], before);
    }

    #[test]
    fn mispredicts_cold_then_recovers() {
        let mut p = McFarling::paper_default();
        assert!(!p.predict(0x1234)); // cold tables predict not-taken
        for _ in 0..3 {
            p.update(0x1234, true);
        }
        assert!(p.predict(0x1234));
    }
}
