//! Branch-prediction substrate.
//!
//! The paper's processors "use a branch prediction scheme proposed by
//! McFarling that comprises a bimodal predictor, a global history
//! predictor, and a mechanism to select between them" (McFarling,
//! *Combining Branch Predictors*, DEC WRL TN-36, 1993). All other control
//! flow is assumed 100 % predictable, so only conditional-branch
//! *directions* are predicted here.
//!
//! A timing property the paper leans on (Section 4.2, footnote 2): "the
//! prediction is made at the point of insertion into the dispatch queue
//! while the updating occurs after the branch is executed". The
//! predictors in this crate therefore expose separate
//! [`BranchPredictor::predict`] and [`BranchPredictor::update`] calls and
//! keep *no* speculative state: every table (and the global history
//! register) changes only on `update`, so predictions naturally see
//! stale state while earlier branches are still in flight — exactly the
//! effect behind the paper's `compress` anomaly.
//!
//! # Example
//!
//! ```
//! use mcl_bpred::{BranchPredictor, McFarling};
//!
//! let mut p = McFarling::paper_default();
//! // Train on an always-taken branch.
//! for _ in 0..8 {
//!     let predicted = p.predict(0x1000);
//!     p.update(0x1000, true);
//!     let _ = predicted;
//! }
//! assert!(p.predict(0x1000));
//! ```

pub mod bimodal;
pub mod combining;
pub mod gshare;

pub use bimodal::Bimodal;
pub use combining::McFarling;
pub use gshare::Gshare;


/// A conditional-branch direction predictor.
///
/// Implementations keep architectural (non-speculative) state only:
/// `update` is called when a branch *executes*, which in a deep window
/// may be many cycles after `predict` was called for a later branch.
pub trait BranchPredictor {
    /// Predicts the direction of the conditional branch at `pc`.
    fn predict(&self, pc: u64) -> bool;

    /// Trains the predictor with the executed outcome of the branch at
    /// `pc`.
    fn update(&mut self, pc: u64, taken: bool);

    /// A short human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// A two-bit saturating counter, the building block of all three tables.
///
/// States 0–1 predict not-taken, 2–3 predict taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TwoBit(u8);

impl TwoBit {
    /// Weakly not-taken initial state.
    pub const WEAK_NOT_TAKEN: TwoBit = TwoBit(1);
    /// Weakly taken initial state.
    pub const WEAK_TAKEN: TwoBit = TwoBit(2);

    /// The predicted direction.
    #[must_use]
    pub fn taken(self) -> bool {
        self.0 >= 2
    }

    /// Trains toward `taken`, saturating at 0 and 3.
    pub fn train(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }

    /// The raw counter value, in `0..=3`.
    #[must_use]
    pub fn value(self) -> u8 {
        self.0
    }
}

/// Simple baseline predictors for ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StaticPredictor {
    /// Predict every conditional branch taken.
    AlwaysTaken,
    /// Predict every conditional branch not taken.
    AlwaysNotTaken,
}

impl BranchPredictor for StaticPredictor {
    fn predict(&self, _pc: u64) -> bool {
        matches!(self, StaticPredictor::AlwaysTaken)
    }

    fn update(&mut self, _pc: u64, _taken: bool) {}

    fn name(&self) -> &'static str {
        match self {
            StaticPredictor::AlwaysTaken => "always-taken",
            StaticPredictor::AlwaysNotTaken => "always-not-taken",
        }
    }
}

/// Selects and sizes a predictor; used by processor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictorConfig {
    /// The paper's McFarling combining predictor with the given per-table
    /// entry count (a power of two).
    McFarling {
        /// Entries in each of the bimodal, global, and chooser tables.
        entries: usize,
    },
    /// Bimodal only.
    Bimodal {
        /// Table entries (a power of two).
        entries: usize,
    },
    /// Gshare only.
    Gshare {
        /// Table entries (a power of two).
        entries: usize,
    },
    /// A static direction.
    Static(StaticPredictor),
}

impl PredictorConfig {
    /// The configuration used throughout the reproduction: 4K-entry
    /// tables (the paper does not state sizes; 4K two-bit counters per
    /// table is the size McFarling's TN-36 evaluates at its knee).
    #[must_use]
    pub fn paper_default() -> PredictorConfig {
        PredictorConfig::McFarling { entries: 4096 }
    }

    /// Instantiates the predictor.
    #[must_use]
    pub fn build(self) -> Box<dyn BranchPredictor + Send> {
        match self {
            PredictorConfig::McFarling { entries } => Box::new(McFarling::new(entries)),
            PredictorConfig::Bimodal { entries } => Box::new(Bimodal::new(entries)),
            PredictorConfig::Gshare { entries } => Box::new(Gshare::new(entries)),
            PredictorConfig::Static(p) => Box::new(p),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_bit_counter_saturates() {
        let mut c = TwoBit::WEAK_NOT_TAKEN;
        assert!(!c.taken());
        c.train(true);
        assert!(c.taken());
        c.train(true);
        c.train(true);
        assert_eq!(c.value(), 3);
        c.train(false);
        assert!(c.taken(), "strong-taken needs two mispredictions to flip");
        c.train(false);
        assert!(!c.taken());
        c.train(false);
        c.train(false);
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn static_predictors_never_learn() {
        let mut p = StaticPredictor::AlwaysNotTaken;
        p.update(0x10, true);
        assert!(!p.predict(0x10));
        assert!(StaticPredictor::AlwaysTaken.predict(0x10));
    }

    #[test]
    fn config_builds_named_predictors() {
        assert_eq!(PredictorConfig::paper_default().build().name(), "mcfarling");
        assert_eq!(PredictorConfig::Bimodal { entries: 16 }.build().name(), "bimodal");
        assert_eq!(PredictorConfig::Gshare { entries: 16 }.build().name(), "gshare");
    }
}
