//! The bimodal predictor.

use crate::{BranchPredictor, TwoBit};

/// A bimodal predictor: a table of two-bit counters indexed by the
/// branch address.
///
/// This is the per-branch component of McFarling's combining scheme; it
/// captures branches whose behaviour is mostly static (loop back-edges,
/// error checks) without interference from global history.
///
/// # Example
///
/// ```
/// use mcl_bpred::{Bimodal, BranchPredictor};
///
/// let mut p = Bimodal::new(1024);
/// p.update(0x40, true);
/// p.update(0x40, true);
/// assert!(p.predict(0x40));
/// ```
#[derive(Debug, Clone)]
pub struct Bimodal {
    table: Vec<TwoBit>,
    mask: u64,
}

impl Bimodal {
    /// Creates a bimodal predictor with `entries` two-bit counters.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    #[must_use]
    pub fn new(entries: usize) -> Bimodal {
        assert!(entries.is_power_of_two() && entries > 0, "entries must be a power of two");
        Bimodal { table: vec![TwoBit::WEAK_NOT_TAKEN; entries], mask: entries as u64 - 1 }
    }

    fn index(&self, pc: u64) -> usize {
        // Instructions are 4 bytes; drop the always-zero low bits.
        ((pc >> 2) & self.mask) as usize
    }
}

impl BranchPredictor for Bimodal {
    fn predict(&self, pc: u64) -> bool {
        self.table[self.index(pc)].taken()
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let idx = self.index(pc);
        self.table[idx].train(taken);
    }

    fn name(&self) -> &'static str {
        "bimodal"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_biased_branch() {
        let mut p = Bimodal::new(64);
        for _ in 0..4 {
            p.update(0x100, true);
        }
        assert!(p.predict(0x100));
        // An unrelated branch is unaffected (different index).
        assert!(!p.predict(0x104));
    }

    #[test]
    fn aliasing_wraps_modulo_table_size() {
        let p = Bimodal::new(64);
        assert_eq!(p.index(0x0), p.index(64 * 4));
    }

    #[test]
    fn hysteresis_survives_one_misprediction() {
        let mut p = Bimodal::new(64);
        for _ in 0..4 {
            p.update(0x8, true);
        }
        p.update(0x8, false);
        assert!(p.predict(0x8));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = Bimodal::new(100);
    }
}
