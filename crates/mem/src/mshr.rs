//! The inverted miss-status holding register file.

use std::collections::HashMap;


/// Occupancy statistics for an [`InvertedMshr`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MshrStats {
    /// Primary misses: fills initiated.
    pub fills: u64,
    /// Secondary misses merged into an outstanding fill.
    pub merges: u64,
    /// The largest number of simultaneously outstanding fills observed.
    pub peak_outstanding: usize,
}

/// An inverted MSHR: tracks any number of outstanding line fills.
///
/// A conventional MSHR file bounds the number of in-flight misses by the
/// number of miss registers; the *inverted* organisation of Farkas &
/// Jouppi ("Complexity/Performance Tradeoffs with Non-Blocking Loads",
/// ISCA 1994) holds the miss state with each miss target instead, so the
/// paper's data cache "imposes no restriction on the number of in-flight
/// cache misses". This type models that contract: [`InvertedMshr::miss`]
/// never rejects a miss, and same-line misses merge.
///
/// # Example
///
/// ```
/// use mcl_mem::InvertedMshr;
///
/// let mut mshr = InvertedMshr::new();
/// let (ready, merged) = mshr.miss(0x40, 100, 16);
/// assert_eq!((ready, merged), (116, false));
/// // A second miss on the same line merges and completes with the first.
/// assert_eq!(mshr.miss(0x40, 105, 16), (116, true));
/// assert_eq!(mshr.outstanding(110), 1);
/// assert_eq!(mshr.outstanding(120), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct InvertedMshr {
    /// line address -> cycle the fill completes.
    outstanding: HashMap<u64, u64>,
    stats: MshrStats,
}

impl InvertedMshr {
    /// Creates an empty MSHR.
    #[must_use]
    pub fn new() -> InvertedMshr {
        InvertedMshr::default()
    }

    /// Registers a miss on `line_addr` at cycle `now` with the given fill
    /// `latency`. Returns the cycle the data is available and whether the
    /// miss merged into an already-outstanding fill.
    pub fn miss(&mut self, line_addr: u64, now: u64, latency: u64) -> (u64, bool) {
        self.retire(now);
        if let Some(&ready) = self.outstanding.get(&line_addr) {
            self.stats.merges += 1;
            return (ready, true);
        }
        let ready = now + latency;
        self.outstanding.insert(line_addr, ready);
        self.stats.fills += 1;
        self.stats.peak_outstanding = self.stats.peak_outstanding.max(self.outstanding.len());
        (ready, false)
    }

    /// The number of fills still outstanding at cycle `now`.
    #[must_use]
    pub fn outstanding(&self, now: u64) -> usize {
        self.outstanding.values().filter(|&&ready| ready > now).count()
    }

    /// Drops completed fills (called internally; exposed for tests).
    pub fn retire(&mut self, now: u64) {
        self.outstanding.retain(|_, &mut ready| ready > now);
    }

    /// Occupancy statistics.
    #[must_use]
    pub fn stats(&self) -> MshrStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merging_is_per_line() {
        let mut mshr = InvertedMshr::new();
        assert_eq!(mshr.miss(0x00, 0, 16), (16, false));
        assert_eq!(mshr.miss(0x40, 1, 16), (17, false));
        assert_eq!(mshr.miss(0x00, 2, 16), (16, true));
        let s = mshr.stats();
        assert_eq!(s.fills, 2);
        assert_eq!(s.merges, 1);
    }

    #[test]
    fn completed_fills_do_not_merge() {
        let mut mshr = InvertedMshr::new();
        mshr.miss(0x00, 0, 16);
        // At cycle 20 the fill is done; a new miss starts a new fill.
        assert_eq!(mshr.miss(0x00, 20, 16), (36, false));
        assert_eq!(mshr.stats().fills, 2);
    }

    #[test]
    fn unbounded_outstanding_misses() {
        // The defining property of the inverted organisation: no cap.
        let mut mshr = InvertedMshr::new();
        for i in 0..10_000u64 {
            mshr.miss(i * 0x40, 0, 1_000_000);
        }
        assert_eq!(mshr.outstanding(0), 10_000);
        assert_eq!(mshr.stats().peak_outstanding, 10_000);
    }

    #[test]
    fn retire_drops_only_completed() {
        let mut mshr = InvertedMshr::new();
        mshr.miss(0x00, 0, 10);
        mshr.miss(0x40, 0, 20);
        mshr.retire(15);
        assert_eq!(mshr.outstanding(15), 1);
    }
}
