//! Set-associative caches with timing.


use crate::mshr::{InvertedMshr, MshrStats};

/// Geometry and timing of a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Line size in bytes (a power of two).
    pub line_bytes: usize,
    /// Fill latency from the next memory level, in cycles (the paper's
    /// memory interface: 16 cycles, unlimited bandwidth).
    pub miss_latency: u64,
}

impl CacheConfig {
    /// The paper's level-one cache: 64 KB, two-way set associative, with
    /// the 16-cycle memory interface. Line size is 32 bytes (the paper
    /// does not state one; 32 bytes matches the 21064/21164 era on-chip
    /// caches of the authors' testbed machines).
    #[must_use]
    pub fn paper_l1() -> CacheConfig {
        CacheConfig { size_bytes: 64 * 1024, assoc: 2, line_bytes: 32, miss_latency: 16 }
    }

    /// The number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (zero sizes, a non-power-of-
    /// two line size, or a capacity not divisible by `assoc × line`).
    #[must_use]
    pub fn sets(&self) -> usize {
        assert!(self.line_bytes.is_power_of_two() && self.line_bytes > 0, "bad line size");
        assert!(self.assoc > 0, "associativity must be positive");
        let way_bytes = self.assoc * self.line_bytes;
        assert!(
            self.size_bytes > 0 && self.size_bytes.is_multiple_of(way_bytes),
            "capacity must be a multiple of assoc × line"
        );
        let sets = self.size_bytes / way_bytes;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        sets
    }
}

/// The outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// The line is present and filled: data available at the cache's hit
    /// latency (accounted by the caller).
    Hit,
    /// The line is absent or still being filled.
    Miss {
        /// The cycle the line's data becomes available.
        ready_at: u64,
        /// Whether this miss merged into an already-outstanding fill for
        /// the same line (a *secondary* miss in MSHR terms).
        merged: bool,
    },
}

/// Access statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Accesses that hit a filled line.
    pub hits: u64,
    /// Primary misses (fills initiated).
    pub misses: u64,
    /// Secondary misses (merged into an outstanding fill).
    pub merged_misses: u64,
    /// Valid lines evicted to make room for fills.
    pub evictions: u64,
}

impl CacheStats {
    /// Folds another run's counters into this one (every field is a pure
    /// sum, so time-window shards merge by addition).
    pub fn absorb(&mut self, other: &CacheStats) {
        self.accesses += other.accesses;
        self.hits += other.hits;
        self.misses += other.misses;
        self.merged_misses += other.merged_misses;
        self.evictions += other.evictions;
    }
}

impl CacheStats {
    /// The miss rate counting both primary and merged misses.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            (self.misses + self.merged_misses) as f64 / self.accesses as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    valid: bool,
    /// Cycle at which the fill completes (0 for long-filled lines).
    ready_at: u64,
    /// LRU stamp: larger = more recently used.
    lru: u64,
}

/// A non-blocking, set-associative cache with LRU replacement and an
/// [`InvertedMshr`] tracking outstanding fills.
///
/// The cache is a *timing* model, not a data store: the program's values
/// live in the VM's memory; the cache answers "when is this access's data
/// available?". Writes allocate on miss (write-allocate) and, per the
/// paper's unlimited-bandwidth memory interface, write-backs of dirty
/// victims cost no modelled time.
///
/// # Example
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Line>>,
    mshr: InvertedMshr,
    stats: CacheStats,
    stamp: u64,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent; see [`CacheConfig::sets`].
    #[must_use]
    pub fn new(config: CacheConfig) -> Cache {
        let sets = config.sets();
        let line = Line { tag: 0, valid: false, ready_at: 0, lru: 0 };
        Cache {
            config,
            sets: vec![vec![line; config.assoc]; sets],
            mshr: InvertedMshr::new(),
            stats: CacheStats::default(),
            stamp: 0,
        }
    }

    /// Accesses `addr` at cycle `now`. `is_write` is used only for
    /// statistics symmetry (write-allocate makes reads and writes behave
    /// identically for timing).
    pub fn access(&mut self, addr: u64, now: u64, is_write: bool) -> Access {
        let _ = is_write;
        self.stats.accesses += 1;
        self.stamp += 1;
        let (set_idx, tag) = self.index(addr);
        let line_addr = addr & !(self.config.line_bytes as u64 - 1);
        let set = &mut self.sets[set_idx];

        if let Some(way) = set.iter().position(|l| l.valid && l.tag == tag) {
            set[way].lru = self.stamp;
            if set[way].ready_at <= now {
                self.stats.hits += 1;
                return Access::Hit;
            }
            // Line allocated but still filling: secondary miss merges
            // into the outstanding fill (same completion time).
            let (ready_at, merged) = self.mshr.miss(line_addr, now, self.config.miss_latency);
            debug_assert!(merged, "a filling line must have an outstanding MSHR fill");
            debug_assert_eq!(ready_at, set[way].ready_at);
            self.stats.merged_misses += 1;
            return Access::Miss { ready_at, merged: true };
        }

        // Primary miss: allocate the LRU way. If the line was evicted
        // while its previous fill was still in flight, the inverted MSHR
        // still tracks that fill and the new request merges with it.
        let victim = (0..set.len()).min_by_key(|&w| set[w].lru).expect("assoc > 0");
        if set[victim].valid {
            self.stats.evictions += 1;
        }
        let (ready_at, merged) = self.mshr.miss(line_addr, now, self.config.miss_latency);
        set[victim] = Line { tag, valid: true, ready_at, lru: self.stamp };
        if merged {
            self.stats.merged_misses += 1;
        } else {
            self.stats.misses += 1;
        }
        Access::Miss { ready_at, merged }
    }

    /// Records `n` repeated hit accesses to `addr` in one step, leaving
    /// the cache in exactly the state `n` sequential [`Cache::access`]
    /// hits would: `n` accesses, `n` hits, and the line's LRU stamp at
    /// the final access. The event-driven engine uses this to replicate
    /// the per-cycle fetch probe of a span of dispatch-stalled cycles
    /// it fast-forwards over.
    ///
    /// # Panics
    ///
    /// Panics if `addr`'s line is not resident — the caller must have
    /// established the hit (e.g. via [`Cache::probe`]) first.
    pub fn record_repeat_hits(&mut self, addr: u64, n: u64) {
        if n == 0 {
            return;
        }
        let (set_idx, tag) = self.index(addr);
        self.stats.accesses += n;
        self.stats.hits += n;
        self.stamp += n;
        let stamp = self.stamp;
        let set = &mut self.sets[set_idx];
        let way = set
            .iter()
            .position(|l| l.valid && l.tag == tag)
            .expect("record_repeat_hits requires a resident line");
        set[way].lru = stamp;
    }

    /// Functionally touches `addr`'s line: installs it (long filled,
    /// `ready_at = 0`) if absent, refreshes its LRU stamp if present —
    /// without recording statistics or an outstanding MSHR fill. This
    /// is the warmup primitive of the time-window sharding engine
    /// (`mcl_core::shard`): a shard replays the pre-window trace
    /// through `warm` so its window starts with the cache *contents*
    /// the serial run would have, while the window's own statistics
    /// start from zero.
    pub fn warm(&mut self, addr: u64) {
        self.stamp += 1;
        let stamp = self.stamp;
        let (set_idx, tag) = self.index(addr);
        let set = &mut self.sets[set_idx];
        if let Some(way) = set.iter().position(|l| l.valid && l.tag == tag) {
            set[way].lru = stamp;
            set[way].ready_at = 0;
            return;
        }
        let victim = (0..set.len()).min_by_key(|&w| set[w].lru).expect("assoc > 0");
        set[victim] = Line { tag, valid: true, ready_at: 0, lru: stamp };
    }

    /// Whether `addr`'s line is present and filled at cycle `now`,
    /// without updating LRU state or statistics.
    #[must_use]
    pub fn probe(&self, addr: u64, now: u64) -> bool {
        let (set_idx, tag) = self.index(addr);
        self.sets[set_idx].iter().any(|l| l.valid && l.tag == tag && l.ready_at <= now)
    }

    /// Access statistics.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Statistics of the underlying MSHR.
    #[must_use]
    pub fn mshr_stats(&self) -> MshrStats {
        self.mshr.stats()
    }

    /// The configured geometry.
    #[must_use]
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Invalidates every line and clears statistics.
    pub fn reset(&mut self) {
        for set in &mut self.sets {
            for line in set {
                line.valid = false;
                line.ready_at = 0;
                line.lru = 0;
            }
        }
        self.mshr = InvertedMshr::new();
        self.stats = CacheStats::default();
        self.stamp = 0;
    }

    fn index(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.config.line_bytes as u64;
        let sets = self.sets.len() as u64;
        ((line % sets) as usize, line / sets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> Cache {
        // 4 sets × 2 ways × 32-byte lines = 256 bytes.
        Cache::new(CacheConfig { size_bytes: 256, assoc: 2, line_bytes: 32, miss_latency: 16 })
    }

    #[test]
    fn paper_geometry() {
        let c = CacheConfig::paper_l1();
        assert_eq!(c.sets(), 1024);
        assert_eq!(c.miss_latency, 16);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small_cache();
        assert!(matches!(c.access(0x100, 0, false), Access::Miss { ready_at: 16, merged: false }));
        assert!(matches!(c.access(0x100, 20, false), Access::Hit));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn access_during_fill_is_a_merged_miss() {
        let mut c = small_cache();
        c.access(0x100, 0, false);
        match c.access(0x108, 5, false) {
            Access::Miss { ready_at, merged } => {
                assert_eq!(ready_at, 16);
                assert!(merged);
            }
            Access::Hit => panic!("line is still filling"),
        }
        assert_eq!(c.stats().merged_misses, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = small_cache();
        // Three lines mapping to the same set (set stride = 4 lines × 32B = 128B).
        let (a, b, d) = (0x000, 0x080, 0x100);
        c.access(a, 0, false);
        c.access(b, 20, false);
        // Touch `a` so `b` becomes LRU.
        c.access(a, 40, false);
        c.access(d, 60, false); // evicts b
        assert!(c.probe(a, 100));
        assert!(!c.probe(b, 100));
        assert!(c.probe(d, 100));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = small_cache();
        for i in 0..4u64 {
            c.access(i * 32, 0, false);
        }
        for i in 0..4u64 {
            assert!(c.probe(i * 32, 100), "line {i} should still be resident");
        }
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn writes_allocate() {
        let mut c = small_cache();
        assert!(matches!(c.access(0x40, 0, true), Access::Miss { .. }));
        assert!(matches!(c.access(0x40, 20, false), Access::Hit));
    }

    #[test]
    fn miss_rate_counts_all_misses() {
        let mut c = small_cache();
        c.access(0x000, 0, false);
        c.access(0x008, 0, false); // merged
        c.access(0x000, 100, false); // hit
        let s = c.stats();
        assert_eq!(s.accesses, 3);
        assert!((s.miss_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_state() {
        let mut c = small_cache();
        c.access(0x100, 0, false);
        c.reset();
        assert!(!c.probe(0x100, 100));
        assert_eq!(c.stats().accesses, 0);
    }

    #[test]
    fn probe_does_not_disturb_lru() {
        let mut c = small_cache();
        let (a, b, d) = (0x000, 0x080, 0x100);
        c.access(a, 0, false);
        c.access(b, 20, false);
        // Probing `a` must NOT refresh it; `a` stays LRU and is evicted.
        assert!(c.probe(a, 40));
        c.access(d, 60, false);
        assert!(!c.probe(a, 100));
        assert!(c.probe(b, 100));
    }

    #[test]
    fn repeat_hits_match_sequential_accesses() {
        let mut a = small_cache();
        let mut b = small_cache();
        a.access(0x100, 0, false);
        b.access(0x100, 0, false);
        for now in 20..25 {
            a.access(0x100, now, false);
        }
        b.record_repeat_hits(0x100, 5);
        assert_eq!(a.stats(), b.stats());
        // The LRU stamps must agree too: a conflicting fill evicts the
        // same victim in both.
        a.access(0x180, 30, false);
        b.access(0x180, 30, false);
        a.access(0x200, 40, false);
        b.access(0x200, 40, false);
        for addr in [0x100u64, 0x180, 0x200] {
            assert_eq!(a.probe(addr, 100), b.probe(addr, 100), "addr {addr:#x}");
        }
    }

    #[test]
    fn warm_installs_contents_without_stats() {
        let mut warmed = small_cache();
        // Replay a short access history functionally...
        for addr in [0x000u64, 0x080, 0x100, 0x000] {
            warmed.warm(addr);
        }
        assert_eq!(warmed.stats(), CacheStats::default());
        // ...and the contents must match a real run observed after all
        // fills have completed: same residency, same LRU victim choice.
        let mut real = small_cache();
        for (i, addr) in [0x000u64, 0x080, 0x100, 0x000].iter().enumerate() {
            real.access(*addr, 1000 + 100 * i as u64, false);
        }
        for addr in [0x000u64, 0x080, 0x100, 0x180] {
            assert_eq!(warmed.probe(addr, 2000), real.probe(addr, 2000), "addr {addr:#x}");
        }
        // Next eviction picks the same victim in both (0x100 is the LRU
        // resident line of the set after the replay above).
        warmed.warm(0x180);
        real.access(0x180, 3000, false);
        assert!(!warmed.probe(0x100, 4000));
        assert_eq!(warmed.probe(0x100, 4000), real.probe(0x100, 4000));
    }

    #[test]
    #[should_panic(expected = "capacity must be a multiple")]
    fn inconsistent_geometry_panics() {
        let _ = Cache::new(CacheConfig {
            size_bytes: 100,
            assoc: 2,
            line_bytes: 32,
            miss_latency: 16,
        });
    }
}
