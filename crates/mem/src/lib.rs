//! Memory-system substrate: set-associative caches, the inverted MSHR,
//! and the memory interface.
//!
//! The paper's processors include "separate data and instruction caches,
//! each of which is a 64-Kbyte, two-way set associative cache. The data
//! cache is assumed to use an inverted MSHR, and thus, imposes no
//! restriction on the number of in-flight cache misses. The memory
//! interface ... is assumed to have a 16-cycle fetch latency and
//! unlimited bandwidth."
//!
//! An *inverted MSHR* (Farkas & Jouppi, ISCA 1994) associates
//! miss-handling state with every destination of an in-flight miss
//! rather than with a small file of miss registers, so the number of
//! outstanding misses is unbounded. [`InvertedMshr`] models exactly that
//! contract: any number of outstanding line fills, with same-line misses
//! merged into the in-flight fill.
//!
//! # Example
//!
//! ```
//! use mcl_mem::{Cache, CacheConfig, Access};
//!
//! let mut dcache = Cache::new(CacheConfig::paper_l1());
//! // First touch misses and schedules a 16-cycle fill.
//! match dcache.access(0x2000, 10, false) {
//!     Access::Miss { ready_at, merged } => {
//!         assert_eq!(ready_at, 26);
//!         assert!(!merged);
//!     }
//!     Access::Hit => unreachable!(),
//! }
//! // A second access to the same line merges into the outstanding fill.
//! assert!(matches!(dcache.access(0x2008, 12, false),
//!                  Access::Miss { ready_at: 26, merged: true }));
//! // After the fill completes, the line hits.
//! assert!(matches!(dcache.access(0x2000, 30, true), Access::Hit));
//! ```

pub mod cache;
pub mod mshr;

pub use cache::{Access, Cache, CacheConfig, CacheStats};
pub use mshr::{InvertedMshr, MshrStats};
