//! Property tests for the cache: timing sanity and agreement with a
//! reference presence model.
//!
//! Cases are generated with the dependency-free [`mcl_testutil::Rng`]
//! (the build has no registry access, so `proptest` is unavailable);
//! seeds are fixed, so every run checks the same cases.

use std::collections::HashMap;

use mcl_mem::{Access, Cache, CacheConfig};
use mcl_testutil::check_cases;

/// A reference model of *presence*: which line would a
/// set-associative LRU cache of this geometry hold?
struct RefCache {
    sets: usize,
    assoc: usize,
    line: u64,
    /// set -> (tag -> last-use stamp)
    state: HashMap<usize, HashMap<u64, u64>>,
    stamp: u64,
}

impl RefCache {
    fn new(cfg: CacheConfig) -> RefCache {
        RefCache {
            sets: cfg.sets(),
            assoc: cfg.assoc,
            line: cfg.line_bytes as u64,
            state: HashMap::new(),
            stamp: 0,
        }
    }

    /// Returns whether the access hits (line present), updating LRU.
    fn access(&mut self, addr: u64) -> bool {
        self.stamp += 1;
        let lineno = addr / self.line;
        let set = (lineno % self.sets as u64) as usize;
        let tag = lineno / self.sets as u64;
        let entry = self.state.entry(set).or_default();
        let hit = entry.contains_key(&tag);
        entry.insert(tag, self.stamp);
        if entry.len() > self.assoc {
            let victim = *entry.iter().min_by_key(|(_, &s)| s).expect("nonempty").0;
            entry.remove(&victim);
        }
        hit
    }
}

fn small_config() -> CacheConfig {
    CacheConfig { size_bytes: 1024, assoc: 2, line_bytes: 32, miss_latency: 16 }
}

#[test]
fn presence_matches_the_reference_model() {
    check_cases(64, |rng| {
        let addrs = rng.vec_in(1, 300, |r| r.below(4096));
        let mut cache = Cache::new(small_config());
        let mut reference = RefCache::new(small_config());
        // Space accesses far apart so every fill completes: presence is
        // then exactly the reference LRU model.
        let mut now = 0u64;
        for &addr in &addrs {
            let expect_hit = reference.access(addr);
            let got = cache.access(addr, now, false);
            match got {
                Access::Hit => assert!(expect_hit, "unexpected hit at {addr:#x}"),
                Access::Miss { ready_at, merged } => {
                    assert!(!expect_hit, "unexpected miss at {addr:#x}");
                    assert!(!merged, "fills are spaced; no merges");
                    assert!(ready_at == now + 16);
                }
            }
            now += 20; // beyond the fill latency
        }
        let stats = cache.stats();
        assert_eq!(stats.accesses, addrs.len() as u64);
        assert_eq!(stats.hits + stats.misses + stats.merged_misses, stats.accesses);
    });
}

#[test]
fn ready_time_is_never_in_the_past() {
    check_cases(64, |rng| {
        let addrs = rng.vec_in(1, 200, |r| r.below(100_000));
        let gaps = rng.vec(addrs.len(), |r| r.below(4));
        let mut cache = Cache::new(small_config());
        let mut now = 0u64;
        for (&addr, &gap) in addrs.iter().zip(&gaps) {
            if let Access::Miss { ready_at, .. } = cache.access(addr, now, false) {
                assert!(ready_at > now);
                assert!(ready_at <= now + 16);
            }
            now += gap;
        }
    });
}

#[test]
fn merged_misses_share_the_fill_time() {
    for line in 0u64..64 {
        let mut cache = Cache::new(small_config());
        let base = line * 32;
        let first = cache.access(base, 0, false);
        let Access::Miss { ready_at, .. } = first else {
            panic!("cold access must miss");
        };
        // Every access to the same line before the fill merges to the
        // same completion time.
        for t in 1..16u64 {
            match cache.access(base + (t % 4) * 8, t, false) {
                Access::Miss { ready_at: r, merged } => {
                    assert!(merged);
                    assert_eq!(r, ready_at);
                }
                Access::Hit => panic!("line is still filling"),
            }
        }
        assert!(matches!(cache.access(base, ready_at, false), Access::Hit));
    }
}

#[test]
fn probe_never_mutates() {
    check_cases(64, |rng| {
        let addrs = rng.vec_in(1, 100, |r| r.below(4096));
        let mut cache = Cache::new(small_config());
        let mut now = 0;
        for &addr in &addrs {
            cache.access(addr, now, false);
            now += 20;
        }
        let stats_before = cache.stats();
        for &addr in &addrs {
            let _ = cache.probe(addr, now);
        }
        assert_eq!(cache.stats(), stats_before);
    });
}
