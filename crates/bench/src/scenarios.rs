//! Figures 2–5: cycle-by-cycle timelines of the dual-execution
//! scenarios.

use mcl_core::{Processor, ProcessorConfig};
use mcl_trace::vm::trace_program_packed;
use mcl_workloads::scenarios::{all, Scenario};

use crate::Error;

/// One rendered scenario timeline.
#[derive(Debug, Clone)]
pub struct ScenarioTimeline {
    /// The scenario.
    pub number: u8,
    /// The paper figure reproduced, if any.
    pub figure: Option<u8>,
    /// Description.
    pub description: String,
    /// The event timeline of the `add` under scrutiny.
    pub timeline: String,
    /// Simulated scenario classification counts (sanity check that the
    /// hardware classified the add as intended).
    pub scenario_counts: [u64; 5],
}

/// Runs every scenario program on the paper's dual-cluster machine with
/// event recording and extracts the add's timeline.
///
/// # Errors
///
/// Propagates trace/simulation failures.
pub fn run_all() -> Result<Vec<ScenarioTimeline>, Error> {
    all().into_iter().map(run_one).collect()
}

fn run_one(s: Scenario) -> Result<ScenarioTimeline, Error> {
    let (trace, _) = trace_program_packed(&s.program, 0)?;
    let result = Processor::new(ProcessorConfig::dual_cluster_8way().with_events())
        .run_packed(&trace)?;
    let events = result.events.expect("events enabled");
    Ok(ScenarioTimeline {
        number: s.number,
        figure: s.figure,
        description: s.description.to_owned(),
        timeline: events.timeline(s.add_seq),
        scenario_counts: result.stats.scenario,
    })
}

/// Renders all timelines in figure order.
#[must_use]
pub fn render(timelines: &[ScenarioTimeline]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for t in timelines {
        let figure = t.figure.map_or_else(|| "no figure".to_owned(), |f| format!("Figure {f}"));
        let _ = writeln!(out, "Scenario {} ({figure}): {}", t.number, t.description);
        let _ = writeln!(out, "{}", t.timeline);
    }
    out
}
