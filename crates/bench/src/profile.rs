//! `repro profile` — host engine phase-cost attribution reports.
//!
//! For each benchmark this module reruns the dual-cluster /
//! local-scheduler Table 2 cell with a [`PhaseProf`] attached and turns
//! the telescoped per-phase nanosecond buckets into two artifacts:
//!
//! - `<bench>.hostprof.json` — the machine-readable breakdown (schema
//!   [`HOSTPROF_SCHEMA_VERSION`], validated by `repro obs-validate`);
//! - a rendered ranked ns-per-live-cycle report, printed by the driver.
//!
//! Where `repro explain` attributes *simulated cycles* to machine
//! causes, `repro profile` attributes *host nanoseconds* to engine
//! phases: where the wall time of a live cycle actually goes inside the
//! simulator (dispatch, issue, wakeup, completion drains, retire,
//! checker, fast-forward bookkeeping). The profiled run deliberately
//! takes the real engine path — unlike probes, a [`HostProf`] does not
//! force single-stepping — and its statistics are cross-checked for
//! equality against the store's unprofiled run, so profiling can never
//! perturb what it measures. Each report also carries the hard
//! sum-to-elapsed identity ([`HostProfReport::check_identity`]), which
//! is re-checked from the file by [`validate_hostprof`].

use std::path::Path;

use mcl_core::obs::hostprof::HOSTPROF_SLOP_NS;
use mcl_core::{HostPhase, HostProfReport, Processor, ProcessorConfig};
use mcl_sched::SchedulerKind;
use mcl_workloads::Benchmark;

use crate::json::Json;
use crate::runner::CellCost;
use crate::store::TraceRequest;
use crate::{Error, TraceStore};

/// Schema version of the `*.hostprof.json` exports.
pub const HOSTPROF_SCHEMA_VERSION: u64 = 1;

fn profile_err(stem: &str, detail: impl std::fmt::Display) -> Error {
    Error::Obs(format!("hostprof {stem}: {detail}"))
}

/// Runs one profiled companion of the dual-cluster local-scheduler cell
/// and cross-checks it against the store's unprofiled run.
fn profiled_run(
    store: &TraceStore,
    stem: &str,
    req: &TraceRequest,
    cfg: &ProcessorConfig,
    cost: &mut CellCost,
) -> Result<HostProfReport, Error> {
    // The profiled companion is serial; the statistics reference must be
    // the serial product even when the store shards fresh runs.
    let expected = store.sim_serial(req, cfg)?;
    cost.charge_sim(&expected);
    let (trace, _) = store.trace(req)?;
    let (result, report) = Processor::new(cfg.clone())
        .run_packed_profiled(&trace)
        .map_err(Error::Sim)?;
    // Observe, never perturb: a profiler only reads the host clock, so
    // the simulated machine must be bit-identical to the unprofiled run.
    if result.stats != expected.stats {
        return Err(profile_err(
            stem,
            format!(
                "profiled run diverged from the store run ({} vs {} cycles) — \
                 host profiling must not affect simulation",
                result.stats.cycles, expected.stats.cycles
            ),
        ));
    }
    report.check_identity().map_err(|e| profile_err(stem, e))?;
    if report.live_cycles > report.cycles {
        return Err(profile_err(
            stem,
            format!(
                "profiler counted {} live cycles in a {}-cycle run",
                report.live_cycles, report.cycles
            ),
        ));
    }
    Ok(report)
}

/// Runs the profile cell of one benchmark: profiles the dual-cluster
/// local-scheduler run, writes `<bench>.hostprof.json` into `dir`, and
/// returns the rendered ranked report plus the cell cost.
///
/// # Errors
///
/// [`Error::Obs`] when the sum-to-elapsed identity fails, the profiled
/// run diverges from the store run, or the export cannot be written;
/// harness errors propagate.
pub fn profile_cell(
    store: &TraceStore,
    bench: Benchmark,
    scale: u32,
    dir: &Path,
) -> Result<(String, CellCost), Error> {
    let mut cost = CellCost::default();
    let report = profiled_run(
        store,
        bench.name(),
        &TraceRequest::new(bench, scale, SchedulerKind::Local),
        &ProcessorConfig::dual_cluster_8way(),
        &mut cost,
    )?;

    std::fs::create_dir_all(dir)
        .map_err(|e| profile_err(bench.name(), format!("creating {}: {e}", dir.display())))?;
    let path = dir.join(format!("{}.hostprof.json", bench.name()));
    let doc = hostprof_json(bench, &report);
    std::fs::write(&path, doc.render() + "\n")
        .map_err(|e| profile_err(bench.name(), format!("writing {}: {e}", path.display())))?;

    Ok((render_cell(bench, &report), cost))
}

fn hostprof_json(bench: Benchmark, report: &HostProfReport) -> Json {
    let mut phases = Json::object();
    for phase in HostPhase::ALL {
        phases.field(phase.name(), report.phase_ns[phase.index()].into());
    }
    let mut obj = Json::object();
    obj.field("schema_version", HOSTPROF_SCHEMA_VERSION.into())
        .field("benchmark", bench.name().into())
        .field("config", "dual_cluster_8way".into())
        .field("scheduler", "local".into())
        .field("cycles", report.cycles.into())
        .field("live_cycles", report.live_cycles.into())
        .field("elapsed_ns", report.elapsed_ns.into())
        .field("slop_ns", HOSTPROF_SLOP_NS.into())
        .field("ns_per_live_cycle", report.ns_per_live_cycle().into())
        .field("phase_ns", phases);
    obj
}

/// Phases ordered by descending charged time (stable on ties).
fn ranked(report: &HostProfReport) -> Vec<(HostPhase, u64)> {
    let mut phases: Vec<(HostPhase, u64)> =
        HostPhase::ALL.iter().map(|&p| (p, report.phase_ns[p.index()])).collect();
    phases.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.index().cmp(&b.0.index())));
    phases
}

fn render_cell(bench: Benchmark, report: &HostProfReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let skipped = report.cycles.saturating_sub(report.live_cycles);
    let _ = writeln!(
        out,
        "{}: {:.0} ns/live-cycle over {} live cycles ({} simulated, {} fast-forwarded)",
        bench.name(),
        report.ns_per_live_cycle(),
        report.live_cycles,
        report.cycles,
        skipped
    );
    let total = report.total_ns().max(1);
    for (phase, ns) in ranked(report) {
        if ns == 0 {
            continue;
        }
        let per_cycle = if report.live_cycles == 0 {
            0.0
        } else {
            ns as f64 / report.live_cycles as f64
        };
        let _ = writeln!(
            out,
            "  {:<14} {:>5.1}%  {:>10.1} ns/cycle  {:>14} ns",
            phase.name(),
            ns as f64 / total as f64 * 100.0,
            per_cycle,
            ns
        );
    }
    out
}

/// Validates one `*.hostprof.json` export: schema version, a complete
/// per-phase breakdown, and — re-checked from the file itself — the
/// sum-to-elapsed identity (phase buckets sum to no more than
/// `elapsed_ns` and trail it by at most the file's recorded `slop_ns`).
///
/// # Errors
///
/// [`Error::Obs`] describing the first violation.
pub fn validate_hostprof(path: &Path) -> Result<(), Error> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| profile_err(&path.display().to_string(), format!("reading: {e}")))?;
    let doc = Json::parse(&text)
        .map_err(|e| profile_err(&path.display().to_string(), e))?;
    let fail = |what: &str| profile_err(&path.display().to_string(), what.to_owned());
    if doc.get("schema_version").and_then(Json::as_u64) != Some(HOSTPROF_SCHEMA_VERSION) {
        return Err(fail("schema_version missing or unsupported"));
    }
    for key in ["cycles", "live_cycles", "elapsed_ns", "slop_ns"] {
        if doc.get(key).and_then(Json::as_u64).is_none() {
            return Err(fail(&format!("{key} missing")));
        }
    }
    let cycles = doc.get("cycles").and_then(Json::as_u64).unwrap();
    let live = doc.get("live_cycles").and_then(Json::as_u64).unwrap();
    if live == 0 || live > cycles {
        return Err(fail(&format!("implausible live_cycles {live} of {cycles} cycles")));
    }
    let elapsed = doc.get("elapsed_ns").and_then(Json::as_u64).unwrap();
    let slop = doc.get("slop_ns").and_then(Json::as_u64).unwrap();
    let phases = doc
        .get("phase_ns")
        .ok_or_else(|| fail("phase_ns object missing"))?;
    let mut sum = 0u64;
    for phase in HostPhase::ALL {
        sum += phases.get(phase.name()).and_then(Json::as_u64).ok_or_else(|| {
            fail(&format!("phase_ns.{} missing", phase.name()))
        })?;
    }
    if sum > elapsed {
        return Err(fail(&format!(
            "identity violated: phases sum to {sum} ns, elapsed is {elapsed} ns"
        )));
    }
    if elapsed - sum > slop {
        return Err(fail(&format!(
            "identity violated: {} ns unattributed (slop {slop} ns)",
            elapsed - sum
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("mcl-profile-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn profile_cell_exports_validate_and_report_ranks_phases() {
        let dir = temp_dir("cell");
        let store = TraceStore::new();
        let (rendered, cost) = profile_cell(&store, Benchmark::Compress, 40, &dir).unwrap();
        assert!(rendered.starts_with("compress: "), "{rendered}");
        assert!(rendered.contains("ns/live-cycle"), "{rendered}");
        assert!(cost.simulated_cycles > 0);

        let path = dir.join("compress.hostprof.json");
        validate_hostprof(&path).unwrap();
        let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(doc.get("benchmark").and_then(Json::as_str), Some("compress"));
        assert_eq!(doc.get("scheduler").and_then(Json::as_str), Some("local"));
        let live = doc.get("live_cycles").and_then(Json::as_u64).unwrap();
        let cycles = doc.get("cycles").and_then(Json::as_u64).unwrap();
        assert!(live > 0 && live <= cycles);
        // Every phase key must be present, even when zero.
        for phase in HostPhase::ALL {
            assert!(
                doc.get("phase_ns").unwrap().get(phase.name()).and_then(Json::as_u64).is_some(),
                "phase {} exported",
                phase.name()
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn validate_hostprof_rejects_broken_identity() {
        let dir = temp_dir("broken");
        let path = dir.join("x.hostprof.json");
        let mut phases = String::new();
        for (i, phase) in HostPhase::ALL.iter().enumerate() {
            if i > 0 {
                phases.push(',');
            }
            phases.push_str(&format!("\"{}\":1000", phase.name()));
        }
        // 8 phases × 1000 ns but the file claims 1 ns elapsed.
        let doc = format!(
            "{{\"schema_version\":1,\"benchmark\":\"x\",\"config\":\"c\",\"scheduler\":\"s\",\
             \"cycles\":10,\"live_cycles\":5,\"elapsed_ns\":1,\"slop_ns\":0,\
             \"ns_per_live_cycle\":1.0,\"phase_ns\":{{{phases}}}}}"
        );
        std::fs::write(&path, doc).unwrap();
        let err = validate_hostprof(&path).unwrap_err().to_string();
        assert!(err.contains("identity violated"), "{err}");
        // An unattributed gap past the recorded slop also fails.
        let doc = format!(
            "{{\"schema_version\":1,\"benchmark\":\"x\",\"config\":\"c\",\"scheduler\":\"s\",\
             \"cycles\":10,\"live_cycles\":5,\"elapsed_ns\":99000,\"slop_ns\":10,\
             \"ns_per_live_cycle\":1.0,\"phase_ns\":{{{phases}}}}}"
        );
        std::fs::write(&path, doc).unwrap();
        let err = validate_hostprof(&path).unwrap_err().to_string();
        assert!(err.contains("unattributed"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn validate_hostprof_rejects_missing_phase_or_schema() {
        let dir = temp_dir("missing");
        let path = dir.join("x.hostprof.json");
        std::fs::write(&path, "{\"schema_version\":99}").unwrap();
        assert!(validate_hostprof(&path).is_err(), "wrong schema_version");
        std::fs::write(
            &path,
            "{\"schema_version\":1,\"cycles\":10,\"live_cycles\":5,\"elapsed_ns\":10,\
             \"slop_ns\":10,\"phase_ns\":{\"dispatch\":1}}",
        )
        .unwrap();
        let err = validate_hostprof(&path).unwrap_err().to_string();
        assert!(err.contains("phase_ns.timeq missing"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
