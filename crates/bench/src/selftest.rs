//! Differential and fault-injection self-checks (`repro selftest`).
//!
//! Each check cross-validates two independent paths through the harness
//! that must agree, or injects a known fault and demands the safety net
//! catches it:
//!
//! - [`packed_vs_fat`] — simulating a [`PackedTrace`] must give exactly
//!   the statistics of simulating its unpacked [`mcl_trace::TraceOp`]
//!   form;
//! - [`store_vs_fresh`] — a memoized [`TraceStore`] simulation must
//!   equal a from-scratch schedule/trace/simulate of the same cell;
//! - [`jobs_agree`] — the worker pool at `--jobs N` must produce the
//!   payloads of a serial run;
//! - [`stall_identity`] — every benchmark × machine preset must satisfy
//!   the stall-accounting identity of [`mcl_core::stats::SimStats`]
//!   (every cycle lands in exactly one dispatch/drain/stall bucket);
//! - [`critpath_identity`] — every benchmark × machine preset, rerun
//!   with a [`mcl_core::CritPathProbe`] attached, must satisfy the
//!   critical-path attribution identity (per-cause cycles sum exactly
//!   to total cycles) without perturbing the statistics;
//! - [`pipetrace_identity`] — every benchmark × machine preset, rerun
//!   with a [`mcl_core::PipeTraceProbe`] attached, must satisfy the
//!   retire-exactness identity (every retired op recorded exactly once,
//!   monotone lifecycle stamps, well-formed dataflow edges, count equal
//!   to the simulator's retirements) without perturbing the statistics;
//! - [`hostprof_identity`] — every benchmark × machine preset, rerun
//!   with the host phase profiler
//!   ([`mcl_core::Processor::run_packed_profiled`]), must satisfy the
//!   sum-to-elapsed identity (phase nanoseconds telescope to the
//!   sampled host span) without perturbing the statistics;
//! - [`fuzz_checker`] — randomized straightline programs (deterministic
//!   [`mcl_testutil::Rng`] seeds) run under the cycle-level invariant
//!   checker on both machine presets, and the checker must neither fire
//!   nor perturb the statistics;
//! - [`leak_fault_caught`] — an injected transfer-buffer leak
//!   ([`FaultInjection`]) must surface as `SimError::Invariant`;
//! - [`corrupt_packed_rejected`] — corrupted or truncated serialized
//!   traces must fail [`PackedTrace::from_bytes`] with the right typed
//!   error;
//! - [`store_recovery`] — an on-disk [`crate::PersistStore`] entry
//!   truncated mid-file (a simulated kill during a non-atomic write)
//!   must be quarantined and transparently recomputed with
//!   byte-identical statistics, and the recomputed entry must serve
//!   warm afterwards.
//!
//! Every check returns its success detail plus the [`CellCost`] it
//! incurred, so `repro selftest` runs them as ordinary cells of the
//! hardened driver.

use mcl_core::{CheckLevel, FaultInjection, Processor, ProcessorConfig, SimError};
use mcl_isa::ArchReg;
use mcl_sched::SchedulerKind;
use mcl_testutil::Rng;
use mcl_trace::{vm::trace_program, PackedDecodeError, PackedTrace, Program, ProgramBuilder};
use mcl_workloads::Benchmark;

use crate::runner::{run_cells, Cell, CellCost};
use crate::{schedule_and_trace, simulate, Error, TraceRequest, TraceStore};

fn quick_scale(bench: Benchmark, divisor: u32) -> u32 {
    (bench.default_scale() / divisor.max(1)).max(1)
}

fn mismatch(what: &str, detail: String) -> Error {
    Error::SelfCheck(format!("{what}: {detail}"))
}

/// Simulating the packed and the unpacked form of one trace must give
/// identical statistics.
///
/// # Errors
///
/// [`Error::SelfCheck`] on divergence; simulation errors propagate.
pub fn packed_vs_fat(divisor: u32) -> Result<(String, CellCost), Error> {
    let bench = Benchmark::Compress;
    let store = TraceStore::new();
    let req = TraceRequest::new(bench, quick_scale(bench, divisor), SchedulerKind::Naive);
    let (packed, trace_build_seconds) = store.trace(&req)?;
    let cfg = ProcessorConfig::dual_cluster_8way();
    let from_packed = Processor::new(cfg.clone()).run_packed(&packed)?.stats;
    let fat = packed.to_ops();
    let from_fat = Processor::new(cfg).run_trace(&fat)?.stats;
    if from_packed != from_fat {
        return Err(mismatch(
            "packed-vs-fat",
            format!("packed {} cycles, fat {} cycles", from_packed.cycles, from_fat.cycles),
        ));
    }
    let cost = CellCost {
        simulated_cycles: from_packed.cycles + from_fat.cycles,
        trace_build_seconds,
        ..CellCost::default()
    };
    Ok((format!("{} ops, {} cycles, stats identical", fat.len(), from_packed.cycles), cost))
}

/// A memoized [`TraceStore`] simulation must equal an independent
/// schedule → trace → simulate pipeline.
///
/// # Errors
///
/// [`Error::SelfCheck`] on divergence; pipeline errors propagate.
pub fn store_vs_fresh(divisor: u32) -> Result<(String, CellCost), Error> {
    let bench = Benchmark::Ora;
    let scale = quick_scale(bench, divisor);
    let store = TraceStore::new();
    let req = TraceRequest::new(bench, scale, SchedulerKind::Local);
    let cfg = ProcessorConfig::dual_cluster_8way();
    let memoized = store.sim(&req, &cfg)?;

    let il = store.il(bench, scale);
    let fresh_trace = schedule_and_trace(&il, SchedulerKind::Local, store.assignment(), None)?;
    let fresh = simulate(&cfg, &fresh_trace)?;
    if memoized.stats != fresh {
        return Err(mismatch(
            "store-vs-fresh",
            format!("store {} cycles, fresh {} cycles", memoized.stats.cycles, fresh.cycles),
        ));
    }
    let mut cost = CellCost::cycles(fresh.cycles);
    cost.charge_sim(&memoized);
    Ok((format!("{} cycles from both paths", fresh.cycles), cost))
}

/// The worker pool must return serial-run payloads at any job count.
///
/// # Errors
///
/// [`Error::SelfCheck`] on divergence; cell errors propagate.
pub fn jobs_agree(divisor: u32) -> Result<(String, CellCost), Error> {
    fn cycle_cells(divisor: u32) -> Vec<Cell<u64>> {
        let store = std::sync::Arc::new(TraceStore::new());
        [Benchmark::Compress, Benchmark::Ora, Benchmark::Tomcatv]
            .into_iter()
            .flat_map(|bench| {
                [ProcessorConfig::single_cluster_8way(), ProcessorConfig::dual_cluster_8way()]
                    .into_iter()
                    .enumerate()
                    .map({
                        let store = std::sync::Arc::clone(&store);
                        move |(i, cfg)| {
                            let store = std::sync::Arc::clone(&store);
                            Cell::new(format!("{}/{i}", bench.name()), move || {
                                let req = TraceRequest::new(
                                    bench,
                                    quick_scale(bench, divisor),
                                    SchedulerKind::Naive,
                                );
                                let product = store.sim(&req, &cfg)?;
                                let mut cost = CellCost::default();
                                cost.charge_sim(&product);
                                Ok((product.stats.cycles, cost))
                            })
                        }
                    })
            })
            .collect()
    }

    let (serial, serial_metrics) = run_cells(1, cycle_cells(divisor))?;
    let (parallel, _) = run_cells(4, cycle_cells(divisor))?;
    if serial != parallel {
        return Err(mismatch("jobs-agree", format!("serial {serial:?} vs parallel {parallel:?}")));
    }
    let mut cost = CellCost::default();
    for m in &serial_metrics {
        cost.simulated_cycles += m.simulated_cycles;
        cost.trace_build_seconds += m.trace_build_seconds;
        cost.simulate_seconds += m.simulate_seconds;
        cost.il_build_seconds += m.il_build_seconds;
        cost.prepass_seconds += m.prepass_seconds;
        cost.schedule_seconds += m.schedule_seconds;
    }
    Ok((format!("{} cells agree between --jobs 1 and --jobs 4", serial.len()), cost))
}

/// Every repro benchmark, on every machine preset, must satisfy the
/// stall-accounting identity documented on
/// [`mcl_core::stats::SimStats`]: total cycles = dispatching cycles +
/// drain cycles + the six stall counters, i.e. the simulator charged
/// every cycle to exactly one bucket.
///
/// # Errors
///
/// [`Error::SelfCheck`] naming the first unbalanced cell; harness
/// errors propagate.
///
/// With `shards > 1` the store simulates each (long enough) trace as
/// merged time windows, so this stage doubles as the proof that the
/// identity is closed under the sharded merge: every window satisfies
/// it, [`mcl_core::SimStats::absorb`] is field-wise addition, so the
/// merged statistics must satisfy it too.
pub fn stall_identity(divisor: u32, shards: usize) -> Result<(String, CellCost), Error> {
    let mut tiny = ProcessorConfig::dual_cluster_8way();
    tiny.operand_buffer = 1;
    tiny.result_buffer = 1;
    let presets = [
        ("single", ProcessorConfig::single_cluster_8way()),
        ("dual", ProcessorConfig::dual_cluster_8way()),
        ("dual-tiny-buffers", tiny),
    ];
    let store = TraceStore::new().with_shards(shards);
    let mut cost = CellCost::default();
    let mut cells = 0u32;
    for bench in Benchmark::ALL {
        for kind in [SchedulerKind::Naive, SchedulerKind::Local] {
            let req = TraceRequest::new(bench, quick_scale(bench, divisor), kind);
            for (preset, cfg) in &presets {
                let product = store.sim(&req, cfg)?;
                cost.charge_sim(&product);
                product.stats.check_stall_identity().map_err(|detail| {
                    mismatch(
                        "stall-identity",
                        format!("{}/{kind:?}/{preset}: {detail}", bench.name()),
                    )
                })?;
                cells += 1;
            }
        }
    }
    Ok((format!("{cells} benchmark × scheduler × preset cells balance"), cost))
}

/// Every benchmark × scheduler × machine preset, rerun with a
/// [`mcl_core::CritPathProbe`] attached, must satisfy the critical-path
/// attribution identity ([`mcl_core::CritAttribution::check_identity`]):
/// the per-cause cycle breakdown sums exactly to the run's total cycles.
/// The instrumented run must also reproduce the uninstrumented store
/// run's statistics bit for bit — attaching the attribution probe can
/// never change what it measures.
///
/// # Errors
///
/// [`Error::SelfCheck`] naming the first unbalanced or diverging cell;
/// harness errors propagate.
///
/// Probed runs are always serial (probes observe absolute cycles), so
/// the bit-for-bit comparison is against the store's serial product
/// ([`TraceStore::sim_serial`]) even when the stage runs with
/// `shards > 1`.
pub fn critpath_identity(divisor: u32, shards: usize) -> Result<(String, CellCost), Error> {
    use mcl_core::CritPathProbe;

    let mut tiny = ProcessorConfig::dual_cluster_8way();
    tiny.operand_buffer = 1;
    tiny.result_buffer = 1;
    let presets = [
        ("single", ProcessorConfig::single_cluster_8way()),
        ("dual", ProcessorConfig::dual_cluster_8way()),
        ("dual-tiny-buffers", tiny),
    ];
    let store = TraceStore::new().with_shards(shards);
    let mut cost = CellCost::default();
    let mut cells = 0u32;
    for bench in Benchmark::ALL {
        for kind in [SchedulerKind::Naive, SchedulerKind::Local] {
            let req = TraceRequest::new(bench, quick_scale(bench, divisor), kind);
            for (preset, cfg) in &presets {
                let cell = |detail: String| {
                    mismatch(
                        "critpath-identity",
                        format!("{}/{kind:?}/{preset}: {detail}", bench.name()),
                    )
                };
                let product = store.sim_serial(&req, cfg)?;
                cost.charge_sim(&product);
                let (trace, _) = store.trace(&req)?;
                let mut probe = CritPathProbe::new();
                let observed =
                    Processor::new((*cfg).clone()).run_packed_observed(&trace, &mut probe)?;
                if observed.stats != product.stats {
                    return Err(cell(format!(
                        "instrumented run diverged ({} vs {} cycles)",
                        observed.stats.cycles, product.stats.cycles
                    )));
                }
                let attr = probe.attribution(observed.stats.cycles);
                attr.check_identity(observed.stats.cycles).map_err(cell)?;
                if attr.retired != observed.stats.retired {
                    return Err(cell(format!(
                        "probe saw {} retirements, simulator reported {}",
                        attr.retired, observed.stats.retired
                    )));
                }
                cells += 1;
            }
        }
    }
    Ok((format!("{cells} benchmark × scheduler × preset attributions balance"), cost))
}

/// Every benchmark × scheduler × machine preset, rerun with a
/// [`mcl_core::PipeTraceProbe`] attached, must satisfy the
/// retire-exactness identity ([`mcl_core::PipeTrace::check_identity`]):
/// every retired op recorded exactly once with a monotone
/// fetch ≤ dispatch ≤ issue ≤ complete ≤ retire lifecycle, every
/// dataflow edge referencing recorded ops, and the op count equal to
/// the simulator's retirement count. The instrumented run must also
/// reproduce the uninstrumented store run's statistics bit for bit —
/// tracing lifecycles can never change them.
///
/// # Errors
///
/// [`Error::SelfCheck`] naming the first violating or diverging cell;
/// harness errors propagate.
///
/// Probed runs are always serial (probes observe absolute cycles), so
/// the bit-for-bit comparison is against the store's serial product
/// ([`TraceStore::sim_serial`]) even when the stage runs with
/// `shards > 1`. The tiny-buffer preset forces replay exceptions
/// through the probe, so flushed-incarnation bookkeeping is covered on
/// every benchmark.
pub fn pipetrace_identity(divisor: u32, shards: usize) -> Result<(String, CellCost), Error> {
    use mcl_core::PipeTraceProbe;

    let mut tiny = ProcessorConfig::dual_cluster_8way();
    tiny.operand_buffer = 1;
    tiny.result_buffer = 1;
    let presets = [
        ("single", ProcessorConfig::single_cluster_8way()),
        ("dual", ProcessorConfig::dual_cluster_8way()),
        ("dual-tiny-buffers", tiny),
    ];
    let store = TraceStore::new().with_shards(shards);
    let mut cost = CellCost::default();
    let mut cells = 0u32;
    for bench in Benchmark::ALL {
        for kind in [SchedulerKind::Naive, SchedulerKind::Local] {
            let req = TraceRequest::new(bench, quick_scale(bench, divisor), kind);
            for (preset, cfg) in &presets {
                let cell = |detail: String| {
                    mismatch(
                        "pipetrace-identity",
                        format!("{}/{kind:?}/{preset}: {detail}", bench.name()),
                    )
                };
                let product = store.sim_serial(&req, cfg)?;
                cost.charge_sim(&product);
                let (trace, _) = store.trace(&req)?;
                let mut probe = PipeTraceProbe::new(0, u64::MAX);
                let observed =
                    Processor::new((*cfg).clone()).run_packed_observed(&trace, &mut probe)?;
                if observed.stats != product.stats {
                    return Err(cell(format!(
                        "instrumented run diverged ({} vs {} cycles)",
                        observed.stats.cycles, product.stats.cycles
                    )));
                }
                probe.finish().check_identity(observed.stats.retired).map_err(cell)?;
                cells += 1;
            }
        }
    }
    Ok((format!("{cells} benchmark × scheduler × preset lifecycles exact"), cost))
}

/// Every benchmark × scheduler × machine preset, rerun with the host
/// phase profiler ([`mcl_core::Processor::run_packed_profiled`]), must
/// satisfy the sum-to-elapsed identity
/// ([`mcl_core::HostProfReport::check_identity`]): the per-phase host
/// nanoseconds telescope — one clock sample ends one phase and starts
/// the next — so they sum exactly to the sampled span, and the span
/// tracks the cell's elapsed wall time within the stated slop. The
/// profiled run must also reproduce the uninstrumented store run's
/// statistics bit for bit — charging host time to phases can never
/// change what the machine does.
///
/// # Errors
///
/// [`Error::SelfCheck`] naming the first unbalanced or diverging cell;
/// harness errors propagate.
///
/// Profiled runs are always serial (host phase costs are per-process),
/// so the bit-for-bit comparison is against the store's serial product
/// ([`TraceStore::sim_serial`]) even when the stage runs with
/// `shards > 1`.
pub fn hostprof_identity(divisor: u32, shards: usize) -> Result<(String, CellCost), Error> {
    let mut tiny = ProcessorConfig::dual_cluster_8way();
    tiny.operand_buffer = 1;
    tiny.result_buffer = 1;
    let presets = [
        ("single", ProcessorConfig::single_cluster_8way()),
        ("dual", ProcessorConfig::dual_cluster_8way()),
        ("dual-tiny-buffers", tiny),
    ];
    let store = TraceStore::new().with_shards(shards);
    let mut cost = CellCost::default();
    let mut cells = 0u32;
    for bench in Benchmark::ALL {
        for kind in [SchedulerKind::Naive, SchedulerKind::Local] {
            let req = TraceRequest::new(bench, quick_scale(bench, divisor), kind);
            for (preset, cfg) in &presets {
                let cell = |detail: String| {
                    mismatch(
                        "hostprof-identity",
                        format!("{}/{kind:?}/{preset}: {detail}", bench.name()),
                    )
                };
                let product = store.sim_serial(&req, cfg)?;
                cost.charge_sim(&product);
                let (trace, _) = store.trace(&req)?;
                let (profiled, report) =
                    Processor::new((*cfg).clone()).run_packed_profiled(&trace)?;
                if profiled.stats != product.stats {
                    return Err(cell(format!(
                        "profiled run diverged ({} vs {} cycles)",
                        profiled.stats.cycles, product.stats.cycles
                    )));
                }
                report.check_identity().map_err(cell)?;
                if report.cycles != profiled.stats.cycles {
                    return Err(cell(format!(
                        "profiler saw {} cycles, simulator reported {}",
                        report.cycles, profiled.stats.cycles
                    )));
                }
                if report.live_cycles > report.cycles {
                    return Err(cell(format!(
                        "{} live cycles exceed {} total cycles",
                        report.live_cycles, report.cycles
                    )));
                }
                cells += 1;
            }
        }
    }
    Ok((format!("{cells} benchmark × scheduler × preset profiles balance"), cost))
}

/// A random but valid straightline program: integer and floating-point
/// ALU traffic over registers of both clusters, so dual distribution,
/// transfer buffers, suspended slaves, and (with tiny buffers) replays
/// all get exercised.
fn random_program(rng: &mut Rng) -> Program<ArchReg> {
    let mut b = ProgramBuilder::<ArchReg>::new("fuzz");
    // Avoid the architecturally special registers: GP/SP (29/30) and the
    // hardwired zeros (31).
    let int = |rng: &mut Rng| ArchReg::int(rng.range(0, 29) as u8);
    let fp = |rng: &mut Rng| ArchReg::fp(rng.range(0, 31) as u8);
    for i in 0..6 {
        b.lda(ArchReg::int(i), rng.range_i64(-1000, 1000));
    }
    for _ in 0..rng.range(4, 48) {
        match rng.below(6) {
            0 => {
                let (d, a, s) = (int(rng), int(rng), int(rng));
                b.addq(d, a, s);
            }
            1 => {
                let (d, a) = (int(rng), int(rng));
                let imm = rng.range_i64(-128, 128);
                b.addq_imm(d, a, imm);
            }
            2 => {
                let (d, a, s) = (int(rng), int(rng), int(rng));
                b.mulq(d, a, s);
            }
            3 | 4 => {
                let (d, a, s) = (fp(rng), fp(rng), fp(rng));
                b.addt(d, a, s);
            }
            _ => {
                let (d, a, s) = (fp(rng), fp(rng), fp(rng));
                b.mult(d, a, s);
            }
        }
    }
    b.finish().expect("generated programs are structurally valid")
}

/// Runs `cases` random programs under the cycle-level checker on both
/// machine presets (plus a tiny-buffer dual machine that forces replay
/// exceptions through the checker) and demands a clean, unperturbed run.
///
/// # Errors
///
/// [`Error::SelfCheck`] if the checker fires on, or perturbs, a valid
/// program.
pub fn fuzz_checker(cases: u64) -> Result<(String, CellCost), Error> {
    let mut tiny = ProcessorConfig::dual_cluster_8way();
    tiny.operand_buffer = 1;
    tiny.result_buffer = 1;
    let presets = [
        ProcessorConfig::single_cluster_8way(),
        ProcessorConfig::dual_cluster_8way(),
        tiny,
    ];
    let mut cost = CellCost::default();
    for seed in 0..cases {
        let mut rng = Rng::new(seed);
        let program = random_program(&mut rng);
        let (trace, _) = trace_program(&program).map_err(Error::Vm)?;
        for cfg in &presets {
            let off = cfg.clone().with_check_level(CheckLevel::Off);
            let baseline = Processor::new(off)
                .run_trace(&trace)
                .map_err(|e| mismatch("fuzz-checker", format!("seed {seed} failed plain: {e}")))?
                .stats;
            let checked = Processor::new(cfg.clone().with_check_level(CheckLevel::Cycle))
                .run_trace(&trace)
                .map_err(|e| {
                    mismatch("fuzz-checker", format!("seed {seed} tripped the checker: {e}"))
                })?
                .stats;
            if checked != baseline {
                return Err(mismatch(
                    "fuzz-checker",
                    format!(
                        "seed {seed}: checker perturbed the run ({} vs {} cycles)",
                        checked.cycles, baseline.cycles
                    ),
                ));
            }
            cost.simulated_cycles += baseline.cycles + checked.cycles;
        }
    }
    Ok((format!("{cases} random programs validated on {} presets", presets.len()), cost))
}

/// Injects transfer-buffer leaks and demands the cycle-level checker
/// reports them as invariant violations.
///
/// # Errors
///
/// [`Error::SelfCheck`] if a leak goes unnoticed or is misattributed.
pub fn leak_fault_caught() -> Result<(String, CellCost), Error> {
    // Alternating even/odd destinations: every add crosses clusters.
    let mut b = ProgramBuilder::<ArchReg>::new("leak");
    let (e, o) = (ArchReg::int(2), ArchReg::int(3));
    b.lda(e, 0);
    for _ in 0..20 {
        b.addq_imm(o, e, 1);
        b.addq_imm(e, o, 1);
    }
    let program = b.finish().expect("valid");

    let faults = [
        (FaultInjection::LeakOperandBuffer { cycle: 0 }, "otb-accounting"),
        (FaultInjection::LeakResultBuffer { cycle: 0 }, "rtb-accounting"),
    ];
    for (fault, want_rule) in faults {
        let mut cfg = ProcessorConfig::dual_cluster_8way().with_check_level(CheckLevel::Cycle);
        cfg.faults = vec![fault.clone()];
        match Processor::new(cfg).run_program(&program) {
            Err(SimError::Invariant { rule, .. }) if rule == want_rule => {}
            Err(SimError::Invariant { rule, .. }) => {
                return Err(mismatch(
                    "leak-fault",
                    format!("{fault:?} reported as `{rule}`, expected `{want_rule}`"),
                ));
            }
            Err(e) => {
                return Err(mismatch("leak-fault", format!("{fault:?} surfaced as {e}")));
            }
            Ok(_) => {
                return Err(mismatch(
                    "leak-fault",
                    format!("checker missed the injected {fault:?}"),
                ));
            }
        }
    }
    Ok(("operand and result leaks both caught as invariant violations".to_owned(),
        CellCost::default()))
}

/// Corrupts a serialized trace and demands typed decode errors.
///
/// # Errors
///
/// [`Error::SelfCheck`] if corruption decodes successfully or fails with
/// the wrong error.
pub fn corrupt_packed_rejected() -> Result<(String, CellCost), Error> {
    let mut b = ProgramBuilder::<ArchReg>::new("wire");
    b.lda(ArchReg::int(2), 7);
    b.addq_imm(ArchReg::int(3), ArchReg::int(2), 1);
    b.mulq(ArchReg::int(4), ArchReg::int(3), ArchReg::int(2));
    let program = b.finish().expect("valid");
    let (trace, _) = trace_program(&program).map_err(Error::Vm)?;
    let packed = PackedTrace::from_ops(&trace);
    let good = packed.to_bytes();

    if PackedTrace::from_bytes(&good).as_ref() != Ok(&packed) {
        return Err(mismatch("corrupt-packed", "clean bytes failed to round-trip".to_owned()));
    }

    // No opcode has code 0xFF; record 1's opcode byte sits after the
    // 16 pc/aux bytes.
    let mut bad_op = good.clone();
    bad_op[PackedTrace::WIRE_BYTES_PER_OP + 16] = u8::MAX;
    match PackedTrace::from_bytes(&bad_op) {
        Err(PackedDecodeError::BadOpcode { index: 1, code: u8::MAX }) => {}
        other => {
            return Err(mismatch(
                "corrupt-packed",
                format!("opcode corruption decoded as {other:?}"),
            ));
        }
    }

    let truncated = &good[..good.len() - 3];
    match PackedTrace::from_bytes(truncated) {
        Err(PackedDecodeError::Truncated { .. }) => {}
        other => {
            return Err(mismatch("corrupt-packed", format!("truncation decoded as {other:?}")));
        }
    }
    Ok(("opcode corruption and truncation both rejected with typed errors".to_owned(),
        CellCost::default()))
}

/// Truncates a persisted store entry mid-file and demands quarantine,
/// transparent recomputation with identical statistics, and a warm
/// serve of the recomputed entry.
///
/// This is the crash-recovery drill for [`crate::PersistStore`]: the
/// store's own writes are atomic (temp file + rename), so a torn entry
/// can only come from outside interference — which is exactly what this
/// stage manufactures.
///
/// # Errors
///
/// [`Error::SelfCheck`] if the corruption is served, errors out, or the
/// recomputed statistics diverge.
pub fn store_recovery(divisor: u32) -> Result<(String, CellCost), Error> {
    use std::sync::Arc;

    use crate::PersistStore;

    let bench = Benchmark::Compress;
    let req = TraceRequest::new(bench, quick_scale(bench, divisor), SchedulerKind::Local);
    let cfg = ProcessorConfig::dual_cluster_8way();
    let dir = std::env::temp_dir()
        .join(format!("mcl-selftest-store-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let fail = |detail: String| mismatch("store-recovery", detail);
    let open = |what: &str| -> Result<Arc<PersistStore>, Error> {
        PersistStore::open(&dir).map(Arc::new).map_err(|e| fail(format!("{what}: {e}")))
    };

    // "Process" 1 (cold): compute and persist the entry.
    let cold = TraceStore::new().with_persist(open("cold open")?).sim(&req, &cfg)?;
    let mut cost = CellCost::default();
    cost.charge_sim(&cold);

    // Kill-mid-write: truncate the entry in place. The store's own
    // writes are temp-file + rename, so this torn state models external
    // corruption (or a crashed copy), not a normal store.
    let entries = dir.join("entries");
    let entry = std::fs::read_dir(&entries)
        .map_err(|e| fail(format!("reading {}: {e}", entries.display())))?
        .filter_map(Result::ok)
        .map(|d| d.path())
        .find(|p| p.extension().is_some_and(|x| x == "bin"))
        .ok_or_else(|| fail("no entry persisted by the cold run".to_owned()))?;
    let full_len = std::fs::metadata(&entry).map_err(|e| fail(e.to_string()))?.len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(&entry)
        .and_then(|f| f.set_len(full_len / 2))
        .map_err(|e| fail(format!("truncating {}: {e}", entry.display())))?;

    // "Process" 2 (warm, corrupted): must quarantine, recompute
    // identical statistics, and re-persist.
    let persist = open("post-truncation open")?;
    let warm = TraceStore::new().with_persist(Arc::clone(&persist)).sim(&req, &cfg)?;
    cost.charge_sim(&warm);
    if warm.stats != cold.stats {
        return Err(fail(format!(
            "recomputed stats diverged ({} vs {} cycles)",
            warm.stats.cycles, cold.stats.cycles
        )));
    }
    let c = persist.counters();
    if c.quarantined != 1 || persist.quarantine_len() != 1 {
        return Err(fail(format!(
            "expected exactly one quarantined entry, counters say {} (dir has {})",
            c.quarantined,
            persist.quarantine_len()
        )));
    }
    if c.stores != 1 {
        return Err(fail(format!("recomputed result not re-persisted (stores = {})", c.stores)));
    }

    // "Process" 3: the recomputed entry now serves warm from disk.
    let persist = open("recovered open")?;
    let served = TraceStore::new().with_persist(Arc::clone(&persist)).sim(&req, &cfg)?;
    if served.stats != cold.stats {
        return Err(fail(format!(
            "recovered entry served different stats ({} vs {} cycles)",
            served.stats.cycles, cold.stats.cycles
        )));
    }
    if served.fresh || persist.counters().hits != 1 {
        return Err(fail("recovered entry was not served from disk".to_owned()));
    }
    let _ = std::fs::remove_dir_all(&dir);
    Ok((
        "truncated entry quarantined, recomputed identically, and re-served warm".to_owned(),
        cost,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_injection_checks_pass() {
        leak_fault_caught().unwrap();
        corrupt_packed_rejected().unwrap();
    }

    #[test]
    fn fuzzing_a_few_seeds_is_clean() {
        let (detail, cost) = fuzz_checker(6).unwrap();
        assert!(detail.contains("6 random programs"));
        assert!(cost.simulated_cycles > 0);
    }

    #[test]
    fn differential_checks_pass_at_a_coarse_scale() {
        let divisor = 64;
        packed_vs_fat(divisor).unwrap();
        store_vs_fresh(divisor).unwrap();
        jobs_agree(divisor).unwrap();
    }

    #[test]
    fn stall_identity_holds_at_a_coarse_scale() {
        let (detail, cost) = stall_identity(64, 1).unwrap();
        assert!(detail.contains("36 benchmark"), "{detail}");
        assert!(cost.simulated_cycles > 0);
    }

    #[test]
    fn critpath_identity_holds_at_a_coarse_scale() {
        let (detail, cost) = critpath_identity(64, 1).unwrap();
        assert!(detail.contains("36 benchmark"), "{detail}");
        assert!(cost.simulated_cycles > 0);
    }

    #[test]
    fn pipetrace_identity_holds_at_a_coarse_scale() {
        let (detail, cost) = pipetrace_identity(64, 1).unwrap();
        assert!(detail.contains("36 benchmark"), "{detail}");
        assert!(cost.simulated_cycles > 0);
    }

    #[test]
    fn hostprof_identity_holds_at_a_coarse_scale() {
        let (detail, cost) = hostprof_identity(64, 1).unwrap();
        assert!(detail.contains("36 benchmark"), "{detail}");
        assert!(cost.simulated_cycles > 0);
    }

    #[test]
    fn store_recovery_quarantines_and_recomputes() {
        let (detail, cost) = store_recovery(64).unwrap();
        assert!(detail.contains("quarantined"), "{detail}");
        assert!(cost.simulated_cycles > 0);
    }

    #[test]
    fn stall_identity_survives_the_sharded_merge() {
        let (detail, cost) = stall_identity(64, 4).unwrap();
        assert!(detail.contains("36 benchmark"), "{detail}");
        assert!(cost.simulated_cycles > 0);
    }
}
