//! Observability exports behind `repro --obs OUT_DIR`.
//!
//! For each observed cell this module runs one *additional* instrumented
//! simulation — dual-cluster machine, local-scheduler trace served by
//! the shared [`TraceStore`] — with an [`ObsProbe`] attached, and writes
//! per-cell artifacts into the output directory:
//!
//! - `<bench>.series.json` — the interval-sampled time series (IPC,
//!   occupancy, free registers, stall-cause breakdown per interval) plus
//!   the log2-bucketed pipeline-latency histograms;
//! - `<bench>.trace.json` — the lifecycle event ring in Chrome
//!   trace-event format (an object with a `traceEvents` array), loadable
//!   in Perfetto / `chrome://tracing`;
//! - `<bench>.postmortem.txt` — only when the instrumented run dies with
//!   a [`SimError`]: the ring's surviving tail rendered through
//!   [`mcl_core::pipeview`].
//!
//! The instrumented run is *extra* work: the cell's reported statistics
//! still come from the ordinary uninstrumented store simulation, and
//! [`observe_cell`] cross-checks that both runs produced byte-identical
//! [`mcl_core::SimStats`] — the probe layer's "observe, never perturb"
//! guarantee, enforced on every `--obs` run. Its cycles are deliberately
//! *not* charged to the cell cost, so `BENCH_repro.json` aggregates stay
//! identical with `--obs` on or off.
//!
//! [`validate_dir`] re-reads a directory of exports with the hand-rolled
//! [`Json::parse`] and checks the schema (`repro obs-validate`).

use std::path::{Path, PathBuf};

use mcl_core::obs::{EventRing, ObsConfig, ObsProbe, StallCause};
use mcl_core::events::EventKind;
use mcl_core::{PipeViewOptions, Processor, ProcessorConfig, SimError};
use mcl_sched::SchedulerKind;
use mcl_workloads::Benchmark;

use crate::json::Json;
use crate::store::TraceRequest;
use crate::{Error, TraceStore};

/// Schema version of the `*.series.json` exports.
pub const SERIES_SCHEMA_VERSION: u64 = 1;

/// Event-ring capacity of `--obs` runs (last K lifecycle events).
pub const RING_CAPACITY: usize = 4096;

/// Where and how densely to export.
#[derive(Debug, Clone)]
pub struct ObsSettings {
    /// Output directory (created if missing).
    pub dir: PathBuf,
    /// Sampling interval in cycles (`--sample-interval`).
    pub sample_interval: u64,
}

fn obs_err(context: &str, detail: impl std::fmt::Display) -> Error {
    Error::Obs(format!("{context}: {detail}"))
}

/// Identity of one instrumented export: the file stem the artifacts
/// are written under plus the labels recorded inside the series export.
#[derive(Debug, Clone, Copy)]
pub struct ObsTarget<'a> {
    /// Export file stem (`<stem>.series.json`, `<stem>.trace.json`).
    pub stem: &'a str,
    /// Processor-configuration label recorded in the export.
    pub config_label: &'a str,
    /// Scheduler label recorded in the export.
    pub sched_label: &'a str,
}

/// Runs the instrumented companion simulation of one Table 2 cell and
/// writes its exports; returns the file names written.
///
/// # Errors
///
/// [`Error::Obs`] if the instrumented run's statistics diverge from the
/// store's uninstrumented run (a probe perturbed the simulation) or an
/// export cannot be written; harness errors propagate. On [`SimError`]
/// the ring tail is written to `<bench>.postmortem.txt` before the
/// error propagates.
pub fn observe_cell(
    store: &TraceStore,
    bench: Benchmark,
    scale: u32,
    settings: &ObsSettings,
) -> Result<Vec<String>, Error> {
    observe_request(
        store,
        &TraceRequest::new(bench, scale, SchedulerKind::Local),
        &ProcessorConfig::dual_cluster_8way(),
        ObsTarget { stem: bench.name(), config_label: "dual_cluster_8way", sched_label: "local" },
        settings,
    )
}

/// Generalised form of [`observe_cell`]: runs the instrumented
/// companion of any store-served `(request, configuration)` pair and
/// writes its exports under `target.stem` — how `repro ablate` and
/// `repro scenarios` cells export observability artifacts for their
/// family-representative configuration.
///
/// # Errors
///
/// As [`observe_cell`].
pub fn observe_request(
    store: &TraceStore,
    req: &TraceRequest,
    cfg: &ProcessorConfig,
    target: ObsTarget<'_>,
    settings: &ObsSettings,
) -> Result<Vec<String>, Error> {
    let (trace, _) = store.trace(req)?;
    // Probed companions are always serial, so the cross-check reference
    // must be the serial product even when the store shards fresh runs.
    let expected = store.sim_serial(req, cfg)?;
    observe_trace(&trace, cfg, &expected.stats, target, settings)
}

/// Instrumented companion of one prescheduled scenario program
/// (`repro scenarios --obs`): exports under the stem `scenario<N>`.
///
/// # Errors
///
/// As [`observe_cell`]; the cross-check reference is a fresh
/// uninstrumented run of the same program.
pub fn observe_scenario(
    scenario: &mcl_workloads::scenarios::Scenario,
    settings: &ObsSettings,
) -> Result<Vec<String>, Error> {
    let (trace, _) = mcl_trace::vm::trace_program_packed(&scenario.program, 0)?;
    let cfg = ProcessorConfig::dual_cluster_8way();
    let expected = Processor::new(cfg.clone()).run_packed(&trace)?;
    let stem = format!("scenario{}", scenario.number);
    observe_trace(
        &trace,
        &cfg,
        &expected.stats,
        ObsTarget {
            stem: &stem,
            config_label: "dual_cluster_8way",
            sched_label: "prescheduled",
        },
        settings,
    )
}

/// The shared export path: instrumented run, byte-identity cross-check
/// against `expected`, series + Chrome trace written under the stem.
fn observe_trace(
    trace: &mcl_trace::PackedTrace,
    cfg: &ProcessorConfig,
    expected: &mcl_core::SimStats,
    target: ObsTarget<'_>,
    settings: &ObsSettings,
) -> Result<Vec<String>, Error> {
    let mut probe = ObsProbe::new(ObsConfig {
        sample_interval: settings.sample_interval,
        ring_capacity: RING_CAPACITY,
    });
    std::fs::create_dir_all(&settings.dir)
        .map_err(|e| obs_err(&format!("creating {}", settings.dir.display()), e))?;

    let observed = match Processor::new(cfg.clone()).run_packed_observed(trace, &mut probe) {
        Ok(result) => result,
        Err(e) => {
            probe.finish();
            let name = format!("{}.postmortem.txt", target.stem);
            let rendered = render_postmortem(target.stem, &e, probe.ring());
            let path = settings.dir.join(&name);
            std::fs::write(&path, rendered)
                .map_err(|io| obs_err(&format!("writing {}", path.display()), io))?;
            return Err(Error::Sim(e));
        }
    };
    probe.finish();

    // The probe must have observed, never perturbed: the instrumented
    // statistics must equal the uninstrumented run bit for bit.
    if observed.stats != *expected {
        return Err(obs_err(
            "probe perturbation",
            format!(
                "{}: instrumented run diverged from the reference run \
                 ({} vs {} cycles) — probes must not affect simulation",
                target.stem, observed.stats.cycles, expected.cycles
            ),
        ));
    }

    let series_name = format!("{}.series.json", target.stem);
    let trace_name = format!("{}.trace.json", target.stem);
    let series = series_json(target, observed.stats.cycles, &probe);
    let chrome = chrome_trace_json(probe.ring());
    for (name, json) in [(&series_name, series), (&trace_name, chrome)] {
        let path = settings.dir.join(name);
        std::fs::write(&path, json.render() + "\n")
            .map_err(|e| obs_err(&format!("writing {}", path.display()), e))?;
    }
    Ok(vec![series_name, trace_name])
}

fn render_postmortem(stem: &str, error: &SimError, ring: &EventRing) -> String {
    let mut out = format!(
        "instrumented run of {stem} failed: {error}\n\nlast {} lifecycle events \
         ({} older events dropped):\n\n",
        ring.len(),
        ring.dropped()
    );
    if let Some((lo, hi)) = ring.seq_range() {
        let log = ring.to_log();
        out.push_str(&mcl_core::render_pipeline(
            &log,
            PipeViewOptions { first_seq: lo, last_seq: hi, max_cycles: 200 },
        ));
    } else {
        out.push_str("(no events retained)\n");
    }
    out
}

fn histogram_json(h: &mcl_core::Histogram) -> Json {
    let mut obj = Json::object();
    obj.field("count", h.count().into())
        .field("sum", h.sum().into())
        .field("min", h.min().map_or(Json::Null, Json::U64))
        .field("max", h.max().map_or(Json::Null, Json::U64))
        .field("mean", h.mean().map_or(Json::Null, Json::F64))
        .field(
            "buckets",
            Json::Array(
                h.nonzero_buckets()
                    .map(|(_, lo, hi, count)| {
                        let mut b = Json::object();
                        b.field("lo", lo.into())
                            .field("hi", hi.map_or(Json::Null, Json::U64))
                            .field("count", count.into());
                        b
                    })
                    .collect(),
            ),
        );
    obj
}

fn u32_array(values: &[u32; 2]) -> Json {
    Json::Array(values.iter().map(|&v| Json::U64(u64::from(v))).collect())
}

fn i64_array(values: &[i64; 2]) -> Json {
    // The emitter has no integer-with-sign variant; free-list counts fit
    // f64 exactly (they are small) and render with a fixed fraction.
    Json::Array(values.iter().map(|&v| Json::F64(v as f64)).collect())
}

fn series_json(target: ObsTarget<'_>, cycles: u64, probe: &ObsProbe) -> Json {
    let samples: Vec<Json> = probe
        .samples()
        .iter()
        .map(|s| {
            let mut stalls = Json::object();
            for cause in StallCause::ALL {
                stalls.field(cause.name(), s.stalls[cause.index()].into());
            }
            let mut sample = Json::object();
            sample
                .field("cycle_end", s.cycle_end.into())
                .field("cycles", s.cycles.into())
                .field("ipc", s.ipc().into())
                .field("retired", s.retired.into())
                .field("dispatched", s.dispatched.into())
                .field("issued", s.issued.into())
                .field("replays", s.replays.into())
                .field("stalls", stalls)
                .field("window", u64::from(s.window).into())
                .field("dq_used", u32_array(&s.dq_used))
                .field("otb_used", u32_array(&s.otb_used))
                .field("rtb_used", u32_array(&s.rtb_used))
                .field("int_free", i64_array(&s.int_free))
                .field("fp_free", i64_array(&s.fp_free));
            sample
        })
        .collect();
    let mut histograms = Json::object();
    for (name, h) in probe.histograms() {
        histograms.field(name, histogram_json(h));
    }
    let ring = probe.ring();
    let mut ring_json = Json::object();
    ring_json
        .field("capacity", (ring.capacity() as u64).into())
        .field("len", (ring.len() as u64).into())
        .field("dropped", ring.dropped().into());
    let mut obj = Json::object();
    obj.field("schema_version", SERIES_SCHEMA_VERSION.into())
        .field("benchmark", target.stem.into())
        .field("config", target.config_label.into())
        .field("scheduler", target.sched_label.into())
        .field("sample_interval", probe.sample_interval().into())
        .field("cycles", cycles.into())
        .field("samples", Json::Array(samples))
        .field("histograms", histograms)
        .field("ring", ring_json);
    obj
}

/// Stable event names for the Chrome trace export.
fn kind_slug(kind: EventKind) -> &'static str {
    match kind {
        EventKind::Distributed => "distributed",
        EventKind::MasterIssued => "master_issued",
        EventKind::SlaveIssued => "slave_issued",
        EventKind::ExecDone => "exec_done",
        EventKind::OperandWritten => "operand_written",
        EventKind::ResultWritten => "result_written",
        EventKind::RegWritten => "reg_written",
        EventKind::SlaveSuspended => "slave_suspended",
        EventKind::SlaveWoke => "slave_woke",
        EventKind::Retired => "retired",
        EventKind::Mispredicted => "mispredicted",
        EventKind::ReplaySquashed => "replay_squashed",
    }
}

/// Renders the ring as Chrome trace-event JSON: one `ph:"i"` instant per
/// lifecycle event (`ts` = cycle, `pid` = cluster, `tid` = instruction
/// sequence number) plus one `ph:"X"` span per instruction whose
/// dispatch *and* retire both survive in the ring.
fn chrome_trace_json(ring: &EventRing) -> Json {
    let mut events: Vec<Json> = Vec::with_capacity(ring.len());
    // seq -> (dispatch cycle, dispatch pid, retire cycle)
    let mut spans: Vec<(u64, u64, u64, Option<u64>)> = Vec::new();
    for e in ring.iter() {
        let pid = e.cluster.map_or(0, |c| c.index() as u64);
        let mut obj = Json::object();
        obj.field("name", kind_slug(e.kind).into())
            .field("cat", "lifecycle".into())
            .field("ph", "i".into())
            .field("ts", e.cycle.into())
            .field("pid", pid.into())
            .field("tid", e.seq.into())
            .field("s", "t".into());
        events.push(obj);
        match e.kind {
            EventKind::Distributed if !spans.iter().any(|(seq, ..)| *seq == e.seq) => {
                spans.push((e.seq, e.cycle, pid, None));
            }
            EventKind::Retired => {
                if let Some(span) = spans.iter_mut().find(|(seq, ..)| *seq == e.seq) {
                    span.3 = Some(e.cycle);
                }
            }
            _ => {}
        }
    }
    for (seq, dispatch, pid, retire) in spans {
        let Some(retire) = retire else { continue };
        let mut obj = Json::object();
        obj.field("name", format!("seq {seq}").as_str().into())
            .field("cat", "lifetime".into())
            .field("ph", "X".into())
            .field("ts", dispatch.into())
            .field("dur", retire.saturating_sub(dispatch).max(1).into())
            .field("pid", pid.into())
            .field("tid", seq.into());
        events.push(obj);
    }
    chrome_trace_document(events)
}

/// Wraps pre-built trace events in the Chrome trace document shape
/// every trace export in this crate shares (`--obs` per-cell traces and
/// the `--flight` whole-run recording).
pub(crate) fn chrome_trace_document(events: Vec<Json>) -> Json {
    let mut obj = Json::object();
    obj.field("traceEvents", Json::Array(events)).field("displayTimeUnit", "ns".into());
    obj
}

fn parse_file(path: &Path) -> Result<Json, Error> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| obs_err(&format!("reading {}", path.display()), e))?;
    Json::parse(&text).map_err(|e| obs_err(&format!("{}", path.display()), e))
}

fn require(ok: bool, path: &Path, what: &str) -> Result<(), Error> {
    if ok {
        Ok(())
    } else {
        Err(obs_err(&format!("{}", path.display()), what))
    }
}

/// The five histogram keys every series export must carry.
const HISTOGRAM_KEYS: [&str; 5] = [
    "dispatch_to_issue",
    "issue_to_complete",
    "complete_to_retire",
    "otb_residency",
    "rtb_residency",
];

fn validate_series(path: &Path) -> Result<(), Error> {
    let doc = parse_file(path)?;
    require(
        doc.get("schema_version").and_then(Json::as_u64) == Some(SERIES_SCHEMA_VERSION),
        path,
        "schema_version missing or unsupported",
    )?;
    let samples = doc
        .get("samples")
        .and_then(Json::as_array)
        .ok_or_else(|| obs_err(&format!("{}", path.display()), "samples is not an array"))?;
    for s in samples {
        require(
            s.get("cycle_end").and_then(Json::as_u64).is_some()
                && s.get("ipc").and_then(Json::as_f64).is_some()
                && s.get("stalls").and_then(|v| v.get("replay")).is_some(),
            path,
            "sample missing cycle_end/ipc/stalls",
        )?;
    }
    for key in HISTOGRAM_KEYS {
        let h = doc
            .get("histograms")
            .and_then(|v| v.get(key))
            .ok_or_else(|| obs_err(&format!("{}", path.display()), format!("histogram {key} missing")))?;
        require(
            h.get("count").and_then(Json::as_u64).is_some()
                && h.get("buckets").and_then(Json::as_array).is_some(),
            path,
            "histogram missing count/buckets",
        )?;
    }
    Ok(())
}

pub(crate) fn validate_trace(path: &Path) -> Result<usize, Error> {
    let doc = parse_file(path)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .ok_or_else(|| obs_err(&format!("{}", path.display()), "traceEvents is not an array"))?;
    require(!events.is_empty(), path, "traceEvents is empty")?;
    for e in events {
        require(
            e.get("ph").and_then(Json::as_str).is_some()
                && e.get("ts").and_then(Json::as_f64).is_some()
                && e.get("pid").and_then(Json::as_f64).is_some(),
            path,
            "trace event missing ph/ts/pid",
        )?;
    }
    Ok(events.len())
}

/// Validates a directory of exports: every `*.series.json` and
/// `*.trace.json` (from `--obs`), every `*.critpath.json` (from
/// `repro explain`), every `*.hostprof.json` (from `repro profile`),
/// every `*.pipetrace.json` and `*.konata` (from `repro pipetrace`),
/// and every `*.flight.json` (from `--flight`) must parse and carry
/// the expected schema — for critpath, hostprof, and pipetrace exports
/// that includes re-checking the identity guarantees from the file.
/// Returns a one-line summary.
///
/// An empty or missing directory is a hard failure, never a vacuous
/// pass: `repro obs-validate` exists to prove exports were produced.
/// Every file is checked even after the first failure, so one pass
/// reports ALL invalid exports, not just the lexicographically first.
///
/// # Errors
///
/// [`Error::Obs`] when the directory is unreadable or holds no exports,
/// or — listing every failing file — when any export fails validation.
pub fn validate_dir(dir: &Path) -> Result<String, Error> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| obs_err(&format!("reading {}", dir.display()), e))?;
    let mut names: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    names.sort();
    let (mut series, mut traces, mut trace_events, mut critpaths) = (0usize, 0usize, 0usize, 0usize);
    let (mut hostprofs, mut flights, mut pipetraces, mut konatas) = (0usize, 0usize, 0usize, 0usize);
    // Validation failures accumulate: a directory with three broken
    // exports reports all three, not just the first one hit.
    let mut failures: Vec<String> = Vec::new();
    let mut check = |counter: &mut usize, result: Result<(), Error>| {
        *counter += 1;
        if let Err(e) = result {
            failures.push(e.to_string());
        }
    };
    for path in &names {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
        if name.ends_with(".series.json") {
            check(&mut series, validate_series(path));
        } else if name.ends_with(".flight.json") {
            // Checked before `.trace.json` so a flight recording never
            // trips the series/trace pairing rule below.
            check(&mut flights, crate::flight::validate_flight(path).map(|_| ()));
        } else if name.ends_with(".pipetrace.json") {
            check(&mut pipetraces, crate::pipetrace::validate_pipetrace(path));
        } else if name.ends_with(".konata") {
            check(&mut konatas, crate::pipetrace::validate_konata(path));
        } else if name.ends_with(".trace.json") {
            check(&mut traces, validate_trace(path).map(|n| trace_events += n));
        } else if name.ends_with(".critpath.json") {
            check(&mut critpaths, crate::explain::validate_critpath(path));
        } else if name.ends_with(".hostprof.json") {
            check(&mut hostprofs, crate::profile::validate_hostprof(path));
        }
    }
    if !failures.is_empty() {
        return Err(obs_err(
            &format!("{}", dir.display()),
            format!("{} invalid export(s):\n  {}", failures.len(), failures.join("\n  ")),
        ));
    }
    if series == 0
        && traces == 0
        && critpaths == 0
        && hostprofs == 0
        && flights == 0
        && pipetraces == 0
        && konatas == 0
    {
        return Err(obs_err(
            &format!("{}", dir.display()),
            "no observability exports found (empty or missing exports are a failure, \
             not a vacuous pass)",
        ));
    }
    // `--obs` always writes series and trace files in pairs; a lone kind
    // means a partial or corrupted export run.
    if (series == 0) != (traces == 0) {
        return Err(obs_err(
            &format!("{}", dir.display()),
            format!("expected both export kinds, found {series} series and {traces} trace files"),
        ));
    }
    Ok(format!(
        "{series} series file(s), {traces} Chrome trace file(s) ({trace_events} events), \
         {critpaths} critpath attribution file(s), {hostprofs} hostprof profile(s), \
         {pipetraces} pipetrace export(s), {konatas} Konata trace(s), \
         and {flights} flight recording(s) valid"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcl_isa::ClusterId;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("mcl-obs-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn chrome_trace_events_carry_ph_ts_pid() {
        let mut ring = EventRing::new(16);
        ring.push(10, 3, Some(ClusterId::C0), EventKind::Distributed);
        ring.push(12, 3, Some(ClusterId::C1), EventKind::SlaveIssued);
        ring.push(13, 3, Some(ClusterId::C0), EventKind::MasterIssued);
        ring.push(20, 3, None, EventKind::Retired);
        let rendered = chrome_trace_json(&ring).render();
        // Parse what we just emitted and check the Chrome trace schema.
        let doc = Json::parse(&rendered).expect("export parses");
        let events = doc.get("traceEvents").and_then(Json::as_array).expect("array");
        // Four instants plus one lifetime span (dispatch + retire seen).
        assert_eq!(events.len(), 5);
        for e in events {
            assert!(e.get("ph").and_then(Json::as_str).is_some(), "ph present");
            assert!(e.get("ts").and_then(Json::as_f64).is_some(), "ts numeric");
            assert!(e.get("pid").and_then(Json::as_f64).is_some(), "pid numeric");
        }
        let span = events.last().unwrap();
        assert_eq!(span.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(span.get("ts").and_then(Json::as_u64), Some(10));
        assert_eq!(span.get("dur").and_then(Json::as_u64), Some(10));
        assert_eq!(span.get("tid").and_then(Json::as_u64), Some(3));
    }

    #[test]
    fn observe_cell_exports_validate_and_stats_stay_identical() {
        let dir = temp_dir("cell");
        let store = TraceStore::new();
        let settings = ObsSettings { dir: dir.clone(), sample_interval: 256 };
        let written = observe_cell(&store, Benchmark::Compress, 40, &settings).unwrap();
        assert_eq!(written, ["compress.series.json", "compress.trace.json"]);
        let summary = validate_dir(&dir).unwrap();
        assert!(summary.contains("1 series"), "{summary}");
        // Spot-check the series export round-trips through the parser.
        let doc = parse_file(&dir.join("compress.series.json")).unwrap();
        assert_eq!(doc.get("benchmark").and_then(Json::as_str), Some("compress"));
        assert_eq!(doc.get("sample_interval").and_then(Json::as_u64), Some(256));
        assert!(doc.get("cycles").and_then(Json::as_u64).unwrap() > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn validate_dir_rejects_missing_or_malformed_exports() {
        let dir = temp_dir("bad");
        assert!(validate_dir(&dir).is_err(), "empty dir has no exports");
        std::fs::write(dir.join("x.series.json"), "{\"schema_version\":99}").unwrap();
        std::fs::write(dir.join("x.trace.json"), "{\"traceEvents\":[]}").unwrap();
        assert!(validate_dir(&dir).is_err(), "wrong schema_version must fail");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn validate_dir_reports_every_invalid_export_not_just_the_first() {
        let dir = temp_dir("multi");
        std::fs::write(dir.join("a.konata"), "not a konata file").unwrap();
        std::fs::write(dir.join("b.pipetrace.json"), "{\"schema_version\":99}").unwrap();
        std::fs::write(dir.join("c.critpath.json"), "{").unwrap();
        let err = validate_dir(&dir).unwrap_err().to_string();
        assert!(err.contains("3 invalid export(s)"), "{err}");
        for name in ["a.konata", "b.pipetrace.json", "c.critpath.json"] {
            assert!(err.contains(name), "missing {name} in: {err}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
