//! `repro trend` — perf-trend analysis and regression gating over
//! `BENCH_repro.history.jsonl`.
//!
//! Every `scripts/ci.sh` run appends one schema-versioned JSON object
//! (see [`crate::microbench`]) to the history file. This module reads
//! the whole file back — tolerating the mixed schema versions a
//! long-lived history accumulates — groups runs by their benchmark
//! configuration `(divisor, shards)`, and compares the latest run of
//! each group against the noise band of all earlier runs:
//!
//! - throughput metrics (`ticked_cps`, `event_cps`, `sharded_cps`, the
//!   engine ratios, `skip_pct`) regress when they *fall* below the
//!   band;
//! - cost metrics (`warmup_seconds`, `max_divergence`,
//!   `profile_ns_per_cycle`) regress when they *rise* above it.
//!
//! The band is `max(2σ of the baseline, a metric-specific floor)` —
//! wall-clock throughput on shared CI hosts is noisy, so the floors
//! keep one slow run from crying wolf while a real 2× regression still
//! trips the gate.
//!
//! Older lines are **upgraded on read, never skipped**: schema 9
//! renamed `skipped_pct` to `skip_pct`, so the old key is aliased to
//! the new name for schema ≤ 8 lines (the schema-7 seed lines in the
//! repo's own history parse exactly this way), and metrics a version
//! simply did not record yet (`profile_ns_per_cycle` before 9) are
//! treated as absent rather than zero. Only unparseable lines are
//! skipped, each reported with its 1-based line number.
//!
//! `repro trend --gate` exits non-zero when any group regressed — the
//! CI hook.

use crate::json::Json;
use crate::microbench::HISTORY_SCHEMA_VERSION;
use crate::Error;

/// Oldest history schema `repro trend` can upgrade on read.
pub const TREND_MIN_SCHEMA: u64 = 7;

/// Direction and noise floors of one tracked metric.
struct MetricSpec {
    name: &'static str,
    /// `true` when larger values are better (throughput); `false` when
    /// smaller values are better (cost).
    higher_better: bool,
    /// Noise floor as a fraction of the baseline mean.
    rel_floor: f64,
    /// Noise floor in the metric's own units.
    abs_floor: f64,
}

/// Every metric the trend report tracks. Deterministic metrics get
/// tight floors; wall-clock ones get generous floors (shared CI hosts
/// jitter by tens of percent).
const METRICS: &[MetricSpec] = &[
    MetricSpec { name: "ticked_cps", higher_better: true, rel_floor: 0.30, abs_floor: 0.0 },
    MetricSpec { name: "event_cps", higher_better: true, rel_floor: 0.30, abs_floor: 0.0 },
    MetricSpec { name: "sharded_cps", higher_better: true, rel_floor: 0.30, abs_floor: 0.0 },
    MetricSpec { name: "event_over_ticked", higher_better: true, rel_floor: 0.25, abs_floor: 0.0 },
    MetricSpec { name: "sharded_over_event", higher_better: true, rel_floor: 0.25, abs_floor: 0.0 },
    // Deterministic: depends only on traces and fast-forward rules.
    MetricSpec { name: "skip_pct", higher_better: true, rel_floor: 0.02, abs_floor: 0.5 },
    MetricSpec { name: "warmup_seconds", higher_better: false, rel_floor: 0.50, abs_floor: 0.05 },
    MetricSpec { name: "max_divergence", higher_better: false, rel_floor: 0.25, abs_floor: 0.01 },
    MetricSpec {
        name: "profile_ns_per_cycle",
        higher_better: false,
        rel_floor: 0.40,
        abs_floor: 0.0,
    },
];

/// One parsed (and schema-upgraded) history line.
#[derive(Debug, Clone)]
struct Entry {
    divisor: u64,
    shards: u64,
    /// Metric values by [`METRICS`] index; `None` when the line's
    /// schema did not record the metric.
    values: Vec<Option<f64>>,
}

/// Reads one metric off a line, applying the cross-version aliases: a
/// schema ≤ 8 line's `skipped_pct` *is* `skip_pct` under its old name.
fn metric_value(line: &Json, schema: u64, name: &str) -> Option<f64> {
    if let Some(v) = line.get(name).and_then(Json::as_f64) {
        return Some(v);
    }
    if name == "skip_pct" && schema < 9 {
        return line.get("skipped_pct").and_then(Json::as_f64);
    }
    None
}

fn parse_entry(line: &str) -> Result<Entry, String> {
    let v = Json::parse(line)?;
    let schema = v
        .get("schema")
        .and_then(Json::as_u64)
        .ok_or_else(|| "`schema` is not an integer".to_owned())?;
    if !(TREND_MIN_SCHEMA..=HISTORY_SCHEMA_VERSION).contains(&schema) {
        return Err(format!(
            "schema {schema} outside supported range {TREND_MIN_SCHEMA}..={HISTORY_SCHEMA_VERSION}"
        ));
    }
    let field = |key: &str| {
        v.get(key).and_then(Json::as_u64).ok_or_else(|| format!("`{key}` is not an integer"))
    };
    Ok(Entry {
        divisor: field("divisor")?,
        shards: field("shards")?,
        values: METRICS.iter().map(|m| metric_value(&v, schema, m.name)).collect(),
    })
}

/// The verdict for one metric of one group.
#[derive(Debug, Clone)]
pub struct MetricTrend {
    /// Metric name (a history JSON key).
    pub name: &'static str,
    /// Mean of the baseline runs.
    pub baseline_mean: f64,
    /// Standard deviation of the baseline runs.
    pub baseline_std: f64,
    /// Number of baseline runs that recorded this metric.
    pub baseline_runs: usize,
    /// The latest run's value.
    pub latest: f64,
    /// Signed change from the baseline mean in percent; positive is an
    /// improvement in the metric's own direction.
    pub delta_pct: f64,
    /// How far past the noise band the latest run is, in band units
    /// (≤ 0 inside the band; > 1 means regressed).
    pub severity: f64,
    /// Whether the latest run regressed past the noise band.
    pub regressed: bool,
}

/// The trend of one `(divisor, shards)` group.
#[derive(Debug, Clone)]
pub struct GroupTrend {
    /// Benchmark scale divisor of every run in the group.
    pub divisor: u64,
    /// Shard count of every run in the group.
    pub shards: u64,
    /// Total runs in the group (baseline + latest).
    pub runs: usize,
    /// Per-metric verdicts, regressions first, worst first.
    pub metrics: Vec<MetricTrend>,
}

impl GroupTrend {
    /// Number of regressed metrics in this group.
    #[must_use]
    pub fn regressions(&self) -> usize {
        self.metrics.iter().filter(|m| m.regressed).count()
    }
}

/// The whole trend analysis.
#[derive(Debug, Clone)]
pub struct TrendReport {
    /// Parsed history lines.
    pub lines: usize,
    /// Per-configuration trends, in first-seen order.
    pub groups: Vec<GroupTrend>,
    /// Unusable lines as `(1-based line number, why)` — parse failures
    /// only; old schemas are upgraded, not skipped.
    pub skipped: Vec<(usize, String)>,
}

impl TrendReport {
    /// Total regressed metrics across all groups.
    #[must_use]
    pub fn regressions(&self) -> usize {
        self.groups.iter().map(GroupTrend::regressions).sum()
    }
}

fn mean_std(values: &[f64]) -> (f64, f64) {
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

fn judge(spec: &MetricSpec, baseline: &[f64], latest: f64) -> MetricTrend {
    let (mean, std) = mean_std(baseline);
    // Worse-ness in the metric's own direction: positive means the
    // latest run moved the wrong way.
    let worse = if spec.higher_better { mean - latest } else { latest - mean };
    let band = (2.0 * std).max(spec.rel_floor * mean.abs()).max(spec.abs_floor);
    let severity = if band > 0.0 { worse / band } else { 0.0 };
    let delta_pct = if mean.abs() > f64::EPSILON { -worse / mean.abs() * 100.0 } else { 0.0 };
    MetricTrend {
        name: spec.name,
        baseline_mean: mean,
        baseline_std: std,
        baseline_runs: baseline.len(),
        latest,
        delta_pct,
        severity,
        regressed: severity > 1.0,
    }
}

/// Analyzes a history file's content: parses and schema-upgrades every
/// line, groups runs by `(divisor, shards)`, and judges each group's
/// latest run against the noise band of its earlier runs. Groups with
/// fewer than two runs, and metrics with no baseline value (all-zero
/// baselines count as unrecorded — `sharded_cps` is 0 when the group
/// never sharded), produce no verdicts.
///
/// # Errors
///
/// [`Error::Obs`] when the content holds no parseable history line at
/// all — an empty trend is a broken pipeline, not a clean bill.
pub fn analyze(history: &str) -> Result<TrendReport, Error> {
    let mut entries: Vec<Entry> = Vec::new();
    let mut skipped = Vec::new();
    for (i, line) in history.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_entry(line.trim()) {
            Ok(e) => entries.push(e),
            Err(why) => skipped.push((i + 1, why)),
        }
    }
    if entries.is_empty() {
        return Err(Error::Obs(format!(
            "trend: no parseable history lines ({} skipped)",
            skipped.len()
        )));
    }
    // Group by configuration, preserving first-seen order.
    let mut keys: Vec<(u64, u64)> = Vec::new();
    for e in &entries {
        if !keys.contains(&(e.divisor, e.shards)) {
            keys.push((e.divisor, e.shards));
        }
    }
    let mut groups = Vec::new();
    for (divisor, shards) in keys {
        let runs: Vec<&Entry> =
            entries.iter().filter(|e| e.divisor == divisor && e.shards == shards).collect();
        let mut metrics = Vec::new();
        if let Some((latest, baseline)) = runs.split_last() {
            if !baseline.is_empty() {
                for (mi, spec) in METRICS.iter().enumerate() {
                    let base: Vec<f64> =
                        baseline.iter().filter_map(|e| e.values[mi]).collect();
                    let Some(latest_v) = latest.values[mi] else { continue };
                    if base.is_empty() || base.iter().all(|&v| v == 0.0) {
                        continue;
                    }
                    metrics.push(judge(spec, &base, latest_v));
                }
            }
        }
        metrics.sort_by(|a, b| {
            b.regressed
                .cmp(&a.regressed)
                .then(b.severity.total_cmp(&a.severity))
                .then(a.name.cmp(b.name))
        });
        groups.push(GroupTrend { divisor, shards, runs: runs.len(), metrics });
    }
    Ok(TrendReport { lines: entries.len(), groups, skipped })
}

fn format_value(name: &str, v: f64) -> String {
    if name.ends_with("_cps") && v >= 1e3 {
        if v >= 1e6 {
            format!("{:.1}M", v / 1e6)
        } else {
            format!("{:.0}k", v / 1e3)
        }
    } else {
        format!("{v:.3}")
    }
}

/// Renders the trend report, ranked: groups keep file order, metrics
/// within a group list regressions first (worst first). Ends with the
/// machine-parseable `trend: N regression(s) ...` line CI greps.
#[must_use]
pub fn render(report: &TrendReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Perf trend over {} history line(s), {} configuration group(s)\n",
        report.lines,
        report.groups.len()
    );
    for g in &report.groups {
        let _ = writeln!(out, "divisor={} shards={} ({} run(s))", g.divisor, g.shards, g.runs);
        if g.runs < 2 {
            let _ = writeln!(out, "  (single run — nothing to compare against yet)");
            continue;
        }
        for m in &g.metrics {
            let verdict = if m.regressed { "REGRESSED" } else { "ok" };
            let _ = writeln!(
                out,
                "  {verdict:<9} {:<20} latest {:>10}  baseline {:>10} ±{:<10} {:>+7.1}%",
                m.name,
                format_value(m.name, m.latest),
                format_value(m.name, m.baseline_mean),
                format_value(m.name, m.baseline_std),
                m.delta_pct,
            );
        }
    }
    for (line, why) in &report.skipped {
        let _ = writeln!(out, "warning: skipped history line {line}: {why}");
    }
    let _ = writeln!(
        out,
        "\ntrend: {} regression(s) across {} group(s) ({} line(s) skipped)",
        report.regressions(),
        report.groups.len(),
        report.skipped.len()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A schema-7/8 style line: `skipped_pct` under its old name, no
    /// `profile_ns_per_cycle`.
    fn old_line(schema: u64, unix: u64, event_cps: f64) -> String {
        format!(
            "{{\"schema\":{schema},\"unix_seconds\":{unix},\"divisor\":8,\"shards\":4,\
             \"cycles\":1000000,\"ticked_cps\":2000000,\"event_cps\":{event_cps:.0},\
             \"sharded_cps\":16000000,\"event_over_ticked\":4.0,\"sharded_over_event\":2.0,\
             \"skipped_pct\":61.0,\"warmup_seconds\":0.01,\"max_divergence\":0.004}}"
        )
    }

    fn new_line(unix: u64, event_cps: f64, prof: f64) -> String {
        format!(
            "{{\"schema\":9,\"unix_seconds\":{unix},\"divisor\":8,\"shards\":4,\
             \"cycles\":1000000,\"ticked_cps\":2000000,\"event_cps\":{event_cps:.0},\
             \"sharded_cps\":16000000,\"event_over_ticked\":4.0,\"sharded_over_event\":2.0,\
             \"skip_pct\":61.0,\"warmup_seconds\":0.01,\"max_divergence\":0.004,\
             \"profile_ns_per_cycle\":{prof:.1}}}"
        )
    }

    #[test]
    fn mixed_schema_history_upgrades_and_passes_when_stable() {
        let history = format!(
            "{}\n{}\n{}\n{}\n",
            old_line(7, 1, 8_000_000.0),
            old_line(8, 2, 8_100_000.0),
            new_line(3, 7_900_000.0, 120.0),
            new_line(4, 8_050_000.0, 118.0),
        );
        let report = analyze(&history).unwrap();
        assert_eq!(report.lines, 4, "schema 7 and 8 lines are parsed, not skipped");
        assert!(report.skipped.is_empty(), "{:?}", report.skipped);
        assert_eq!(report.groups.len(), 1);
        let g = &report.groups[0];
        assert_eq!((g.divisor, g.shards, g.runs), (8, 4, 4));
        assert_eq!(report.regressions(), 0, "{}", render(&report));
        // The aliased skip_pct metric must have a full 3-run baseline —
        // proof the old `skipped_pct` values were upgraded, not dropped.
        let skip = g.metrics.iter().find(|m| m.name == "skip_pct").expect("skip_pct tracked");
        assert_eq!(skip.baseline_runs, 3);
        // profile_ns_per_cycle only exists on schema-9 lines; its
        // baseline is just the one earlier v9 run.
        let prof = g
            .metrics
            .iter()
            .find(|m| m.name == "profile_ns_per_cycle")
            .expect("profile metric tracked once two v9 lines exist");
        assert_eq!(prof.baseline_runs, 1);
        let rendered = render(&report);
        assert!(rendered.contains("trend: 0 regression(s)"), "{rendered}");
    }

    #[test]
    fn injected_regression_is_flagged_and_ranked_first() {
        // Stable baseline, then the latest run loses half its event
        // throughput and triples its per-cycle host cost.
        let history = format!(
            "{}\n{}\n{}\n{}\n",
            old_line(7, 1, 8_000_000.0),
            new_line(2, 8_100_000.0, 120.0),
            new_line(3, 7_950_000.0, 122.0),
            new_line(4, 4_000_000.0, 360.0),
        );
        let report = analyze(&history).unwrap();
        assert!(report.regressions() >= 2, "{}", render(&report));
        let g = &report.groups[0];
        assert!(g.metrics[0].regressed, "regressions rank first");
        let event = g.metrics.iter().find(|m| m.name == "event_cps").unwrap();
        assert!(event.regressed, "halved throughput trips the gate");
        assert!(event.delta_pct < -40.0, "delta is signed: {}", event.delta_pct);
        let prof = g.metrics.iter().find(|m| m.name == "profile_ns_per_cycle").unwrap();
        assert!(prof.regressed, "tripled host cost trips the gate");
        // Stable metrics stay green even next to regressions.
        let skip = g.metrics.iter().find(|m| m.name == "skip_pct").unwrap();
        assert!(!skip.regressed);
        let rendered = render(&report);
        assert!(rendered.contains("REGRESSED event_cps"), "{rendered}");
    }

    #[test]
    fn noise_band_tolerates_host_jitter() {
        // ±10% wall-clock jitter must not read as a regression.
        let history = format!(
            "{}\n{}\n{}\n",
            new_line(1, 8_000_000.0, 120.0),
            new_line(2, 8_800_000.0, 110.0),
            new_line(3, 7_400_000.0, 131.0),
        );
        let report = analyze(&history).unwrap();
        assert_eq!(report.regressions(), 0, "{}", render(&report));
    }

    #[test]
    fn unparseable_lines_are_skipped_with_numbers_but_analysis_continues() {
        let history = format!(
            "not json\n{}\n{{\"schema\":3,\"divisor\":8}}\n{}\n",
            new_line(1, 8_000_000.0, 120.0),
            new_line(2, 8_000_000.0, 120.0),
        );
        let report = analyze(&history).unwrap();
        assert_eq!(report.lines, 2);
        assert_eq!(report.skipped.len(), 2);
        assert_eq!(report.skipped[0].0, 1);
        assert_eq!(report.skipped[1].0, 3);
        assert!(report.skipped[1].1.contains("outside supported range"), "{:?}", report.skipped);
        let rendered = render(&report);
        assert!(rendered.contains("skipped history line 1"), "{rendered}");
    }

    #[test]
    fn empty_or_all_garbage_history_is_an_error() {
        assert!(analyze("").is_err());
        assert!(analyze("junk\nmore junk\n").is_err());
    }

    #[test]
    fn single_run_groups_and_unsharded_zeros_produce_no_verdicts() {
        // One run in its group: nothing to compare. A second group with
        // sharded_cps pinned to zero must not judge that metric.
        let solo = new_line(1, 8_000_000.0, 120.0);
        let unsharded = "{\"schema\":9,\"unix_seconds\":2,\"divisor\":16,\"shards\":1,\
                         \"cycles\":1000,\"ticked_cps\":100,\"event_cps\":500,\
                         \"sharded_cps\":0,\"event_over_ticked\":5.0,\"sharded_over_event\":0.0,\
                         \"skip_pct\":60.0,\"warmup_seconds\":0.0,\"max_divergence\":0.0,\
                         \"profile_ns_per_cycle\":100.0}";
        let history = format!("{solo}\n{unsharded}\n{unsharded}\n");
        let report = analyze(&history).unwrap();
        assert_eq!(report.groups.len(), 2);
        assert!(report.groups[0].metrics.is_empty(), "solo group has no verdicts");
        let g1 = &report.groups[1];
        assert!(!g1.metrics.iter().any(|m| m.name == "sharded_cps"), "all-zero metric skipped");
        assert!(g1.metrics.iter().any(|m| m.name == "event_cps"));
        assert_eq!(report.regressions(), 0);
    }
}
