//! Table 2: speedup ratios of the dual-cluster processor against the
//! single-cluster processor.

use mcl_core::{speedup_percent, SimStats};
use mcl_workloads::Benchmark;

use crate::runner::CellCost;
use crate::{run_all_configs_with, Error, TraceStore};

/// One row of Table 2, with the measurements behind it.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Benchmark name.
    pub name: String,
    /// Cycles of the native binary on the single-cluster processor.
    pub single_cycles: u64,
    /// Cycles of the native binary on the dual-cluster processor.
    pub dual_none_cycles: u64,
    /// Cycles of the local-scheduler binary on the dual-cluster
    /// processor.
    pub dual_local_cycles: u64,
    /// Measured Table 2 "none" percentage
    /// (`100 - 100 × C_dual / C_single`; negative = slowdown).
    pub none_pct: f64,
    /// Measured Table 2 "local" percentage.
    pub local_pct: f64,
    /// The paper's published `(none, local)` percentages.
    pub paper: (i32, i32),
    /// Full statistics of the three runs (single, dual-none, dual-local).
    pub stats: (SimStats, SimStats, SimStats),
}

/// Runs one benchmark at a given scale and produces its Table 2 row.
///
/// # Errors
///
/// Propagates scheduling/trace/simulation failures.
pub fn table2_row(bench: Benchmark, scale: u32) -> Result<Table2Row, Error> {
    Ok(table2_row_with(&TraceStore::new(), bench, scale)?.0)
}

/// [`table2_row`] routed through a shared [`TraceStore`], also returning
/// the cell cost.
///
/// # Errors
///
/// Propagates scheduling/trace/simulation failures.
pub fn table2_row_with(
    store: &TraceStore,
    bench: Benchmark,
    scale: u32,
) -> Result<(Table2Row, CellCost), Error> {
    let ((single, dual_none, dual_local), cost) = run_all_configs_with(store, bench, scale)?;
    let row = Table2Row {
        name: bench.name().to_owned(),
        single_cycles: single.cycles,
        dual_none_cycles: dual_none.cycles,
        dual_local_cycles: dual_local.cycles,
        none_pct: speedup_percent(dual_none.cycles, single.cycles),
        local_pct: speedup_percent(dual_local.cycles, single.cycles),
        paper: bench.paper_table2(),
        stats: (single, dual_none, dual_local),
    };
    Ok((row, cost))
}

/// Runs the full Table 2 at each benchmark's default scale (or scaled by
/// `scale_divisor` for quick runs), sharing one trace store across the
/// rows.
///
/// # Errors
///
/// Propagates the first benchmark failure.
pub fn table2(scale_divisor: u32) -> Result<Vec<Table2Row>, Error> {
    table2_filtered(scale_divisor, None)
}

/// Like [`table2`] but optionally restricted to one benchmark by name.
///
/// # Errors
///
/// Propagates the first benchmark failure.
pub fn table2_filtered(
    scale_divisor: u32,
    only: Option<&str>,
) -> Result<Vec<Table2Row>, Error> {
    let store = TraceStore::new();
    Benchmark::ALL
        .iter()
        .filter(|b| only.is_none_or(|name| b.name() == name))
        .map(|&b| {
            let scale = (b.default_scale() / scale_divisor.max(1)).max(1);
            Ok(table2_row_with(&store, b, scale)?.0)
        })
        .collect()
}

/// Renders Table 2 in the paper's layout, with measured-vs-paper columns.
#[must_use]
pub fn render(rows: &[Table2Row]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 2: speedup ratios 100 - 100 x (C_dual / C_single); negative = slowdown\n"
    );
    let _ = writeln!(
        out,
        "{:<10} {:>12} {:>12} | {:>12} {:>12} | {:>10} {:>10}",
        "benchmark", "none (meas)", "local (meas)", "none (paper)", "local (paper)", "C_single", "C_dual(loc)"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<10} {:>11.1}% {:>11.1}% | {:>11}% {:>12}% | {:>10} {:>10}",
            r.name, r.none_pct, r.local_pct, r.paper.0, r.paper.1, r.single_cycles, r.dual_local_cycles
        );
    }
    out
}

/// Renders the secondary statistics the paper's Section 4.2 discusses
/// (dual-distribution fraction, replays, prediction, cache behaviour).
#[must_use]
pub fn render_details(rows: &[Table2Row]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:>6} {:>10} {:>10} {:>9} {:>9} {:>9} {:>9}",
        "benchmark", "run", "dual-dist", "replays", "mispred", "d$miss", "IPC", "disorder"
    );
    for r in rows {
        for (label, s) in
            [("single", &r.stats.0), ("none", &r.stats.1), ("local", &r.stats.2)]
        {
            let _ = writeln!(
                out,
                "{:<10} {:>6} {:>9.1}% {:>10} {:>8.2}% {:>8.2}% {:>9.2} {:>9}",
                r.name,
                label,
                s.dual_fraction() * 100.0,
                s.replays,
                s.mispredict_rate() * 100.0,
                s.dcache.miss_rate() * 100.0,
                s.ipc(),
                s.issue_disorder,
            );
        }
    }
    out
}
