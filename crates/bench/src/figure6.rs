//! Figure 6: the paper's example control-flow graph and the local
//! scheduler's walk over it.

use std::collections::HashMap;

use mcl_sched::{LocalScheduler, Partition, PartitionConfig};
use mcl_trace::{Profile, Program, ProgramBuilder, Vreg};

/// The Figure 6 program: live-range names, the program, and the
/// profiled execution estimates from the figure (20, 10, 10, 100, 20).
#[derive(Debug, Clone)]
pub struct Figure6 {
    /// The intermediate-language program.
    pub program: Program<Vreg>,
    /// The paper's live-range names (`C`, `E`, `G`, `H`, `S`, `A`, `B`,
    /// `D`) mapped to their live ranges.
    pub names: HashMap<char, Vreg>,
    /// The figure's per-block execution estimates.
    pub profile: Profile,
}

/// Builds the Figure 6 control-flow graph.
///
/// `S` (the figure's global-register candidate) is designated global;
/// compound expressions like `G = [S] + E` are encoded with an explicit
/// load followed by the add, which leaves the figure's traversal and
/// assignment orders unchanged.
#[must_use]
pub fn build() -> Figure6 {
    let mut b = ProgramBuilder::new("figure6");
    let c = b.vreg_int("C");
    let e = b.vreg_int("E");
    let g = b.vreg_int("G");
    let h = b.vreg_int("H");
    let s = b.vreg_int("S");
    let a = b.vreg_int("A");
    let bb = b.vreg_int("B");
    let d = b.vreg_int("D");
    b.designate_global_candidate(s);
    b.reg_init(s, 0x8000);

    let bb2 = b.new_block("bb2");
    let bb3 = b.new_block("bb3");
    let bb4 = b.new_block("bb4");
    let bb5 = b.new_block("bb5");

    // bb1: 1: C = 0        2: E = 16
    b.lda(c, 0);
    b.lda(e, 16);
    // bb2: 3: G = [S] + 8  4: H = [S] + 4
    b.switch_to(bb2);
    b.ldq(g, s, 8);
    b.ldq(h, s, 0);
    // bb3: 5: G = [S] + E  6: H = [S] + 12  7: S = H + E
    b.switch_to(bb3);
    b.ldq(g, s, 0);
    b.addq(g, g, e);
    b.ldq(h, s, 16);
    b.addq(s, h, e);
    // bb4: 8: A = G + 10   9: B = A x A   10: G = B / H   11: C = G + C
    b.switch_to(bb4);
    b.addq_imm(a, g, 10);
    b.mulq(bb, a, a);
    b.addq(g, bb, h); // stands in for the divide (no integer divide unit)
    b.addq(c, g, c);
    // bb5: 12: D = C + G
    b.switch_to(bb5);
    b.addq(d, c, g);

    let program = b.finish().expect("figure 6 program is well formed");
    let profile = Profile::from_counts(vec![20, 10, 10, 100, 20]);
    let names = HashMap::from([
        ('C', c),
        ('E', e),
        ('G', g),
        ('H', h),
        ('S', s),
        ('A', a),
        ('B', bb),
        ('D', d),
    ]);
    Figure6 { program, names, profile }
}

/// Runs the local scheduler over Figure 6 and returns the partition.
#[must_use]
pub fn partition(fig: &Figure6) -> Partition {
    LocalScheduler::new(PartitionConfig::default()).partition(&fig.program, &fig.profile)
}

/// Renders the walkthrough: traversal order, assignment order, final
/// clusters.
#[must_use]
pub fn render() -> String {
    use std::fmt::Write as _;
    let fig = build();
    let part = partition(&fig);
    let reverse: HashMap<Vreg, char> = fig.names.iter().map(|(&ch, &v)| (v, ch)).collect();

    let mut out = String::new();
    let _ = writeln!(out, "Figure 6: local-scheduler walkthrough\n");
    let _ = writeln!(out, "block execution estimates: 20, 10, 10, 100, 20");
    let _ = writeln!(out, "expected traversal order:  bb4, bb1, bb5, bb3, bb2");
    let order: Vec<String> = part
        .assignment_order
        .iter()
        .map(|v| reverse.get(v).map_or_else(|| v.to_string(), char::to_string))
        .collect();
    let _ = writeln!(out, "assignment order:          {}", order.join(", "));
    let _ = writeln!(out, "(paper: C, G, B, A, E, D, H; S is a global candidate)\n");
    for ch in ['A', 'B', 'C', 'D', 'E', 'G', 'H', 'S'] {
        let v = fig.names[&ch];
        let where_ = if part.is_global(v) {
            "global".to_owned()
        } else {
            part.cluster_of(v).map_or_else(|| "?".to_owned(), |c| c.to_string())
        };
        let _ = writeln!(out, "  live range {ch}: {where_}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_order_matches_the_paper() {
        let fig = build();
        let part = partition(&fig);
        let expect: Vec<Vreg> =
            ['C', 'G', 'B', 'A', 'E', 'D', 'H'].iter().map(|ch| fig.names[ch]).collect();
        assert_eq!(part.assignment_order, expect);
    }

    #[test]
    fn render_reports_every_live_range() {
        let s = render();
        for ch in ['A', 'B', 'C', 'D', 'E', 'G', 'H', 'S'] {
            assert!(s.contains(&format!("live range {ch}:")));
        }
        assert!(s.contains("global"));
    }
}
