//! Benchmark harness: regenerates every table and figure of the paper.
//!
//! - [`table1`] — prints the issue rules and latencies (Table 1) from
//!   the live configuration structs.
//! - [`table2`](mod@table2) — the headline experiment: percentage speedup/slowdown
//!   of the dual-cluster processor against the single-cluster processor
//!   for the native binary ("none") and the local-scheduler binary, six
//!   benchmarks (Table 2).
//! - [`scenarios`] — cycle-by-cycle timelines of the five dual-execution
//!   scenarios (Figures 2–5).
//! - [`figure6`] — the local scheduler's traversal and assignment order
//!   on the paper's example control-flow graph (Figure 6).
//! - [`crossover`] — the Palacharla cycle-time analysis (Sections 4.2
//!   and 5): net run time at 0.35 µm and 0.18 µm.
//! - [`ablate`] — parameter sweeps the paper discusses in prose:
//!   transfer-buffer sizing, the imbalance threshold, dispatch-queue
//!   size, global-register designation, and issue width.
//! - [`runner`] — the parallel experiment driver: expands experiments
//!   into independent cells, runs them on a scoped worker pool, and
//!   collects deterministically so `--jobs N` output is byte-identical
//!   to a serial run. Writes `BENCH_repro.json` (see [`json`]).
//! - [`obs`] — the `--obs` exports: per-cell interval-sampled time
//!   series, latency histograms, and Chrome trace-event files from an
//!   instrumented companion simulation, plus `repro obs-validate`.
//! - [`explain`] — `repro explain`: exact critical-path cycle-loss
//!   attribution of each Table 2 cell (`<bench>.critpath.json` plus a
//!   rendered per-cause report), optionally differential against the
//!   single-cluster or dual-native baseline.
//! - [`pipetrace`] — `repro pipetrace`: per-instruction pipeline
//!   lifecycle exports of each Table 2 cell (a Konata-compatible
//!   `<bench>.konata` text trace plus `<bench>.pipetrace.json` with the
//!   inter-cluster dataflow edge list), optionally differential with
//!   per-op retire slips against a baseline, under a retire-exactness
//!   identity.
//! - [`profile`] — `repro profile`: host-side phase-cost attribution of
//!   the live-cycle loop (`<bench>.hostprof.json` plus a ranked
//!   ns-per-live-cycle report), with a sum-to-elapsed identity check.
//! - [`flight`] — the `--flight FILE` whole-run host flight recorder:
//!   one Chrome trace of cell scheduling, store and persist I/O, and
//!   shard worker occupancy across the entire invocation.
//! - [`trend`] — `repro trend`: per-metric deltas and noise-banded
//!   regression detection over `BENCH_repro.history.jsonl`, with
//!   `--gate` for CI.
//!
//! Everything here is a library so the `repro` binary and the criterion
//! benches share one implementation.

use std::fmt;

use mcl_core::{Processor, ProcessorConfig, SimError, SimStats};
use mcl_isa::assign::RegisterAssignment;
use mcl_sched::{ScheduleError, ScheduleOptions, SchedulePipeline, SchedulerKind};
use mcl_trace::{vm::trace_program, Program, TraceOp, VmError, Vreg};
use mcl_workloads::Benchmark;

pub mod ablate;
pub mod chaos;
pub mod explain;
pub mod figure6;
pub mod flight;
pub mod json;
pub mod microbench;
pub mod obs;
pub mod persist;
pub mod pipetrace;
pub mod profile;
pub mod runner;
pub mod scenarios;
pub mod selftest;
pub mod store;
pub mod table1;
pub mod table2;
pub mod trend;

pub use persist::{PersistCounters, PersistStore};
pub use store::{SimProduct, TracePhases, TraceRequest, TraceStore};
pub use table2::{table2, table2_row, Table2Row};

/// Harness errors.
#[derive(Debug)]
pub enum Error {
    /// Scheduling failed.
    Schedule(ScheduleError),
    /// Trace generation failed.
    Vm(VmError),
    /// Simulation failed.
    Sim(SimError),
    /// A memoized build in the shared [`TraceStore`] failed (the
    /// underlying error, rendered — cached failures are served to every
    /// waiter).
    Store(String),
    /// A cell panicked on its worker thread; the panic was caught by the
    /// [`runner`] so the remaining cells could finish.
    Panic {
        /// The id of the panicking cell.
        cell: String,
        /// The panic payload, rendered.
        message: String,
    },
    /// A differential or fault-injection self-check found the harness
    /// disagreeing with itself (see [`selftest`]).
    SelfCheck(String),
    /// An observability export or validation failed (see [`obs`]).
    Obs(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Schedule(e) => write!(f, "scheduling: {e}"),
            Error::Vm(e) => write!(f, "trace generation: {e}"),
            Error::Sim(e) => write!(f, "simulation: {e}"),
            Error::Store(e) => write!(f, "trace store: {e}"),
            Error::Panic { cell, message } => write!(f, "cell `{cell}` panicked: {message}"),
            Error::SelfCheck(e) => write!(f, "self-check: {e}"),
            Error::Obs(e) => write!(f, "observability: {e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<ScheduleError> for Error {
    fn from(e: ScheduleError) -> Error {
        Error::Schedule(e)
    }
}

impl From<VmError> for Error {
    fn from(e: VmError) -> Error {
        Error::Vm(e)
    }
}

impl From<SimError> for Error {
    fn from(e: SimError) -> Error {
        Error::Sim(e)
    }
}

/// Schedules an IL program with the given scheduler and register
/// assignment and returns the machine trace.
///
/// # Errors
///
/// Propagates scheduling and trace-generation failures.
pub fn schedule_and_trace(
    il: &Program<Vreg>,
    kind: SchedulerKind,
    assignment: &RegisterAssignment,
    options: Option<ScheduleOptions>,
) -> Result<Vec<TraceOp>, Error> {
    let mut pipeline = SchedulePipeline::new(kind, assignment);
    if let Some(options) = options {
        pipeline = pipeline.with_options(options);
    }
    let scheduled = pipeline.run(il)?;
    let (trace, _) = trace_program(&scheduled.program)?;
    Ok(trace)
}

/// Runs a trace on a processor configuration.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn simulate(config: &ProcessorConfig, trace: &[TraceOp]) -> Result<SimStats, Error> {
    Ok(Processor::new(config.clone()).run_trace(trace)?.stats)
}

/// The three runs behind one Table 2 row: the native binary on the
/// single-cluster machine, the native binary on the dual-cluster
/// machine, and the local-scheduler binary on the dual-cluster machine.
///
/// # Errors
///
/// Propagates scheduling/trace/simulation failures.
pub fn run_all_configs(
    bench: Benchmark,
    scale: u32,
) -> Result<(SimStats, SimStats, SimStats), Error> {
    let (stats, _) = run_all_configs_with(&TraceStore::new(), bench, scale)?;
    Ok(stats)
}

/// [`run_all_configs`] routed through a shared [`TraceStore`], also
/// returning the cell cost (cycles of all three runs plus the
/// build/simulate wall-time split).
///
/// # Errors
///
/// Propagates scheduling/trace/simulation failures.
pub fn run_all_configs_with(
    store: &TraceStore,
    bench: Benchmark,
    scale: u32,
) -> Result<((SimStats, SimStats, SimStats), runner::CellCost), Error> {
    // The paper compiles ONE native binary (no cluster knowledge) and
    // runs it on both machines; the rescheduled binary runs on the dual.
    let native = TraceRequest::new(bench, scale, SchedulerKind::Naive);
    let local = TraceRequest::new(bench, scale, SchedulerKind::Local);

    let mut cost = runner::CellCost::default();
    let single = store.sim(&native, &ProcessorConfig::single_cluster_8way())?;
    let dual_none = store.sim(&native, &ProcessorConfig::dual_cluster_8way())?;
    let dual_local = store.sim(&local, &ProcessorConfig::dual_cluster_8way())?;
    for product in [&single, &dual_none, &dual_local] {
        cost.charge_sim(product);
    }
    Ok(((single.stats, dual_none.stats, dual_local.stats), cost))
}

/// The cycle-time crossover analysis of Sections 4.2 and 5.
pub mod crossover {
    use mcl_core::delay::{breakeven_slowdown, net_runtime_ratio, FeatureSize};

    use crate::table2::Table2Row;

    /// One row of the crossover report.
    #[derive(Debug, Clone)]
    pub struct CrossoverRow {
        /// Benchmark name.
        pub name: String,
        /// Cycle ratio `C_dual(local) / C_single`.
        pub cycle_ratio: f64,
        /// Net run-time ratio at 0.35 µm (< 1 means the multicluster
        /// machine wins in wall time).
        pub runtime_035: f64,
        /// Net run-time ratio at 0.18 µm.
        pub runtime_018: f64,
    }

    /// Computes the crossover rows from measured Table 2 rows.
    #[must_use]
    pub fn from_table2(rows: &[Table2Row]) -> Vec<CrossoverRow> {
        rows.iter()
            .map(|r| CrossoverRow {
                name: r.name.clone(),
                cycle_ratio: r.dual_local_cycles as f64 / r.single_cycles as f64,
                runtime_035: net_runtime_ratio(
                    r.dual_local_cycles,
                    r.single_cycles,
                    FeatureSize::F0_35um,
                ),
                runtime_018: net_runtime_ratio(
                    r.dual_local_cycles,
                    r.single_cycles,
                    FeatureSize::F0_18um,
                ),
            })
            .collect()
    }

    /// Renders the report, including the break-even slowdowns.
    #[must_use]
    pub fn render(rows: &[CrossoverRow]) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Cycle-time crossover (Palacharla delay model; runtime ratio < 1 means the\nmulticluster processor is faster in wall time despite more cycles)\n"
        );
        let _ = writeln!(
            out,
            "{:<10} {:>12} {:>16} {:>16}",
            "benchmark", "cycle ratio", "runtime @0.35um", "runtime @0.18um"
        );
        for r in rows {
            let _ = writeln!(
                out,
                "{:<10} {:>12.3} {:>16.3} {:>16.3}",
                r.name, r.cycle_ratio, r.runtime_035, r.runtime_018
            );
        }
        let _ = writeln!(
            out,
            "\nbreak-even cycle slowdown: {:.2}x at 0.35um, {:.2}x at 0.18um",
            breakeven_slowdown(FeatureSize::F0_35um),
            breakeven_slowdown(FeatureSize::F0_18um),
        );
        out
    }
}
