//! Ablation sweeps over the design parameters the paper discusses in
//! prose: transfer-buffer sizing (replay pressure, Section 2.1), the
//! local scheduler's imbalance threshold (Section 3.5), dispatch-queue
//! size (the compress anomaly, Section 4.2), global-register
//! designation (Section 3.1 step 3), and issue width (Section 4).

use mcl_core::{speedup_percent, ProcessorConfig};
use mcl_isa::assign::RegisterAssignment;
use mcl_sched::{unroll_self_loops, ScheduleOptions, SchedulerKind};
use mcl_workloads::Benchmark;

use crate::{schedule_and_trace, simulate, Error};

/// One point of a one-dimensional sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The swept parameter's value.
    pub param: u64,
    /// Simulated cycles.
    pub cycles: u64,
    /// Replay exceptions taken.
    pub replays: u64,
    /// Dual-distributed fraction (percent).
    pub dual_pct: f64,
    /// Data-cache miss rate (percent).
    pub dcache_miss_pct: f64,
    /// Branch misprediction rate (percent).
    pub mispredict_pct: f64,
}

fn point(param: u64, stats: &mcl_core::SimStats) -> SweepPoint {
    SweepPoint {
        param,
        cycles: stats.cycles,
        replays: stats.replays,
        dual_pct: stats.dual_fraction() * 100.0,
        dcache_miss_pct: stats.dcache.miss_rate() * 100.0,
        mispredict_pct: stats.mispredict_rate() * 100.0,
    }
}

/// A1 — transfer-buffer sizing: dual-cluster cycles and replay count as
/// the operand/result buffers shrink and grow.
///
/// # Errors
///
/// Propagates harness failures.
pub fn buffers(bench: Benchmark, scale: u32, sizes: &[u32]) -> Result<Vec<SweepPoint>, Error> {
    let il = bench.build(scale);
    let assign = RegisterAssignment::even_odd_with_default_globals(2);
    let trace = schedule_and_trace(&il, SchedulerKind::Local, &assign, None)?;
    sizes
        .iter()
        .map(|&size| {
            let mut cfg = ProcessorConfig::dual_cluster_8way();
            cfg.operand_buffer = size;
            cfg.result_buffer = size;
            let stats = simulate(&cfg, &trace)?;
            Ok(point(u64::from(size), &stats))
        })
        .collect()
}

/// A2 — the local scheduler's imbalance threshold.
///
/// # Errors
///
/// Propagates harness failures.
pub fn threshold(
    bench: Benchmark,
    scale: u32,
    thresholds: &[f64],
) -> Result<Vec<SweepPoint>, Error> {
    let il = bench.build(scale);
    let assign = RegisterAssignment::even_odd_with_default_globals(2);
    let cfg = ProcessorConfig::dual_cluster_8way();
    thresholds
        .iter()
        .map(|&th| {
            let options = ScheduleOptions { imbalance_threshold: th, ..Default::default() };
            let trace = schedule_and_trace(&il, SchedulerKind::Local, &assign, Some(options))?;
            let stats = simulate(&cfg, &trace)?;
            Ok(point(th as u64, &stats))
        })
        .collect()
}

/// A3 — dispatch-queue size on the *single-cluster* machine: the
/// mechanism behind the paper's compress anomaly (a larger queue admits
/// staler predictions and more issue disorder).
///
/// # Errors
///
/// Propagates harness failures.
pub fn dq_single(bench: Benchmark, scale: u32, sizes: &[u32]) -> Result<Vec<SweepPoint>, Error> {
    let il = bench.build(scale);
    let assign = RegisterAssignment::even_odd_with_default_globals(2);
    let trace = schedule_and_trace(&il, SchedulerKind::Naive, &assign, None)?;
    sizes
        .iter()
        .map(|&size| {
            let mut cfg = ProcessorConfig::single_cluster_8way();
            cfg.dq_entries = size;
            let stats = simulate(&cfg, &trace)?;
            Ok(point(u64::from(size), &stats))
        })
        .collect()
}

/// A4 — global-register designation on/off: Table 2 "local" percentage
/// with the designation (SP/GP global) versus all-local.
///
/// # Errors
///
/// Propagates harness failures.
pub fn globals(bench: Benchmark, scale: u32) -> Result<(SweepPoint, SweepPoint), Error> {
    let il = bench.build(scale);
    let assign = RegisterAssignment::even_odd_with_default_globals(2);
    let cfg = ProcessorConfig::dual_cluster_8way();
    let with = simulate(&cfg, &schedule_and_trace(&il, SchedulerKind::Local, &assign, None)?)?;
    let without =
        simulate(&cfg, &schedule_and_trace(&il, SchedulerKind::LocalNoGlobals, &assign, None)?)?;
    Ok((point(1, &with), point(0, &without)))
}

/// A5 — issue width: the four-way single-cluster machine against its
/// 2 × 2-way dual-cluster counterpart (the paper evaluated both widths).
///
/// Returns `(single4_cycles, dual2_none_pct, dual2_local_pct)`.
///
/// # Errors
///
/// Propagates harness failures.
pub fn width4(bench: Benchmark, scale: u32) -> Result<(u64, f64, f64), Error> {
    let il = bench.build(scale);
    let assign = RegisterAssignment::even_odd_with_default_globals(2);
    let native = schedule_and_trace(&il, SchedulerKind::Naive, &assign, None)?;
    let local = schedule_and_trace(&il, SchedulerKind::Local, &assign, None)?;
    let single = simulate(&ProcessorConfig::single_cluster_4way(), &native)?;
    let dual_none = simulate(&ProcessorConfig::dual_cluster_4way(), &native)?;
    let dual_local = simulate(&ProcessorConfig::dual_cluster_4way(), &local)?;
    Ok((
        single.cycles,
        speedup_percent(dual_none.cycles, single.cycles),
        speedup_percent(dual_local.cycles, single.cycles),
    ))
}

/// A6 — loop unrolling (the paper's Section 6 future work): the
/// dual-cluster/local-scheduler cycles as the benchmark's self-loops are
/// unrolled, letting the partitioner place different iterations on
/// different clusters.
///
/// # Errors
///
/// Propagates harness failures.
pub fn unroll(bench: Benchmark, scale: u32, factors: &[u32]) -> Result<Vec<SweepPoint>, Error> {
    let il = bench.build(scale);
    let assign = RegisterAssignment::even_odd_with_default_globals(2);
    let cfg = ProcessorConfig::dual_cluster_8way();
    factors
        .iter()
        .map(|&factor| {
            let unrolled = unroll_self_loops(&il, factor);
            let trace = schedule_and_trace(&unrolled, SchedulerKind::Local, &assign, None)?;
            let stats = simulate(&cfg, &trace)?;
            Ok(point(u64::from(factor), &stats))
        })
        .collect()
}

/// B1 — scheduler comparison: dual-cluster cycles under each
/// partitioning strategy (the native cluster-blind binary, round-robin,
/// the historic int/fp bank split, and the paper's local scheduler).
///
/// Returns `(kind name, cycles, dual fraction %)` per scheduler.
///
/// # Errors
///
/// Propagates harness failures.
pub fn schedulers(bench: Benchmark, scale: u32) -> Result<Vec<(String, u64, f64)>, Error> {
    let il = bench.build(scale);
    let assign = RegisterAssignment::even_odd_with_default_globals(2);
    let cfg = ProcessorConfig::dual_cluster_8way();
    [
        SchedulerKind::Naive,
        SchedulerKind::RoundRobin,
        SchedulerKind::BankSplit,
        SchedulerKind::Local,
    ]
    .into_iter()
    .map(|kind| {
        let trace = schedule_and_trace(&il, kind, &assign, None)?;
        let stats = simulate(&cfg, &trace)?;
        Ok((format!("{kind:?}"), stats.cycles, stats.dual_fraction() * 100.0))
    })
    .collect()
}

/// Renders a sweep as a table.
#[must_use]
pub fn render_sweep(title: &str, param_name: &str, points: &[SweepPoint]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{title}\n");
    let _ = writeln!(
        out,
        "{:<10} {:>10} {:>9} {:>9} {:>9} {:>9}",
        param_name, "cycles", "replays", "dual%", "d$miss%", "mispred%"
    );
    for p in points {
        let _ = writeln!(
            out,
            "{:<10} {:>10} {:>9} {:>9.1} {:>9.2} {:>9.2}",
            p.param, p.cycles, p.replays, p.dual_pct, p.dcache_miss_pct, p.mispredict_pct
        );
    }
    out
}
