//! Ablation sweeps over the design parameters the paper discusses in
//! prose: transfer-buffer sizing (replay pressure, Section 2.1), the
//! local scheduler's imbalance threshold (Section 3.5), dispatch-queue
//! size (the compress anomaly, Section 4.2), global-register
//! designation (Section 3.1 step 3), and issue width (Section 4).
//!
//! Every sweep routes through a shared [`TraceStore`], so sweeps that
//! vary only the processor configuration build their trace once, and
//! sweeps over the same benchmark reuse each other's schedules. Each
//! function returns its result plus the [`CellCost`] it incurred.

use mcl_core::{speedup_percent, ProcessorConfig};
use mcl_sched::SchedulerKind;
use mcl_workloads::Benchmark;

use crate::runner::CellCost;
use crate::store::{SimProduct, TraceRequest};
use crate::{Error, TraceStore};

/// One point of a one-dimensional sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The swept parameter's value.
    pub param: u64,
    /// Simulated cycles.
    pub cycles: u64,
    /// Replay exceptions taken.
    pub replays: u64,
    /// Dual-distributed fraction (percent).
    pub dual_pct: f64,
    /// Data-cache miss rate (percent).
    pub dcache_miss_pct: f64,
    /// Branch misprediction rate (percent).
    pub mispredict_pct: f64,
}

fn point(param: u64, stats: &mcl_core::SimStats) -> SweepPoint {
    SweepPoint {
        param,
        cycles: stats.cycles,
        replays: stats.replays,
        dual_pct: stats.dual_fraction() * 100.0,
        dcache_miss_pct: stats.dcache.miss_rate() * 100.0,
        mispredict_pct: stats.mispredict_rate() * 100.0,
    }
}

fn charge(cost: &mut CellCost, product: &SimProduct) {
    cost.charge_sim(product);
}

/// A1 — transfer-buffer sizing: dual-cluster cycles and replay count as
/// the operand/result buffers shrink and grow.
///
/// # Errors
///
/// Propagates harness failures.
pub fn buffers(
    store: &TraceStore,
    bench: Benchmark,
    scale: u32,
    sizes: &[u32],
) -> Result<(Vec<SweepPoint>, CellCost), Error> {
    let req = TraceRequest::new(bench, scale, SchedulerKind::Local);
    let mut cost = CellCost::default();
    let points = sizes
        .iter()
        .map(|&size| {
            let mut cfg = ProcessorConfig::dual_cluster_8way();
            cfg.operand_buffer = size;
            cfg.result_buffer = size;
            let product = store.sim(&req, &cfg)?;
            charge(&mut cost, &product);
            Ok(point(u64::from(size), &product.stats))
        })
        .collect::<Result<_, Error>>()?;
    Ok((points, cost))
}

/// A2 — the local scheduler's imbalance threshold.
///
/// # Errors
///
/// Propagates harness failures.
pub fn threshold(
    store: &TraceStore,
    bench: Benchmark,
    scale: u32,
    thresholds: &[f64],
) -> Result<(Vec<SweepPoint>, CellCost), Error> {
    let cfg = ProcessorConfig::dual_cluster_8way();
    let mut cost = CellCost::default();
    let points = thresholds
        .iter()
        .map(|&th| {
            let req =
                TraceRequest::new(bench, scale, SchedulerKind::Local).with_threshold(th);
            let product = store.sim(&req, &cfg)?;
            charge(&mut cost, &product);
            Ok(point(th as u64, &product.stats))
        })
        .collect::<Result<_, Error>>()?;
    Ok((points, cost))
}

/// A3 — dispatch-queue size on the *single-cluster* machine: the
/// mechanism behind the paper's compress anomaly (a larger queue admits
/// staler predictions and more issue disorder).
///
/// # Errors
///
/// Propagates harness failures.
pub fn dq_single(
    store: &TraceStore,
    bench: Benchmark,
    scale: u32,
    sizes: &[u32],
) -> Result<(Vec<SweepPoint>, CellCost), Error> {
    let req = TraceRequest::new(bench, scale, SchedulerKind::Naive);
    let mut cost = CellCost::default();
    let points = sizes
        .iter()
        .map(|&size| {
            let mut cfg = ProcessorConfig::single_cluster_8way();
            cfg.dq_entries = size;
            let product = store.sim(&req, &cfg)?;
            charge(&mut cost, &product);
            Ok(point(u64::from(size), &product.stats))
        })
        .collect::<Result<_, Error>>()?;
    Ok((points, cost))
}

/// A4 — global-register designation on/off: Table 2 "local" percentage
/// with the designation (SP/GP global) versus all-local.
///
/// # Errors
///
/// Propagates harness failures.
pub fn globals(
    store: &TraceStore,
    bench: Benchmark,
    scale: u32,
) -> Result<((SweepPoint, SweepPoint), CellCost), Error> {
    let cfg = ProcessorConfig::dual_cluster_8way();
    let mut cost = CellCost::default();
    let with =
        store.sim(&TraceRequest::new(bench, scale, SchedulerKind::Local), &cfg)?;
    charge(&mut cost, &with);
    let without =
        store.sim(&TraceRequest::new(bench, scale, SchedulerKind::LocalNoGlobals), &cfg)?;
    charge(&mut cost, &without);
    Ok(((point(1, &with.stats), point(0, &without.stats)), cost))
}

/// A5 — issue width: the four-way single-cluster machine against its
/// 2 × 2-way dual-cluster counterpart (the paper evaluated both widths).
///
/// Returns `(single4_cycles, dual2_none_pct, dual2_local_pct)`.
///
/// # Errors
///
/// Propagates harness failures.
pub fn width4(
    store: &TraceStore,
    bench: Benchmark,
    scale: u32,
) -> Result<((u64, f64, f64), CellCost), Error> {
    let native = TraceRequest::new(bench, scale, SchedulerKind::Naive);
    let local = TraceRequest::new(bench, scale, SchedulerKind::Local);
    let mut cost = CellCost::default();
    let single = store.sim(&native, &ProcessorConfig::single_cluster_4way())?;
    charge(&mut cost, &single);
    let dual_none = store.sim(&native, &ProcessorConfig::dual_cluster_4way())?;
    charge(&mut cost, &dual_none);
    let dual_local = store.sim(&local, &ProcessorConfig::dual_cluster_4way())?;
    charge(&mut cost, &dual_local);
    Ok((
        (
            single.stats.cycles,
            speedup_percent(dual_none.stats.cycles, single.stats.cycles),
            speedup_percent(dual_local.stats.cycles, single.stats.cycles),
        ),
        cost,
    ))
}

/// A6 — loop unrolling (the paper's Section 6 future work): the
/// dual-cluster/local-scheduler cycles as the benchmark's self-loops are
/// unrolled, letting the partitioner place different iterations on
/// different clusters.
///
/// # Errors
///
/// Propagates harness failures.
pub fn unroll(
    store: &TraceStore,
    bench: Benchmark,
    scale: u32,
    factors: &[u32],
) -> Result<(Vec<SweepPoint>, CellCost), Error> {
    let cfg = ProcessorConfig::dual_cluster_8way();
    let mut cost = CellCost::default();
    let points = factors
        .iter()
        .map(|&factor| {
            let req =
                TraceRequest::new(bench, scale, SchedulerKind::Local).with_unroll(factor);
            let product = store.sim(&req, &cfg)?;
            charge(&mut cost, &product);
            Ok(point(u64::from(factor), &product.stats))
        })
        .collect::<Result<_, Error>>()?;
    Ok((points, cost))
}

/// One scheduler-comparison row: `(kind name, cycles, dual fraction %)`.
pub type SchedulerRow = (String, u64, f64);

/// B1 — scheduler comparison: dual-cluster cycles under each
/// partitioning strategy (the native cluster-blind binary, round-robin,
/// the historic int/fp bank split, and the paper's local scheduler).
///
/// # Errors
///
/// Propagates harness failures.
pub fn schedulers(
    store: &TraceStore,
    bench: Benchmark,
    scale: u32,
) -> Result<(Vec<SchedulerRow>, CellCost), Error> {
    let cfg = ProcessorConfig::dual_cluster_8way();
    let mut cost = CellCost::default();
    let rows = [
        SchedulerKind::Naive,
        SchedulerKind::RoundRobin,
        SchedulerKind::BankSplit,
        SchedulerKind::Local,
    ]
    .into_iter()
    .map(|kind| {
        let product = store.sim(&TraceRequest::new(bench, scale, kind), &cfg)?;
        charge(&mut cost, &product);
        Ok((
            format!("{kind:?}"),
            product.stats.cycles,
            product.stats.dual_fraction() * 100.0,
        ))
    })
    .collect::<Result<_, Error>>()?;
    Ok((rows, cost))
}

/// Renders a sweep as a table.
#[must_use]
pub fn render_sweep(title: &str, param_name: &str, points: &[SweepPoint]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{title}\n");
    let _ = writeln!(
        out,
        "{:<10} {:>10} {:>9} {:>9} {:>9} {:>9}",
        param_name, "cycles", "replays", "dual%", "d$miss%", "mispred%"
    );
    for p in points {
        let _ = writeln!(
            out,
            "{:<10} {:>10} {:>9} {:>9.1} {:>9.2} {:>9.2}",
            p.param, p.cycles, p.replays, p.dual_pct, p.dcache_miss_pct, p.mispredict_pct
        );
    }
    out
}
