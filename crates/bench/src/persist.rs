//! Crash-safe persistent simulation-result store.
//!
//! The in-process [`TraceStore`](crate::TraceStore) memoizes simulation
//! statistics for the lifetime of one `repro` invocation; this module
//! extends the memo across invocations with an on-disk,
//! content-addressed cache of `(packed trace, configuration) →`
//! ([`SimStats`], [`FastForward`]) results. Simulation is
//! deterministic, so serving a persisted result is observationally
//! identical to re-simulating — provided the entry genuinely is the
//! bytes that were written. Everything here is built around that
//! proviso:
//!
//! - **Content addressing.** Entries are keyed by a 128-bit FNV-1a
//!   digest over the store format version, the statistics wire version,
//!   the trace's validated 21-byte-per-record wire form
//!   ([`PackedTrace::to_bytes`]), and the configuration's canonical
//!   rendering. Any change to the trace, the configuration, or either
//!   serialization format changes the key; stale entries are simply
//!   never addressed again.
//! - **Atomic writes.** An entry is written to a temporary file in the
//!   store root and `rename`d into place, so a concurrent reader (or a
//!   crash mid-write) can never observe a half-written entry under its
//!   final name.
//! - **Checksummed, versioned entries.** Each entry carries a magic
//!   tag, a format version, an echo of its own key, the payload length,
//!   and an FNV-64 checksum of the payload. Loads re-derive all five.
//! - **Quarantine, never trust.** *Any* load failure — truncation, a
//!   flipped bit, a stale version, a hash-collision key mismatch — is
//!   treated as corruption: the entry is moved to `quarantine/` (for
//!   post-mortems) and the caller transparently recomputes. Corruption
//!   is never an error and can never alter reported statistics.
//! - **Bounded size.** When the store grows past its capacity
//!   (`MCL_STORE_CAP_BYTES`, default 256 MiB), least-recently-used
//!   entries (by modification time, refreshed on every hit) are evicted
//!   under an advisory lock file so concurrent `repro` processes do not
//!   race the sweep.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, SystemTime};

use mcl_core::{FastForward, SimStats, STATS_WIRE_VERSION};
use mcl_trace::PackedTrace;

/// Version of the on-disk entry format. Bump on any layout change —
/// the version participates in both the content key (old entries are
/// not addressed) and the header check (old entries quarantine if a
/// key collides anyway).
pub const STORE_FORMAT_VERSION: u32 = 1;

/// Magic tag opening every entry file.
const MAGIC: &[u8; 8] = b"MCLSTOR1";

/// Entry header: magic, format version, key echo, payload length,
/// payload checksum.
const HEADER_LEN: usize = 8 + 4 + 16 + 8 + 8;

/// Default store capacity when `MCL_STORE_CAP_BYTES` is unset.
pub const DEFAULT_CAP_BYTES: u64 = 256 * 1024 * 1024;

/// An advisory eviction lock older than this is considered leaked by a
/// crashed process and is stolen.
const STALE_LOCK: Duration = Duration::from_secs(60);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a sequence of chunks, from an arbitrary basis (the
/// second pass of the 128-bit key uses a perturbed basis so the two
/// halves are independent hashes of the same stream).
fn fnv1a(basis: u64, chunks: &[&[u8]]) -> u64 {
    let mut hash = basis;
    for chunk in chunks {
        for &byte in *chunk {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
    }
    hash
}

/// The 128-bit content address of one simulation result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntryKey {
    hi: u64,
    lo: u64,
}

impl EntryKey {
    /// Derives the key for simulating `trace` under the configuration
    /// whose canonical rendering is `sim_key` (the same `Debug` string
    /// the in-process store keys on).
    #[must_use]
    pub fn of(trace: &PackedTrace, sim_key: &str) -> EntryKey {
        let trace_bytes = trace.to_bytes();
        let chunks: [&[u8]; 4] = [
            &STORE_FORMAT_VERSION.to_le_bytes(),
            &STATS_WIRE_VERSION.to_le_bytes(),
            &trace_bytes,
            sim_key.as_bytes(),
        ];
        EntryKey {
            hi: fnv1a(FNV_OFFSET, &chunks),
            lo: fnv1a(FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15, &chunks),
        }
    }

    /// The key as the 32-hex-digit entry file stem.
    #[must_use]
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }
}

/// Counter snapshot of one [`PersistStore`], for `BENCH_repro.json`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PersistCounters {
    /// Loads served from disk.
    pub hits: u64,
    /// Loads that found no (usable) entry.
    pub misses: u64,
    /// Entries written.
    pub stores: u64,
    /// Entries evicted by the LRU capacity sweep.
    pub evictions: u64,
    /// Corrupt entries moved to quarantine (each also counts a miss).
    pub quarantined: u64,
}

/// The on-disk result store. See the [module docs](self) for the
/// format and guarantees; all methods are safe to call from many
/// threads and many processes at once.
pub struct PersistStore {
    root: PathBuf,
    entries: PathBuf,
    quarantine: PathBuf,
    cap_bytes: u64,
    tmp_seq: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    evictions: AtomicU64,
    quarantined: AtomicU64,
}

impl PersistStore {
    /// Opens (creating if needed) a store rooted at `dir`. Capacity
    /// comes from `MCL_STORE_CAP_BYTES` when set and parseable,
    /// otherwise [`DEFAULT_CAP_BYTES`].
    ///
    /// # Errors
    ///
    /// Returns the rendered I/O error when the directories cannot be
    /// created.
    pub fn open(dir: &Path) -> Result<PersistStore, String> {
        let cap_bytes = std::env::var("MCL_STORE_CAP_BYTES")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(DEFAULT_CAP_BYTES);
        PersistStore::open_with_cap(dir, cap_bytes)
    }

    /// [`PersistStore::open`] with an explicit capacity in bytes.
    ///
    /// # Errors
    ///
    /// See [`PersistStore::open`].
    pub fn open_with_cap(dir: &Path, cap_bytes: u64) -> Result<PersistStore, String> {
        let root = dir.to_path_buf();
        let entries = root.join("entries");
        let quarantine = root.join("quarantine");
        for d in [&root, &entries, &quarantine] {
            fs::create_dir_all(d)
                .map_err(|e| format!("persistent store: create {}: {e}", d.display()))?;
        }
        Ok(PersistStore {
            root,
            entries,
            quarantine,
            cap_bytes,
            tmp_seq: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
        })
    }

    /// The store's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The on-disk path an entry for `key` lives at.
    #[must_use]
    pub fn entry_path(&self, key: &EntryKey) -> PathBuf {
        self.entries.join(format!("{}.bin", key.hex()))
    }

    /// A snapshot of the hit/miss/store/eviction/quarantine counters.
    #[must_use]
    pub fn counters(&self) -> PersistCounters {
        PersistCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
        }
    }

    /// Number of entry files quarantined on disk (scanned, for
    /// self-tests and reports).
    #[must_use]
    pub fn quarantine_len(&self) -> usize {
        fs::read_dir(&self.quarantine).map_or(0, |d| d.filter_map(Result::ok).count())
    }

    /// Loads the result stored under `key`, or `None` when absent or
    /// unusable. A corrupt entry is moved to `quarantine/` and reported
    /// as a miss — corruption is never an error and the caller always
    /// recomputes. A hit refreshes the entry's modification time, which
    /// is the LRU clock.
    #[must_use]
    pub fn load(&self, key: &EntryKey) -> Option<(SimStats, FastForward)> {
        // Disk I/O latency and the hit/miss outcome both land in the
        // flight recording; the span is renamed once the outcome is
        // known and records at drop.
        let mut flight = crate::flight::span("persist", || "load miss".to_owned());
        let path = self.entry_path(key);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match decode_entry(&bytes, key) {
            Ok(result) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                if let Some(s) = flight.as_mut() {
                    s.rename("load hit");
                }
                // Best-effort LRU touch; a read-only store still serves.
                if let Ok(f) = fs::File::options().append(true).open(&path) {
                    let _ = f.set_modified(SystemTime::now());
                }
                Some(result)
            }
            Err(_) => {
                self.quarantine_entry(&path);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Persists a result under `key`: encode, write to a temporary
    /// file, fsync, rename into place, then sweep the LRU capacity.
    /// Failures are swallowed — the store is a cache, and a full disk
    /// must not fail the simulation that just succeeded.
    pub fn store(&self, key: &EntryKey, stats: &SimStats, ff: &FastForward) {
        let _flight = crate::flight::span("persist", || "store".to_owned());
        let bytes = encode_entry(key, stats, ff);
        let tmp = self.root.join(format!(
            "tmp.{}.{}",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        let written = fs::File::create(&tmp)
            .and_then(|mut f| {
                f.write_all(&bytes)?;
                f.sync_all()
            })
            .and_then(|()| fs::rename(&tmp, self.entry_path(key)));
        if written.is_err() {
            let _ = fs::remove_file(&tmp);
            return;
        }
        self.stores.fetch_add(1, Ordering::Relaxed);
        self.evict_to_cap();
    }

    /// Moves a corrupt entry aside for post-mortems (removing it if
    /// even the move fails — it must not be served again either way).
    fn quarantine_entry(&self, path: &Path) {
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        let name = path.file_name().map_or_else(
            || "entry.bin".into(),
            |n| n.to_string_lossy().into_owned(),
        );
        let mut dest = self.quarantine.join(&name);
        let mut n = 0u32;
        while dest.exists() {
            n += 1;
            dest = self.quarantine.join(format!("{name}.{n}"));
        }
        if fs::rename(path, &dest).is_err() {
            let _ = fs::remove_file(path);
        }
    }

    /// Evicts least-recently-used entries until the store fits its
    /// capacity, under the advisory lock (if another process holds a
    /// fresh lock, the sweep is skipped — it will run on a later
    /// store).
    fn evict_to_cap(&self) {
        let mut entries: Vec<(PathBuf, u64, SystemTime)> = Vec::new();
        let mut total = 0u64;
        let Ok(dir) = fs::read_dir(&self.entries) else { return };
        for entry in dir.filter_map(Result::ok) {
            let Ok(meta) = entry.metadata() else { continue };
            let len = meta.len();
            total += len;
            let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
            entries.push((entry.path(), len, mtime));
        }
        if total <= self.cap_bytes {
            return;
        }
        let Some(_lock) = EvictionLock::acquire(&self.root) else { return };
        entries.sort_by_key(|(_, _, mtime)| *mtime);
        for (path, len, _) in entries {
            if total <= self.cap_bytes {
                break;
            }
            if fs::remove_file(&path).is_ok() {
                total = total.saturating_sub(len);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// RAII advisory lock around the eviction sweep: `create_new` on a
/// lock file serializes cooperating processes, and a lock file older
/// than [`STALE_LOCK`] (a crashed holder) is stolen.
struct EvictionLock {
    path: PathBuf,
}

impl EvictionLock {
    fn acquire(root: &Path) -> Option<EvictionLock> {
        let path = root.join("evict.lock");
        for _ in 0..2 {
            match fs::File::options().write(true).create_new(true).open(&path) {
                Ok(_) => return Some(EvictionLock { path }),
                Err(_) => {
                    let stale = fs::metadata(&path)
                        .and_then(|m| m.modified())
                        .ok()
                        .and_then(|mtime| SystemTime::now().duration_since(mtime).ok())
                        .is_some_and(|age| age > STALE_LOCK);
                    if !stale {
                        return None;
                    }
                    let _ = fs::remove_file(&path);
                }
            }
        }
        None
    }
}

impl Drop for EvictionLock {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// Encodes one entry: header (magic, version, key echo, payload
/// length, FNV-64 payload checksum) followed by the payload (the
/// statistics wire form, length-prefixed, plus the fast-forward
/// counters).
fn encode_entry(key: &EntryKey, stats: &SimStats, ff: &FastForward) -> Vec<u8> {
    // Exhaustive destructure: adding a `FastForward` field refuses to
    // compile until the entry format (and its version) are updated.
    let FastForward { skipped_cycles, jumps } = *ff;
    let wire = stats.to_wire_bytes();
    let mut payload = Vec::with_capacity(4 + wire.len() + 16);
    payload.extend_from_slice(&u32::try_from(wire.len()).expect("stats wire fits").to_le_bytes());
    payload.extend_from_slice(&wire);
    payload.extend_from_slice(&skipped_cycles.to_le_bytes());
    payload.extend_from_slice(&jumps.to_le_bytes());
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&STORE_FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&key.hi.to_le_bytes());
    out.extend_from_slice(&key.lo.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a(FNV_OFFSET, &[&payload]).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Decodes and fully validates one entry read for `key`. Every failure
/// is a quarantine, so the error is just a reason string.
fn decode_entry(bytes: &[u8], key: &EntryKey) -> Result<(SimStats, FastForward), String> {
    if bytes.len() < HEADER_LEN {
        return Err(format!("truncated header: {} bytes", bytes.len()));
    }
    let (header, payload) = bytes.split_at(HEADER_LEN);
    if &header[0..8] != MAGIC {
        return Err("bad magic".into());
    }
    let word = |at: usize| u64::from_le_bytes(header[at..at + 8].try_into().unwrap());
    let version = u32::from_le_bytes(header[8..12].try_into().unwrap());
    if version != STORE_FORMAT_VERSION {
        return Err(format!("format version {version}, expected {STORE_FORMAT_VERSION}"));
    }
    if (word(12), word(20)) != (key.hi, key.lo) {
        return Err("key echo mismatch".into());
    }
    if word(28) != payload.len() as u64 {
        return Err(format!("payload length {} recorded, {} present", word(28), payload.len()));
    }
    if word(36) != fnv1a(FNV_OFFSET, &[payload]) {
        return Err("payload checksum mismatch".into());
    }
    if payload.len() < 4 {
        return Err("payload too short for stats length".into());
    }
    let stats_len = u32::from_le_bytes(payload[0..4].try_into().unwrap()) as usize;
    let rest = &payload[4..];
    if rest.len() != stats_len + 16 {
        return Err("payload length inconsistent with stats length".into());
    }
    let stats = SimStats::from_wire_bytes(&rest[..stats_len])?;
    let ff = FastForward {
        skipped_cycles: u64::from_le_bytes(rest[stats_len..stats_len + 8].try_into().unwrap()),
        jumps: u64::from_le_bytes(rest[stats_len + 8..].try_into().unwrap()),
    };
    Ok((stats, ff))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcl_core::{Processor, ProcessorConfig};
    use mcl_sched::SchedulerKind;
    use mcl_workloads::Benchmark;

    fn fixture() -> (PackedTrace, SimStats, FastForward, String) {
        let store = crate::TraceStore::new();
        let req = crate::TraceRequest::new(Benchmark::Compress, 20, SchedulerKind::Local);
        let (trace, _) = store.trace(&req).unwrap();
        let config = ProcessorConfig::dual_cluster_8way();
        let result = Processor::new(config.clone()).run_packed(&trace).unwrap();
        ((*trace).clone(), result.stats, result.ff, format!("{config:?}"))
    }

    fn temp_store(tag: &str, cap: u64) -> PersistStore {
        let dir = std::env::temp_dir()
            .join(format!("mcl-persist-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        PersistStore::open_with_cap(&dir, cap).unwrap()
    }

    #[test]
    fn round_trips_and_counts() {
        let (trace, stats, ff, sim_key) = fixture();
        let store = temp_store("roundtrip", DEFAULT_CAP_BYTES);
        let key = EntryKey::of(&trace, &sim_key);
        assert_eq!(store.load(&key), None, "cold store misses");
        store.store(&key, &stats, &ff);
        assert_eq!(store.load(&key), Some((stats.clone(), ff)), "warm store serves the result");
        let c = store.counters();
        assert_eq!((c.hits, c.misses, c.stores, c.quarantined), (1, 1, 1, 0));
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn distinct_configs_and_traces_get_distinct_keys() {
        let (trace, _, _, sim_key) = fixture();
        let single = format!("{:?}", ProcessorConfig::single_cluster_8way());
        assert_ne!(EntryKey::of(&trace, &sim_key), EntryKey::of(&trace, &single));
        let store = crate::TraceStore::new();
        let other = crate::TraceRequest::new(Benchmark::Compress, 30, SchedulerKind::Local);
        let (other_trace, _) = store.trace(&other).unwrap();
        assert_ne!(EntryKey::of(&trace, &sim_key), EntryKey::of(&other_trace, &sim_key));
    }

    /// The bit-flip property: flipping ANY single bit of a stored entry
    /// must read back as a quarantined miss — never a different result,
    /// never a panic — and a recompute-and-restore must serve the
    /// original statistics again.
    #[test]
    fn any_single_bit_flip_quarantines_and_recomputes() {
        let (trace, stats, ff, sim_key) = fixture();
        let store = temp_store("bitflip", DEFAULT_CAP_BYTES);
        let key = EntryKey::of(&trace, &sim_key);
        store.store(&key, &stats, &ff);
        let path = store.entry_path(&key);
        let pristine = fs::read(&path).unwrap();
        let mut flipped = 0u64;
        for byte in 0..pristine.len() {
            for bit in 0..8 {
                let mut corrupt = pristine.clone();
                corrupt[byte] ^= 1 << bit;
                fs::write(&path, &corrupt).unwrap();
                assert_eq!(
                    store.load(&key),
                    None,
                    "flip of byte {byte} bit {bit} must not be served"
                );
                assert!(!path.exists(), "corrupt entry must leave the entries directory");
                flipped += 1;
                // The caller's contract: recompute and restore.
                store.store(&key, &stats, &ff);
                assert_eq!(store.load(&key), Some((stats.clone(), ff)));
            }
        }
        let c = store.counters();
        assert_eq!(c.quarantined, flipped, "every flip quarantined");
        assert_eq!(c.misses, flipped, "every flip recomputed");
        assert_eq!(store.quarantine_len(), flipped as usize);
        let _ = fs::remove_dir_all(store.root());
    }

    /// Random multi-fault corruption (truncations, random tail garbage,
    /// random byte stomps) on top of the exhaustive single-bit sweep.
    #[test]
    fn random_corruption_quarantines() {
        let (trace, stats, ff, sim_key) = fixture();
        let store = temp_store("fuzz", DEFAULT_CAP_BYTES);
        let key = EntryKey::of(&trace, &sim_key);
        store.store(&key, &stats, &ff);
        let path = store.entry_path(&key);
        let pristine = fs::read(&path).unwrap();
        mcl_testutil::check_cases(64, |rng| {
            let mut corrupt = pristine.clone();
            match rng.range(0, 3) {
                0 => corrupt.truncate(rng.range(0, corrupt.len())),
                1 => corrupt.extend((0..rng.range(1, 64)).map(|_| rng.next_u64() as u8)),
                _ => {
                    for _ in 0..rng.range(1, 16) {
                        let at = rng.range(0, corrupt.len());
                        corrupt[at] = rng.next_u64() as u8;
                    }
                }
            }
            if corrupt == pristine {
                return; // a stomp can rewrite a byte to itself
            }
            fs::write(&path, &corrupt).unwrap();
            assert_eq!(store.load(&key), None);
            store.store(&key, &stats, &ff);
            assert_eq!(store.load(&key), Some((stats.clone(), ff)));
        });
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn lru_eviction_keeps_the_store_bounded_and_prefers_recent_entries() {
        let (trace, stats, ff, sim_key) = fixture();
        // Entries are ~350 bytes; cap at ~3 entries' worth.
        let store = temp_store("evict", 1100);
        let keys: Vec<EntryKey> = (0..8)
            .map(|i| EntryKey::of(&trace, &format!("{sim_key}|v{i}")))
            .collect();
        for key in &keys {
            store.store(key, &stats, &ff);
            // Distinct mtimes so LRU order is well defined.
            std::thread::sleep(Duration::from_millis(20));
        }
        let on_disk: Vec<bool> = keys.iter().map(|k| store.entry_path(k).exists()).collect();
        assert!(store.counters().evictions > 0, "the sweep ran");
        assert!(
            *on_disk.last().unwrap(),
            "the most recently stored entry survives"
        );
        assert!(!on_disk[0], "the oldest entry is evicted first");
        let total: u64 = fs::read_dir(store.entry_path(&keys[0]).parent().unwrap())
            .unwrap()
            .filter_map(Result::ok)
            .filter_map(|e| e.metadata().ok().map(|m| m.len()))
            .sum();
        assert!(total <= 1100, "store stays within its capacity, got {total}");
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn stale_eviction_lock_is_stolen() {
        let store = temp_store("lock", DEFAULT_CAP_BYTES);
        let lock = store.root().join("evict.lock");
        fs::write(&lock, b"").unwrap();
        let old = SystemTime::now() - Duration::from_secs(600);
        fs::File::options().append(true).open(&lock).unwrap().set_modified(old).unwrap();
        assert!(EvictionLock::acquire(store.root()).is_some(), "stale lock must be stolen");
        let fresh = EvictionLock::acquire(store.root()).unwrap();
        assert!(EvictionLock::acquire(store.root()).is_none(), "held lock blocks");
        drop(fresh);
        assert!(EvictionLock::acquire(store.root()).is_some(), "dropped lock frees");
        let _ = fs::remove_dir_all(store.root());
    }
}
