//! The whole-run host flight recorder behind `repro --flight FILE`.
//!
//! `--obs` traces the *simulated machine* one cell at a time; this
//! module traces the *harness* across the whole invocation: when each
//! cell ran on which `--jobs` worker, where trace builds and
//! simulations happened, every persistent-store load/store with its
//! hit/miss outcome, and the shard workers' warmup/simulate occupancy.
//! The recording exports as one Chrome trace-event file
//! (`run.flight.json`, the same document shape as the `--obs`
//! `.trace.json` exports — load it in `chrome://tracing` or Perfetto)
//! where `pid` is the process (always 1) and `tid` is a small dense id
//! assigned to each host thread in first-span order.
//!
//! The recorder is process-global and **lock-cheap**: when disabled
//! (the default) every instrumentation site is one relaxed atomic load
//! and no allocation, so recording off cannot perturb the measured
//! run; when enabled, a span costs two `Instant` reads and one short
//! mutex push at drop. Spans never alter simulation — like the probe
//! layer, the flight recorder observes the host, it does not touch the
//! machine — so `repro` output is byte-identical with recording on or
//! off (CI-enforced).

use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json::Json;
use crate::obs;
use crate::Error;

/// One recorded event: a completed span (`dur_us > 0` or a zero-length
/// `X`) or an instant marker.
#[derive(Debug, Clone)]
struct Rec {
    name: String,
    cat: &'static str,
    /// Microseconds since the recorder's epoch (Chrome trace `ts`).
    ts_us: f64,
    /// Span duration in microseconds; `None` renders an instant.
    dur_us: Option<f64>,
    tid: u64,
}

struct Recorder {
    epoch: Instant,
    recs: Mutex<Vec<Rec>>,
}

static RECORDER: OnceLock<Recorder> = OnceLock::new();
/// The fast-path switch every instrumentation site loads.
static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Dense per-thread id, assigned on the thread's first span.
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// Turns recording on for the rest of the process (idempotent). The
/// epoch is set on the first call; spans recorded before it are
/// impossible (the fast path was off).
pub fn enable() {
    RECORDER.get_or_init(|| Recorder {
        epoch: Instant::now(),
        recs: Mutex::new(Vec::new()),
    });
    ENABLED.store(true, Ordering::Release);
}

/// Whether the recorder is on — one relaxed load, the entire cost of a
/// disabled instrumentation site.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn recorder() -> Option<&'static Recorder> {
    if enabled() {
        RECORDER.get()
    } else {
        None
    }
}

/// An in-progress span; records itself on drop. Hold it across the
/// work being timed.
#[must_use = "a span records when dropped; binding it to _ discards the measurement"]
pub struct SpanGuard {
    name: String,
    cat: &'static str,
    start: Instant,
}

impl SpanGuard {
    /// Replaces the span's name before it records — for spans whose
    /// interesting label (a hit/miss outcome, say) is only known once
    /// the timed work finished.
    pub fn rename(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(rec) = recorder() else { return };
        let end = Instant::now();
        let ts_us = self.start.duration_since(rec.epoch).as_secs_f64() * 1e6;
        let dur_us = end.duration_since(self.start).as_secs_f64() * 1e6;
        push(rec, Rec {
            name: std::mem::take(&mut self.name),
            cat: self.cat,
            ts_us,
            dur_us: Some(dur_us),
            tid: TID.with(|t| *t),
        });
    }
}

/// Opens a span named `name` in category `cat`, or `None` (no
/// allocation, no clock read) when recording is off. The closure
/// defers building the name so disabled sites pay nothing for it.
pub fn span(cat: &'static str, name: impl FnOnce() -> String) -> Option<SpanGuard> {
    if !enabled() {
        return None;
    }
    Some(SpanGuard { name: name(), cat, start: Instant::now() })
}

/// Records an instant marker.
pub fn instant(cat: &'static str, name: impl FnOnce() -> String) {
    let Some(rec) = recorder() else { return };
    let ts_us = rec.epoch.elapsed().as_secs_f64() * 1e6;
    push(rec, Rec { name: name(), cat, ts_us, dur_us: None, tid: TID.with(|t| *t) });
}

/// Records a completed span from explicit offsets — used to replay
/// host schedules measured elsewhere (the shard workers' window
/// timelines) into the recording. `begin` is an [`Instant`] on this
/// process's clock; `start_offset`/`duration` are seconds.
pub fn span_at(
    cat: &'static str,
    name: impl FnOnce() -> String,
    begin: Instant,
    start_offset_seconds: f64,
    duration_seconds: f64,
    tid_hint: u64,
) {
    let Some(rec) = recorder() else { return };
    let base_us = begin.duration_since(rec.epoch).as_secs_f64() * 1e6;
    push(rec, Rec {
        name: name(),
        cat,
        ts_us: base_us + start_offset_seconds * 1e6,
        dur_us: Some(duration_seconds * 1e6),
        tid: tid_hint,
    });
}

fn push(rec: &Recorder, r: Rec) {
    rec.recs.lock().unwrap().push(r);
}

/// Renders the recording as a Chrome trace document, or `None` when
/// recording was never enabled. Events are sorted by timestamp so the
/// export is deterministic given the recorded set.
#[must_use]
pub fn export_json() -> Option<String> {
    let rec = RECORDER.get()?;
    let mut recs = rec.recs.lock().unwrap().clone();
    recs.sort_by(|a, b| {
        a.ts_us.total_cmp(&b.ts_us).then_with(|| a.tid.cmp(&b.tid)).then_with(|| a.name.cmp(&b.name))
    });
    let events = recs
        .iter()
        .map(|r| {
            let mut obj = Json::object();
            obj.field("name", r.name.as_str().into()).field("cat", r.cat.into());
            match r.dur_us {
                Some(dur) => {
                    obj.field("ph", "X".into())
                        .field("ts", r.ts_us.into())
                        .field("dur", dur.into());
                }
                None => {
                    obj.field("ph", "i".into()).field("ts", r.ts_us.into()).field("s", "t".into());
                }
            }
            obj.field("pid", 1u64.into()).field("tid", r.tid.into());
            obj
        })
        .collect();
    Some(obs::chrome_trace_document(events).render())
}

/// Writes the recording to `path` (the `--flight FILE` target).
///
/// # Errors
///
/// [`Error::Obs`] when recording was never enabled, nothing was
/// recorded, or the file cannot be written.
pub fn write(path: &Path) -> Result<(), Error> {
    let json = export_json()
        .ok_or_else(|| Error::Obs("flight: recording was never enabled".into()))?;
    if RECORDER.get().is_some_and(|r| r.recs.lock().unwrap().is_empty()) {
        return Err(Error::Obs("flight: nothing was recorded".into()));
    }
    std::fs::write(path, json)
        .map_err(|e| Error::Obs(format!("flight: writing {}: {e}", path.display())))
}

/// Validates a flight recording: the shared Chrome trace shape
/// (non-empty `traceEvents`, each with `ph`/`ts`/`pid`) plus the
/// flight-specific contract — at least one completed `X` span with a
/// numeric `dur` and a `cat`, and timestamps non-decreasing are not
/// required (workers interleave) but every `ts` must be finite and
/// non-negative. Returns the event count.
///
/// # Errors
///
/// [`Error::Obs`] describing the first violation.
pub fn validate_flight(path: &Path) -> Result<usize, Error> {
    let count = obs::validate_trace(path)?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| Error::Obs(format!("flight: reading {}: {e}", path.display())))?;
    let doc = Json::parse(&text).map_err(|e| Error::Obs(format!("flight: {e}")))?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .ok_or_else(|| Error::Obs("flight: traceEvents is not an array".into()))?;
    let mut spans = 0usize;
    for e in events {
        let ts = e.get("ts").and_then(Json::as_f64).unwrap_or(-1.0);
        if !ts.is_finite() || ts < 0.0 {
            return Err(Error::Obs(format!(
                "flight: {}: event with non-finite or negative ts",
                path.display()
            )));
        }
        if e.get("cat").and_then(Json::as_str).is_none() {
            return Err(Error::Obs(format!(
                "flight: {}: event missing cat",
                path.display()
            )));
        }
        if e.get("ph").and_then(Json::as_str) == Some("X") {
            if e.get("dur").and_then(Json::as_f64).is_none() {
                return Err(Error::Obs(format!(
                    "flight: {}: X span missing numeric dur",
                    path.display()
                )));
            }
            spans += 1;
        }
    }
    if spans == 0 {
        return Err(Error::Obs(format!(
            "flight: {}: no completed spans recorded",
            path.display()
        )));
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The recorder is process-global, so one test exercises the whole
    /// enable → record → export → validate → write path (parallel test
    /// threads may add their own spans; the assertions only require
    /// ours to be present).
    #[test]
    fn records_exports_and_validates() {
        assert!(span("test", || "before-enable".into()).is_none(), "disabled path is None");
        enable();
        assert!(enabled());
        {
            let _span = span("test", || "flight-test-span".into());
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        instant("test", || "flight-test-instant".into());
        span_at("test", || "flight-test-shard-window".into(), Instant::now(), 0.0, 0.001, 999);
        let json = export_json().expect("enabled recorder exports");
        assert!(json.contains("\"flight-test-span\""));
        assert!(json.contains("\"flight-test-instant\""));
        assert!(json.contains("\"flight-test-shard-window\""));
        let doc = Json::parse(&json).expect("export parses");
        let events = doc.get("traceEvents").and_then(Json::as_array).expect("array");
        assert!(events.len() >= 3);
        let span_evt = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("flight-test-span"))
            .expect("span present");
        assert_eq!(span_evt.get("ph").and_then(Json::as_str), Some("X"));
        assert!(span_evt.get("dur").and_then(Json::as_f64).unwrap() >= 1000.0, "≥1 ms in µs");
        assert_eq!(span_evt.get("pid").and_then(Json::as_u64), Some(1));

        let dir = std::env::temp_dir()
            .join(format!("mcl-flight-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.flight.json");
        write(&path).expect("writes");
        let n = validate_flight(&path).expect("validates");
        assert!(n >= 3);
        // A spanless document fails flight validation even though it is
        // a well-formed Chrome trace.
        let spanless = dir.join("spanless.flight.json");
        std::fs::write(
            &spanless,
            "{\"traceEvents\":[{\"name\":\"i\",\"cat\":\"t\",\"ph\":\"i\",\"ts\":1,\"pid\":1,\"tid\":1,\"s\":\"t\"}],\"displayTimeUnit\":\"ns\"}",
        )
        .unwrap();
        assert!(validate_flight(&spanless).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
