//! Table 1: instruction-issue rules and functional-unit latencies,
//! printed from the live configuration structures (so the table in the
//! report can never drift from what the simulator enforces).

use mcl_isa::{InstrClass, IssueRules, Latencies, Opcode};

/// Renders Table 1.
#[must_use]
pub fn render() -> String {
    use std::fmt::Write as _;
    let single = IssueRules::single_cluster_8way();
    let dual = IssueRules::dual_cluster_4way();
    let lat = Latencies::table1();

    let mut out = String::new();
    let _ = writeln!(out, "Table 1: instruction-issue rules and functional-unit latencies\n");
    let _ = writeln!(
        out,
        "{:<36} {:>6} {:>8} {:>8} {:>12} {:>9}",
        "", "all", "integer", "fp", "loads&stores", "ctrl-flow"
    );
    let _ = writeln!(
        out,
        "{:<36} {:>6} {:>8} {:>8} {:>12} {:>9}",
        "#1 issued/cycle, single",
        single.total,
        single.int_all,
        single.fp_all,
        single.mem,
        single.control
    );
    let _ = writeln!(
        out,
        "{:<36} {:>6} {:>8} {:>8} {:>12} {:>9}",
        "#2 issued/cycle, dual (per cluster)",
        dual.total,
        dual.int_all,
        dual.fp_all,
        dual.mem,
        dual.control
    );
    let _ = writeln!(out, "\n#3 latencies (cycles):");
    let _ = writeln!(
        out,
        "  integer multiply {}   integer other {}   fp divide {}/{} (not pipelined)",
        lat.int_mul,
        lat.int_alu,
        Opcode::Divs.div_width().expect("divide").latency(),
        Opcode::Divt.div_width().expect("divide").latency(),
    );
    let _ = writeln!(
        out,
        "  fp other {}   loads {} (1 + single load-delay slot)   stores {}   control flow {}",
        lat.fp_other, lat.load_hit, lat.store, lat.control
    );
    let _ = writeln!(
        out,
        "\nclass limits apply per group: {}",
        InstrClass::ALL.map(|c| c.to_string()).join(", ")
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn render_contains_the_paper_numbers() {
        let s = super::render();
        assert!(s.contains("8"));
        assert!(s.contains("8/16") || s.contains("8/16 (not pipelined)") || s.contains("fp divide 8/16"));
    }
}
