//! The shared trace build/serve layer.
//!
//! The paper's methodology (Section 4.1) is classic ATOM-style
//! trace-driven simulation: the dynamic instruction stream is produced
//! once and then replayed under many machine configurations. The
//! experiment driver has the same shape — `repro all` expands into ~60
//! cells, and most of them want one of a handful of distinct traces
//! (Table 2 feeds the crossover; the ablation sweeps simulate one trace
//! under many [`ProcessorConfig`]s; several sweeps' extreme points
//! coincide with the defaults). [`TraceStore`] memoizes the whole
//! front end so the worker pool builds each distinct artifact exactly
//! once, at three levels:
//!
//! 1. **Intermediate language** — `Benchmark::build` (plus optional
//!    self-loop unrolling), keyed by `(benchmark, scale, unroll)`.
//! 2. **Prepared IL** — prepass list scheduling plus the profiling VM
//!    run ([`SchedulePipeline::prepare`]), keyed like the IL. This is
//!    the expensive, scheduler-kind-*independent* half of scheduling,
//!    shared by every scheduler kind and imbalance threshold.
//! 3. **Packed traces and simulation statistics** — the scheduled
//!    machine program interpreted into a [`PackedTrace`], keyed by
//!    `(IL key, scheduler kind, threshold)`; and [`SimStats`], keyed by
//!    the trace key plus the processor configuration. Simulation is
//!    deterministic, so serving a memoized result is observationally
//!    identical to re-simulating.
//!
//! All entries are [`Arc`]-shared and built under per-key
//! [`OnceLock`]s: concurrent workers that race on the same key block on
//! the lock (one builds, the rest wait) while the maps themselves are
//! only locked for lookups. Requests that normalize to the same key —
//! `imbalance_threshold` equal to the default, unroll factor ≤ 1,
//! threshold on a scheduler kind that ignores it — share one entry.
//!
//! Freshly built traces are additionally *canonicalized by content*:
//! distinct keys that happen to produce byte-identical traces (a
//! threshold past the point where the partition stops changing, an
//! unroll factor on a benchmark without self-loops) share one buffer
//! and — since simulation is deterministic — one memoized simulation
//! per configuration.
//!
//! The store serves *statistics only*; runs that need event logs
//! (`repro pipeline`, the scenario timelines) bypass it.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use mcl_core::shard::planned_windows;
use mcl_core::{FastForward, Processor, ProcessorConfig, ShardOptions, ShardReport, SimStats};
use mcl_isa::assign::RegisterAssignment;
use mcl_sched::{
    unroll_self_loops, PreparedIl, ScheduleOptions, SchedulePipeline, SchedulerKind,
};
use mcl_trace::vm::{dynamic_len_estimate, trace_program_packed};
use mcl_trace::{PackedTrace, Program, Vreg};
use mcl_workloads::Benchmark;

use crate::persist::{self, PersistStore};
use crate::Error;

/// Identifies a (possibly unrolled) intermediate-language program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct IlKey {
    bench: Benchmark,
    scale: u32,
    /// Self-loop unroll factor; normalized to 1 ("no unrolling").
    unroll: u32,
}

/// Identifies a scheduled machine trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct TraceKey {
    il: IlKey,
    kind: SchedulerKind,
    /// The local scheduler's imbalance threshold, as bits (f64 is not
    /// `Hash`); normalized to the default for kinds that ignore it.
    threshold_bits: u64,
}

/// A request for one benchmark trace.
///
/// Defaults mirror the harness defaults: no unrolling, the
/// [`ScheduleOptions::default`] imbalance threshold.
#[derive(Debug, Clone, Copy)]
pub struct TraceRequest {
    /// The workload.
    pub bench: Benchmark,
    /// The workload scale.
    pub scale: u32,
    /// The scheduler producing the binary.
    pub kind: SchedulerKind,
    /// Self-loop unroll factor applied to the IL before scheduling
    /// (values ≤ 1 mean none).
    pub unroll: u32,
    /// Local-scheduler imbalance threshold; `None` means the default.
    pub imbalance_threshold: Option<f64>,
}

impl TraceRequest {
    /// A request with default unrolling and threshold.
    #[must_use]
    pub fn new(bench: Benchmark, scale: u32, kind: SchedulerKind) -> TraceRequest {
        TraceRequest { bench, scale, kind, unroll: 1, imbalance_threshold: None }
    }

    /// Sets the unroll factor.
    #[must_use]
    pub fn with_unroll(mut self, factor: u32) -> TraceRequest {
        self.unroll = factor;
        self
    }

    /// Sets the imbalance threshold.
    #[must_use]
    pub fn with_threshold(mut self, threshold: f64) -> TraceRequest {
        self.imbalance_threshold = Some(threshold);
        self
    }

    fn il_key(&self) -> IlKey {
        IlKey { bench: self.bench, scale: self.scale, unroll: self.unroll.max(1) }
    }

    fn key(&self) -> TraceKey {
        // Only the local schedulers consult the threshold; other kinds
        // normalize to the default so they share one entry.
        let threshold = match self.kind {
            SchedulerKind::Local | SchedulerKind::LocalNoGlobals => {
                self.imbalance_threshold.unwrap_or_else(default_threshold)
            }
            _ => default_threshold(),
        };
        TraceKey { il: self.il_key(), kind: self.kind, threshold_bits: threshold.to_bits() }
    }
}

fn default_threshold() -> f64 {
    ScheduleOptions::default().imbalance_threshold
}

/// Hit/miss counters of one store, for `BENCH_repro.json`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreCounters {
    /// Trace requests served from cache.
    pub trace_hits: u64,
    /// Trace requests that built their trace.
    pub trace_misses: u64,
    /// Simulation requests served from cache.
    pub sim_hits: u64,
    /// Simulation requests that ran the simulator.
    pub sim_misses: u64,
    /// Simulations served from the persistent disk store (a subset of
    /// `sim_misses` — the in-process memo missed but the disk hit).
    pub disk_hits: u64,
    /// Disk-store lookups that found no usable entry.
    pub disk_misses: u64,
    /// Results written to the persistent disk store.
    pub disk_stores: u64,
    /// Disk entries evicted by the LRU capacity sweep.
    pub disk_evictions: u64,
    /// Corrupt disk entries quarantined (each also counts a disk miss).
    pub disk_quarantined: u64,
}

/// Host-side wall-clock breakdown of one call's trace acquisition.
///
/// Phase fields are nonzero only on the call that actually built the
/// stage (store hits and lock waits report ≈0 there);
/// [`TracePhases::total_seconds`] is always this call's full wall time
/// obtaining the trace, so `total ≥ il + prepass + schedule` and the
/// slack is memoization (or waiting on another worker's build).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TracePhases {
    /// Seconds building (or unrolling) the intermediate language.
    pub il_seconds: f64,
    /// Seconds in the scheduler-kind-independent prepass (list
    /// scheduling + profiling VM run).
    pub prepass_seconds: f64,
    /// Seconds scheduling for clusters and interpreting the scheduled
    /// program into a packed trace.
    pub schedule_seconds: f64,
    /// Total seconds this call spent obtaining the trace.
    pub total_seconds: f64,
}

impl TracePhases {
    /// Accumulates another breakdown into this one.
    pub fn add(&mut self, other: &TracePhases) {
        self.il_seconds += other.il_seconds;
        self.prepass_seconds += other.prepass_seconds;
        self.schedule_seconds += other.schedule_seconds;
        self.total_seconds += other.total_seconds;
    }
}

/// One simulation served by the store, with its cost attribution.
#[derive(Debug, Clone)]
pub struct SimProduct {
    /// The simulation statistics.
    pub stats: SimStats,
    /// Whether this call actually ran the simulator (`false` when the
    /// statistics were served from the memoized cache). Throughput
    /// accounting must only credit simulated cycles to fresh runs —
    /// a cache hit simulates nothing.
    pub fresh: bool,
    /// Dead-cycle fast-forward counters of the run that produced the
    /// statistics (all zero under `Engine::Ticked`). Cached serves
    /// report the counters of the original run.
    pub ff: FastForward,
    /// Seconds this call spent obtaining the trace (≈0 on a store hit);
    /// equals [`TracePhases::total_seconds`] of [`SimProduct::phases`].
    pub trace_build_seconds: f64,
    /// Seconds this call spent simulating (≈0 on a store hit).
    pub simulate_seconds: f64,
    /// Phase breakdown of the trace acquisition.
    pub phases: TracePhases,
    /// How the run was sharded (`None` when the store simulates
    /// serially, i.e. `shards` ≤ 1). Cached serves report the original
    /// run's report.
    pub shard: Option<ShardReport>,
}

/// A per-key build slot: the map lock is held only to fetch the slot;
/// the (possibly long) build runs under the slot's own `OnceLock`, so
/// two workers racing on the same key serialize while other keys
/// proceed. Failures are cached as rendered strings ([`Error`] is not
/// `Clone`) and resurface as [`Error::Store`].
type Slot<T> = Arc<OnceLock<Result<T, String>>>;

fn slot_of<K: Eq + Hash, T>(map: &Mutex<HashMap<K, Slot<T>>>, key: K) -> Slot<T> {
    map.lock().unwrap().entry(key).or_default().clone()
}

/// A content-canonicalized trace: the id is shared by every trace key
/// whose built trace came out byte-identical, and indexes the
/// simulation cache.
type CanonTrace = (u64, Arc<PackedTrace>);

/// An IL build slot (infallible — `Benchmark::build` cannot fail).
type IlSlot = Arc<OnceLock<Arc<Program<Vreg>>>>;
/// Memoized simulation result: statistics, fast-forward counters, and
/// (for sharded runs) the shard report, keyed by (canonical trace id,
/// rendered configuration + window plan).
type SimSlot = Slot<(SimStats, FastForward, Option<ShardReport>)>;

/// The thread-safe, `Arc`-sharing memoization layer described in the
/// [module docs](self).
///
/// # Example
///
/// ```
/// use mcl_bench::store::{TraceRequest, TraceStore};
/// use mcl_core::ProcessorConfig;
/// use mcl_sched::SchedulerKind;
/// use mcl_workloads::Benchmark;
///
/// let store = TraceStore::new();
/// let req = TraceRequest::new(Benchmark::Compress, 40, SchedulerKind::Local);
/// let cfg = ProcessorConfig::dual_cluster_8way();
/// let first = store.sim(&req, &cfg)?;
/// let again = store.sim(&req, &cfg)?;
/// assert_eq!(first.stats, again.stats);
/// assert_eq!(store.counters().sim_misses, 1);
/// assert_eq!(store.counters().sim_hits, 1);
/// # Ok::<(), mcl_bench::Error>(())
/// ```
pub struct TraceStore {
    /// The register-to-cluster assignment every experiment uses (the
    /// paper's even/odd split with SP/GP global).
    assignment: RegisterAssignment,
    /// Time-window sharding applied to fresh simulations
    /// (`shards == 1`, the default, is exactly the serial path; see
    /// `mcl_core::shard` for the contract).
    shard_opts: ShardOptions,
    ils: Mutex<HashMap<IlKey, IlSlot>>,
    prepared: Mutex<HashMap<IlKey, Slot<Arc<PreparedIl>>>>,
    traces: Mutex<HashMap<TraceKey, Slot<CanonTrace>>>,
    /// Content hash → canonical traces with that hash (a bucket per
    /// hash; contents are compared on insert, so colliding hashes stay
    /// correct).
    canonical: Mutex<HashMap<u64, Vec<CanonTrace>>>,
    next_content_id: AtomicU64,
    sims: Mutex<HashMap<(u64, String), SimSlot>>,
    /// The optional crash-safe on-disk result cache consulted when the
    /// in-process memo misses (serial products only; see
    /// [`TraceStore::with_persist`]).
    persist: Option<Arc<PersistStore>>,
    trace_hits: AtomicU64,
    trace_misses: AtomicU64,
    sim_hits: AtomicU64,
    sim_misses: AtomicU64,
}

impl Default for TraceStore {
    fn default() -> TraceStore {
        TraceStore::new()
    }
}

impl TraceStore {
    /// An empty store targeting the paper's dual-cluster register
    /// assignment.
    #[must_use]
    pub fn new() -> TraceStore {
        TraceStore {
            assignment: RegisterAssignment::even_odd_with_default_globals(2),
            shard_opts: ShardOptions::new(1),
            ils: Mutex::new(HashMap::new()),
            prepared: Mutex::new(HashMap::new()),
            traces: Mutex::new(HashMap::new()),
            canonical: Mutex::new(HashMap::new()),
            next_content_id: AtomicU64::new(0),
            sims: Mutex::new(HashMap::new()),
            persist: None,
            trace_hits: AtomicU64::new(0),
            trace_misses: AtomicU64::new(0),
            sim_hits: AtomicU64::new(0),
            sim_misses: AtomicU64::new(0),
        }
    }

    /// Sets the time-window shard count applied to fresh simulations
    /// (1 = serial, the default). Sharded results are memoized under
    /// their (trace, config, window plan) key, so one store can serve
    /// sharded and serial requests without mixing them up.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> TraceStore {
        self.shard_opts = ShardOptions::new(shards.max(1));
        self
    }

    /// The shard count fresh simulations run under.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shard_opts.shards
    }

    /// Attaches a persistent on-disk result store (`repro --store DIR`).
    /// When the in-process memo misses on a *serial* simulation (one
    /// planned window — sharded products depend on the window plan and
    /// are not persisted), the disk store is consulted before
    /// simulating, and fresh results are written back. Disk serves are
    /// not "fresh": they simulated nothing this run.
    #[must_use]
    pub fn with_persist(mut self, persist: Arc<PersistStore>) -> TraceStore {
        self.persist = Some(persist);
        self
    }

    /// The attached persistent store, if any.
    #[must_use]
    pub fn persist(&self) -> Option<&Arc<PersistStore>> {
        self.persist.as_ref()
    }

    /// The register assignment the store schedules for.
    #[must_use]
    pub fn assignment(&self) -> &RegisterAssignment {
        &self.assignment
    }

    /// A snapshot of the hit/miss counters.
    #[must_use]
    pub fn counters(&self) -> StoreCounters {
        let disk = self.persist.as_deref().map(PersistStore::counters).unwrap_or_default();
        StoreCounters {
            trace_hits: self.trace_hits.load(Ordering::Relaxed),
            trace_misses: self.trace_misses.load(Ordering::Relaxed),
            sim_hits: self.sim_hits.load(Ordering::Relaxed),
            sim_misses: self.sim_misses.load(Ordering::Relaxed),
            disk_hits: disk.hits,
            disk_misses: disk.misses,
            disk_stores: disk.stores,
            disk_evictions: disk.evictions,
            disk_quarantined: disk.quarantined,
        }
    }

    /// The shared intermediate-language program of a benchmark at a
    /// scale (no unrolling).
    #[must_use]
    pub fn il(&self, bench: Benchmark, scale: u32) -> Arc<Program<Vreg>> {
        self.il_at(IlKey { bench, scale, unroll: 1 })
    }

    fn il_at(&self, key: IlKey) -> Arc<Program<Vreg>> {
        let slot = {
            self.ils.lock().unwrap().entry(key).or_default().clone()
        };
        slot.get_or_init(|| {
            if key.unroll > 1 {
                let base = self.il_at(IlKey { unroll: 1, ..key });
                Arc::new(unroll_self_loops(&base, key.unroll))
            } else {
                Arc::new(key.bench.build(key.scale))
            }
        })
        .clone()
    }

    /// The shared prepared (prepass-scheduled + profiled) form of an IL
    /// program — the scheduler-kind-independent half of the pipeline.
    fn prepared_at(&self, key: IlKey) -> Result<Arc<PreparedIl>, Error> {
        let slot = slot_of(&self.prepared, key);
        slot.get_or_init(|| {
            let il = self.il_at(key);
            // The kind is irrelevant to `prepare`; options are defaults.
            SchedulePipeline::new(SchedulerKind::Naive, &self.assignment)
                .prepare(&il)
                .map(Arc::new)
                .map_err(|e| e.to_string())
        })
        .clone()
        .map_err(Error::Store)
    }

    /// The shared packed trace for a request, plus the seconds this call
    /// spent (build time on a miss, ~0 on a hit, wait time when another
    /// worker is mid-build).
    ///
    /// # Errors
    ///
    /// Scheduling or trace-generation failures surface as
    /// [`Error::Store`] (identically on every call for the same key).
    pub fn trace(&self, req: &TraceRequest) -> Result<(Arc<PackedTrace>, f64), Error> {
        let ((_, trace), phases) = self.canon_trace(req)?;
        Ok((trace, phases.total_seconds))
    }

    /// Like [`TraceStore::trace`], but with the full phase breakdown.
    ///
    /// # Errors
    ///
    /// See [`TraceStore::trace`].
    pub fn trace_with_phases(
        &self,
        req: &TraceRequest,
    ) -> Result<(Arc<PackedTrace>, TracePhases), Error> {
        let ((_, trace), phases) = self.canon_trace(req)?;
        Ok((trace, phases))
    }

    fn canon_trace(&self, req: &TraceRequest) -> Result<(CanonTrace, TracePhases), Error> {
        let start = Instant::now();
        let key = req.key();
        let slot = slot_of(&self.traces, key);
        let mut built = false;
        let mut phases = TracePhases::default();
        let result = slot.get_or_init(|| {
            built = true;
            let _flight = crate::flight::span("store", || {
                format!("trace-build {}/{:?}", req.bench.name(), req.kind)
            });
            self.build_trace(key, &mut phases).map(|trace| self.canonicalize(trace))
        });
        if built {
            self.trace_misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.trace_hits.fetch_add(1, Ordering::Relaxed);
        }
        let canon = result.clone().map_err(Error::Store)?;
        phases.total_seconds = start.elapsed().as_secs_f64();
        Ok((canon, phases))
    }

    /// Folds a freshly built trace into the content-addressed pool:
    /// byte-identical traces share one buffer and one content id.
    fn canonicalize(&self, trace: PackedTrace) -> CanonTrace {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        trace.hash(&mut hasher);
        let digest = hasher.finish();
        let mut pool = self.canonical.lock().unwrap();
        let bucket = pool.entry(digest).or_default();
        if let Some(existing) = bucket.iter().find(|(_, t)| **t == trace) {
            return existing.clone();
        }
        let entry = (self.next_content_id.fetch_add(1, Ordering::Relaxed), Arc::new(trace));
        bucket.push(entry.clone());
        entry
    }

    fn build_trace(&self, key: TraceKey, phases: &mut TracePhases) -> Result<PackedTrace, String> {
        // Force the stages one at a time so their costs separate; each
        // is memoized, so a phase another request already built (or is
        // building) reports only the lookup/wait time here.
        let t_il = Instant::now();
        let _ = self.il_at(key.il);
        phases.il_seconds = t_il.elapsed().as_secs_f64();
        let t_prepass = Instant::now();
        let prepared = self.prepared_at(key.il).map_err(|e| e.to_string())?;
        phases.prepass_seconds = t_prepass.elapsed().as_secs_f64();
        let t_schedule = Instant::now();
        let options = ScheduleOptions {
            imbalance_threshold: f64::from_bits(key.threshold_bits),
            ..ScheduleOptions::default()
        };
        let scheduled = SchedulePipeline::new(key.kind, &self.assignment)
            .with_options(options)
            .run_prepared(&prepared)
            .map_err(|e| e.to_string())?;
        let hint = dynamic_len_estimate(&scheduled.program, prepared.profile());
        let (trace, _) =
            trace_program_packed(&scheduled.program, hint).map_err(|e| e.to_string())?;
        phases.schedule_seconds = t_schedule.elapsed().as_secs_f64();
        Ok(trace)
    }

    /// Simulates a request's trace under `config`, serving memoized
    /// statistics when the identical (trace, configuration) pair already
    /// ran. Use only for statistics — the cached result has no event
    /// log.
    ///
    /// # Errors
    ///
    /// See [`TraceStore::trace`]; simulation failures also surface as
    /// [`Error::Store`].
    pub fn sim(&self, req: &TraceRequest, config: &ProcessorConfig) -> Result<SimProduct, Error> {
        self.sim_with(req, config, &self.shard_opts)
    }

    /// Like [`TraceStore::sim`], but always simulating serially
    /// regardless of the store's shard count. The instrumented
    /// companion runs behind `--obs` and `repro explain` cross-check
    /// against this: probes force single-stepping, so the comparison
    /// baseline must be the serial statistics even on a sharded store.
    ///
    /// # Errors
    ///
    /// See [`TraceStore::sim`].
    pub fn sim_serial(
        &self,
        req: &TraceRequest,
        config: &ProcessorConfig,
    ) -> Result<SimProduct, Error> {
        self.sim_with(req, config, &ShardOptions::new(1))
    }

    fn sim_with(
        &self,
        req: &TraceRequest,
        config: &ProcessorConfig,
        shard_opts: &ShardOptions,
    ) -> Result<SimProduct, Error> {
        let ((content_id, trace), phases) = self.canon_trace(req)?;
        let start = Instant::now();
        // `ProcessorConfig` is not `Hash`; its derived `Debug` rendering
        // covers every field and so is a faithful key. Keying on the
        // content id (not the trace key) lets distinct requests whose
        // traces came out identical share one simulation. The window
        // plan is part of the key: a sharded product never masquerades
        // as the serial one (and a plan that resolves to one window —
        // short trace, `--shards 1` — shares the serial entry exactly).
        let windows = planned_windows(config, trace.len(), shard_opts);
        let sim_key = if windows <= 1 {
            format!("{config:?}")
        } else {
            format!("{config:?}|windows={windows}")
        };
        let slot = slot_of(&self.sims, (content_id, sim_key.clone()));
        let mut built = false;
        let mut disk_served = false;
        let result = slot.get_or_init(|| {
            built = true;
            if windows <= 1 {
                // Serial products are content-addressed on disk: consult
                // the persistent store before simulating, write back
                // after a fresh success. A corrupt or missing entry is a
                // plain miss (the store quarantines internally), never
                // an error.
                let persist_key = self
                    .persist
                    .as_deref()
                    .map(|p| (p, persist::EntryKey::of(&trace, &sim_key)));
                if let Some((p, ekey)) = &persist_key {
                    if let Some((stats, ff)) = p.load(ekey) {
                        disk_served = true;
                        return Ok((stats, ff, None));
                    }
                }
                let _flight = crate::flight::span("sim", || {
                    format!("simulate {}/{:?}", req.bench.name(), req.kind)
                });
                let result = Processor::new(config.clone())
                    .run_packed(&trace)
                    .map(|r| (r.stats, r.ff, None))
                    .map_err(|e| e.to_string());
                if let (Some((p, ekey)), Ok((stats, ff, _))) = (&persist_key, &result) {
                    p.store(ekey, stats, ff);
                }
                result
            } else {
                let _flight = crate::flight::span("sim", || {
                    format!("simulate {}/{:?} sharded x{windows}", req.bench.name(), req.kind)
                });
                let shard_epoch = Instant::now();
                let result = Processor::new(config.clone())
                    .run_sharded(&trace, shard_opts)
                    .map(|(r, report)| (r.stats, r.ff, Some(report)))
                    .map_err(|e| e.to_string());
                // Replay the shard workers' measured window schedule
                // into the flight recording, one lane per window. Only
                // fresh runs reach this closure, so cached serves never
                // replay a stale timeline.
                if let Ok((_, _, Some(report))) = &result {
                    for t in &report.timeline {
                        let lane = 1000 + t.window as u64;
                        crate::flight::span_at(
                            "shard",
                            || format!("warmup w{}", t.window),
                            shard_epoch,
                            t.start_seconds,
                            t.warmup_seconds,
                            lane,
                        );
                        crate::flight::span_at(
                            "shard",
                            || format!("window w{}", t.window),
                            shard_epoch,
                            t.start_seconds + t.warmup_seconds,
                            t.sim_seconds,
                            lane,
                        );
                    }
                }
                result
            }
        });
        if built {
            self.sim_misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.sim_hits.fetch_add(1, Ordering::Relaxed);
            crate::flight::instant("store", || {
                format!("sim-hit {}/{:?}", req.bench.name(), req.kind)
            });
        }
        let (stats, ff, shard) = result.clone().map_err(Error::Store)?;
        Ok(SimProduct {
            stats,
            // A disk serve simulated nothing this run: throughput
            // accounting must not credit its cycles to this call.
            fresh: built && !disk_served,
            ff,
            trace_build_seconds: phases.total_seconds,
            simulate_seconds: start.elapsed().as_secs_f64(),
            phases,
            shard,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_requests_share_one_trace() {
        let store = TraceStore::new();
        let req = TraceRequest::new(Benchmark::Compress, 40, SchedulerKind::Local);
        let (a, _) = store.trace(&req).unwrap();
        let (b, _) = store.trace(&req).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second request must be served the same buffer");
        let c = store.counters();
        assert_eq!((c.trace_hits, c.trace_misses), (1, 1));
    }

    #[test]
    fn default_threshold_and_explicit_default_share_a_key() {
        let store = TraceStore::new();
        let req = TraceRequest::new(Benchmark::Compress, 40, SchedulerKind::Local);
        let (a, _) = store.trace(&req).unwrap();
        let (b, _) = store.trace(&req.with_threshold(default_threshold())).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        // Unroll factor 1 is "no unrolling" and also shares the entry.
        let (c, _) = store.trace(&req.with_unroll(1)).unwrap();
        assert!(Arc::ptr_eq(&a, &c));
        // A genuinely different threshold does not.
        let (d, _) = store.trace(&req.with_threshold(32.0)).unwrap();
        assert!(!Arc::ptr_eq(&a, &d));
    }

    #[test]
    fn threshold_is_ignored_for_threshold_blind_kinds() {
        let store = TraceStore::new();
        let req = TraceRequest::new(Benchmark::Compress, 40, SchedulerKind::Naive);
        let (a, _) = store.trace(&req).unwrap();
        let (b, _) = store.trace(&req.with_threshold(32.0)).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn store_trace_matches_direct_pipeline() {
        let bench = Benchmark::Compress;
        let scale = 40;
        let store = TraceStore::new();
        let (packed, _) = store
            .trace(&TraceRequest::new(bench, scale, SchedulerKind::Local))
            .unwrap();
        let direct = crate::schedule_and_trace(
            &bench.build(scale),
            SchedulerKind::Local,
            store.assignment(),
            None,
        )
        .unwrap();
        assert_eq!(packed.to_ops(), direct);
    }

    #[test]
    fn identical_content_shares_buffer_and_simulation() {
        // Compress has no self-loops the unroller changes, so the
        // unrolled request builds under a different key but produces a
        // byte-identical trace — canonicalization must collapse them.
        let store = TraceStore::new();
        let base = TraceRequest::new(Benchmark::Compress, 40, SchedulerKind::Local);
        let cfg = ProcessorConfig::dual_cluster_8way();
        let first = store.sim(&base, &cfg).unwrap();
        let unrolled = store.sim(&base.with_unroll(2), &cfg).unwrap();
        assert_eq!(first.stats, unrolled.stats);
        let (a, _) = store.trace(&base).unwrap();
        let (b, _) = store.trace(&base.with_unroll(2)).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "identical contents must share one buffer");
        let c = store.counters();
        // Both trace requests were misses (each built), but the second
        // simulation was served from the content-keyed cache.
        assert_eq!((c.sim_hits, c.sim_misses), (1, 1));
    }

    #[test]
    fn phase_breakdown_attributes_only_the_building_call() {
        let store = TraceStore::new();
        let req = TraceRequest::new(Benchmark::Compress, 40, SchedulerKind::Local);
        let (_, built) = store.trace_with_phases(&req).unwrap();
        assert!(built.schedule_seconds > 0.0, "the building call times its phases");
        assert!(
            built.total_seconds
                >= built.il_seconds + built.prepass_seconds + built.schedule_seconds,
            "total covers the phases: {built:?}"
        );
        // A store hit reports no phase work, only (tiny) total wait.
        let (_, hit) = store.trace_with_phases(&req).unwrap();
        assert_eq!(hit.il_seconds, 0.0);
        assert_eq!(hit.prepass_seconds, 0.0);
        assert_eq!(hit.schedule_seconds, 0.0);
        // And the sim product carries the same breakdown.
        let product = store.sim(&req, &ProcessorConfig::dual_cluster_8way()).unwrap();
        assert_eq!(product.trace_build_seconds, product.phases.total_seconds);
    }

    #[test]
    fn persistent_store_serves_identical_stats_across_processes() {
        // Two TraceStores sharing one disk store model two `repro`
        // invocations: the first (cold) simulates and persists, the
        // second (warm) serves from disk without simulating.
        let dir = std::env::temp_dir()
            .join(format!("mcl-store-persist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let persist = Arc::new(crate::persist::PersistStore::open(&dir).unwrap());
        let req = TraceRequest::new(Benchmark::Compress, 40, SchedulerKind::Local);
        let cfg = ProcessorConfig::dual_cluster_8way();

        let cold_store = TraceStore::new().with_persist(Arc::clone(&persist));
        let cold = cold_store.sim(&req, &cfg).unwrap();
        assert!(cold.fresh, "cold run simulates");
        let c = cold_store.counters();
        assert_eq!((c.disk_hits, c.disk_misses, c.disk_stores), (0, 1, 1));

        let warm_store = TraceStore::new().with_persist(Arc::clone(&persist));
        let warm = warm_store.sim(&req, &cfg).unwrap();
        assert_eq!(cold.stats, warm.stats, "disk serve is byte-identical");
        assert_eq!(cold.ff, warm.ff, "fast-forward counters persist too");
        assert!(!warm.fresh, "a disk serve simulated nothing this run");
        let w = warm_store.counters();
        assert_eq!((w.disk_hits, w.disk_misses, w.disk_stores), (1, 1, 1));
        // And the in-process memo still serves repeats without touching
        // the disk again.
        let again = warm_store.sim(&req, &cfg).unwrap();
        assert_eq!(again.stats, warm.stats);
        assert_eq!(warm_store.counters().disk_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cached_sim_equals_fresh_sim() {
        let store = TraceStore::new();
        let req = TraceRequest::new(Benchmark::Compress, 40, SchedulerKind::Local);
        let cfg = ProcessorConfig::dual_cluster_8way();
        let first = store.sim(&req, &cfg).unwrap();
        let cached = store.sim(&req, &cfg).unwrap();
        assert_eq!(first.stats, cached.stats);
        assert!(first.fresh, "the first serve runs the simulator");
        assert!(!cached.fresh, "the second serve is a cache hit");
        assert_eq!(first.ff, cached.ff, "cached serves report the original run's counters");
        let fresh = crate::simulate(
            &cfg,
            &store.trace(&req).unwrap().0.to_ops(),
        )
        .unwrap();
        assert_eq!(first.stats, fresh);
        let c = store.counters();
        assert_eq!((c.sim_hits, c.sim_misses), (1, 1));
    }
}
