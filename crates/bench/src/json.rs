//! A minimal hand-rolled JSON emitter and parser.
//!
//! The build has no registry access, so `serde_json` is unavailable;
//! the benchmark driver needs to *write* small reports
//! (`BENCH_repro.json`, the `--obs` exports) and to *read them back*
//! for validation (`repro obs-validate` and the export tests). This
//! module covers both: objects, arrays, strings, numbers, booleans and
//! null, plus a recursive-descent [`Json::parse`].

use std::fmt::Write as _;

/// A JSON value under construction.
#[derive(Debug, Clone)]
pub enum Json {
    /// A string (escaped on render).
    Str(String),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer (non-negative integers parse as
    /// [`Json::U64`]; this variant carries signed values like the
    /// pipetrace slip deltas exactly, where a float would).
    I64(i64),
    /// A finite float (rendered with six decimal places; NaN and
    /// infinities render as `null`, which JSON has no number for).
    F64(f64),
    /// A boolean.
    Bool(bool),
    /// The null value.
    Null,
    /// An ordered list of values.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Maximum container nesting depth [`Json::parse`] accepts. The
    /// parser is recursive, so unbounded nesting would overflow the
    /// host stack on adversarial input; the deepest document this crate
    /// ever emits nests four levels, so 128 is generous without
    /// letting a corrupt file take the process down.
    pub const MAX_DEPTH: usize = 128;

    /// An empty object.
    #[must_use]
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Adds a field to an object (panics on non-objects — emitter
    /// misuse is a programming error, not input-dependent).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn field(&mut self, key: &str, value: Json) -> &mut Json {
        let Json::Object(fields) = self else { panic!("field() on a non-object") };
        fields.push((key.to_owned(), value));
        self
    }

    /// Parses a JSON document (the inverse of [`Json::render`]).
    ///
    /// Integers without a fraction or exponent that fit a `u64` become
    /// [`Json::U64`]; every other number becomes [`Json::F64`].
    /// Duplicate object keys are kept in order (accessors return the
    /// first). Containers nested deeper than [`Json::MAX_DEPTH`] are
    /// rejected.
    ///
    /// # Errors
    ///
    /// Returns a message with a byte offset when the input is not valid
    /// JSON, nests too deep, or has trailing content.
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0, depth: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing content at byte {}", p.pos));
        }
        Ok(value)
    }

    /// The value of an object field, if `self` is an object having it.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements, if `self` is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if `self` is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer value, if `self` is an integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The signed integer value, if `self` is an integer that fits.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::U64(v) => i64::try_from(*v).ok(),
            Json::I64(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric value (integer or float), if `self` is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(v) => Some(*v as f64),
            Json::I64(v) => Some(*v as f64),
            Json::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The boolean value, if `self` is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// Renders the value as compact JSON.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Str(s) => write_escaped(s, out),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v:.6}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            Json::Null => out.push_str("null"),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::U64(v)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        match u64::try_from(v) {
            Ok(u) => Json::U64(u),
            Err(_) => Json::I64(v),
        }
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::F64(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

/// Recursive-descent parser state over the input bytes.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Current container nesting depth, bounded by [`Json::MAX_DEPTH`].
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') if self.eat_literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected value at byte {}", self.pos)),
        }
    }

    /// Bumps the nesting depth on container entry (the matching
    /// decrement lives in the [`Parser::object`]/[`Parser::array`]
    /// wrappers).
    fn descend(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > Json::MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {} levels at byte {}",
                Json::MAX_DEPTH,
                self.pos
            ));
        }
        Ok(())
    }

    fn object(&mut self) -> Result<Json, String> {
        self.descend()?;
        let value = self.object_body();
        self.depth -= 1;
        value
    }

    fn array(&mut self) -> Result<Json, String> {
        self.descend()?;
        let value = self.array_body();
        self.depth -= 1;
        value
    }

    fn object_body(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array_body(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {start}"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {start}"))?;
                            // Surrogates are not paired (the emitter
                            // never writes them); map them to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {start}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // byte boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
            if text.starts_with('-') {
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Json::I64(v));
                }
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_report_shape() {
        let mut cell = Json::object();
        cell.field("id", "table2/compress".into())
            .field("cycles", 1234u64.into())
            .field("wall_seconds", 0.5f64.into());
        let mut report = Json::object();
        report.field("jobs", 8u64.into()).field("cells", Json::Array(vec![cell]));
        assert_eq!(
            report.render(),
            "{\"jobs\":8,\"cells\":[{\"id\":\"table2/compress\",\
             \"cycles\":1234,\"wall_seconds\":0.500000}]}"
        );
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(Json::Str("a\"b\\c\nd\u{1}".into()).render(), r#""a\"b\\c\nd\u0001""#);
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(Json::F64(f64::NAN).render(), "null");
        assert_eq!(Json::F64(f64::INFINITY).render(), "null");
    }

    #[test]
    fn booleans_and_null_render_bare() {
        let mut obj = Json::object();
        obj.field("ok", true.into()).field("bad", false.into()).field("missing", Json::Null);
        assert_eq!(obj.render(), "{\"ok\":true,\"bad\":false,\"missing\":null}");
    }

    #[test]
    fn parse_round_trips_the_report_shape() {
        let text = "{\"jobs\":8,\"ratio\":0.125000,\"ok\":true,\"err\":null,\
                    \"cells\":[{\"id\":\"table2/compress\",\"cycles\":1234}]}";
        let v = Json::parse(text).expect("parses");
        assert_eq!(v.get("jobs").and_then(Json::as_u64), Some(8));
        assert_eq!(v.get("ratio").and_then(Json::as_f64), Some(0.125));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert!(matches!(v.get("err"), Some(Json::Null)));
        let cells = v.get("cells").and_then(Json::as_array).expect("array");
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].get("id").and_then(Json::as_str), Some("table2/compress"));
        // Re-render equals the input (the emitter's own formatting).
        assert_eq!(v.render(), text.replace(char::is_whitespace, ""));
    }

    #[test]
    fn parse_handles_escapes_and_whitespace() {
        let v = Json::parse(" { \"a\\n\\\"b\" : [ 1 , -2.5e1 , \"\\u0041\" ] } ").expect("parses");
        let items = v.get("a\n\"b").and_then(Json::as_array).expect("array");
        assert_eq!(items[0].as_u64(), Some(1));
        assert_eq!(items[1].as_f64(), Some(-25.0));
        assert_eq!(items[2].as_str(), Some("A"));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "tru", "\"open", "{} trailing", "12x"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn duplicate_keys_are_kept_in_order_and_get_returns_the_first() {
        let v = Json::parse("{\"k\":1,\"other\":true,\"k\":2}").expect("parses");
        assert_eq!(v.get("k").and_then(Json::as_u64), Some(1), "get() returns the first");
        let Json::Object(fields) = &v else { panic!("object") };
        assert_eq!(fields.len(), 3, "duplicates are kept, not merged");
        assert_eq!(fields[2].0, "k");
        assert_eq!(fields[2].1.as_u64(), Some(2));
    }

    #[test]
    fn nesting_at_the_depth_limit_parses_and_one_past_is_rejected() {
        let nest = |n: usize| format!("{}1{}", "[".repeat(n), "]".repeat(n));
        assert!(Json::parse(&nest(Json::MAX_DEPTH)).is_ok());
        let err = Json::parse(&nest(Json::MAX_DEPTH + 1)).expect_err("rejected");
        assert!(err.contains("nesting deeper than"), "{err}");
        // Objects count against the same budget as arrays.
        let objects =
            format!("{}1{}", "{\"k\":[".repeat(70), "]}".repeat(70));
        let err = Json::parse(&objects).expect_err("140 levels rejected");
        assert!(err.contains("nesting deeper than"), "{err}");
        // Depth is nesting, not sibling count: a long flat array is fine.
        let flat = format!("[{}1]", "1,".repeat(10_000));
        assert!(Json::parse(&flat).is_ok());
    }

    #[test]
    fn lone_surrogate_escapes_decode_as_replacement_characters() {
        // A lone high surrogate is not a scalar value; the parser maps
        // it to U+FFFD rather than erroring (the emitter never writes
        // surrogates, so anything goes on the lenient side).
        assert_eq!(Json::parse("\"\\ud800\"").unwrap().as_str(), Some("\u{fffd}"));
        // Surrogate *pairs* are not combined either: each half decodes
        // independently to U+FFFD.
        assert_eq!(
            Json::parse("\"\\ud83d\\ude00\"").unwrap().as_str(),
            Some("\u{fffd}\u{fffd}")
        );
        // Truncated or non-hex escapes are hard errors, not U+FFFD.
        assert!(Json::parse("\"\\u12\"").is_err());
        assert!(Json::parse("\"\\uzzzz\"").is_err());
    }

    #[test]
    fn numbers_beyond_u64_fall_back_to_floats() {
        // u64::MAX still parses as an integer...
        assert_eq!(Json::parse("18446744073709551615").unwrap().as_u64(), Some(u64::MAX));
        // ...one past it overflows to a float, not an error.
        let over = Json::parse("18446744073709551616").expect("parses");
        assert!(over.as_u64().is_none());
        assert!(matches!(over, Json::F64(_)));
        // Negative integers keep exact signed representation.
        assert!(matches!(Json::parse("-3").unwrap(), Json::I64(-3)));
        assert_eq!(Json::parse("-3").unwrap().as_f64(), Some(-3.0));
        assert_eq!(Json::parse("-3").unwrap().as_i64(), Some(-3));
        assert_eq!(Json::parse("-3").unwrap().render(), "-3");
        assert_eq!(Json::from(-7i64).render(), "-7");
        // Non-negative i64 inputs normalize to the unsigned variant.
        assert!(matches!(Json::from(7i64), Json::U64(7)));
        // One below i64::MIN overflows to a float.
        assert!(matches!(Json::parse("-9223372036854775809").unwrap(), Json::F64(_)));
        // An exponent beyond f64's range parses as infinity — which
        // re-renders as null, like every non-finite float.
        let huge = Json::parse("1e999").expect("parses");
        assert_eq!(huge.as_f64(), Some(f64::INFINITY));
        assert_eq!(huge.render(), "null");
    }
}
