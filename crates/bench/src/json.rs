//! A minimal hand-rolled JSON emitter.
//!
//! The build has no registry access, so `serde_json` is unavailable;
//! the benchmark driver only ever needs to *write* one small report
//! (`BENCH_repro.json`), which this module covers: objects, arrays,
//! strings, integers, and finite floats.

use std::fmt::Write as _;

/// A JSON value under construction.
#[derive(Debug, Clone)]
pub enum Json {
    /// A string (escaped on render).
    Str(String),
    /// An integer.
    U64(u64),
    /// A finite float (rendered with six decimal places; NaN and
    /// infinities render as `null`, which JSON has no number for).
    F64(f64),
    /// A boolean.
    Bool(bool),
    /// The null value.
    Null,
    /// An ordered list of values.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    #[must_use]
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Adds a field to an object (panics on non-objects — emitter
    /// misuse is a programming error, not input-dependent).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn field(&mut self, key: &str, value: Json) -> &mut Json {
        let Json::Object(fields) = self else { panic!("field() on a non-object") };
        fields.push((key.to_owned(), value));
        self
    }

    /// Renders the value as compact JSON.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Str(s) => write_escaped(s, out),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v:.6}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            Json::Null => out.push_str("null"),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::U64(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::F64(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_report_shape() {
        let mut cell = Json::object();
        cell.field("id", "table2/compress".into())
            .field("cycles", 1234u64.into())
            .field("wall_seconds", 0.5f64.into());
        let mut report = Json::object();
        report.field("jobs", 8u64.into()).field("cells", Json::Array(vec![cell]));
        assert_eq!(
            report.render(),
            "{\"jobs\":8,\"cells\":[{\"id\":\"table2/compress\",\
             \"cycles\":1234,\"wall_seconds\":0.500000}]}"
        );
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(Json::Str("a\"b\\c\nd\u{1}".into()).render(), r#""a\"b\\c\nd\u0001""#);
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(Json::F64(f64::NAN).render(), "null");
        assert_eq!(Json::F64(f64::INFINITY).render(), "null");
    }

    #[test]
    fn booleans_and_null_render_bare() {
        let mut obj = Json::object();
        obj.field("ok", true.into()).field("bad", false.into()).field("missing", Json::Null);
        assert_eq!(obj.render(), "{\"ok\":true,\"bad\":false,\"missing\":null}");
    }
}
