//! Parallel experiment driver.
//!
//! Every `repro` experiment expands into independent *cells* — one
//! (workload, configuration) unit each, typically "one benchmark of one
//! experiment". Cells run on a [`std::thread::scope`] worker pool that
//! claims work by atomic index, and results land in per-cell slots, so
//! collection order equals submission order regardless of which worker
//! finished first. Rendering happens after collection, which is what
//! makes `--jobs N` output byte-identical to a serial run.
//!
//! The pool also records per-cell wall time, simulated cycles, and the
//! trace-build/simulate split reported by the cells (see [`CellCost`]);
//! the driver writes them to `BENCH_repro.json` via [`report_json`].
//!
//! Cells are fault-isolated: each runs under [`std::panic::catch_unwind`],
//! so one panicking cell cannot take down its worker thread or the whole
//! run. [`run_cells`] turns the first failure (by cell order) into an
//! error as before; [`run_cells_isolated`] instead records a per-cell
//! [`CellStatus`] and returns every payload that survived, which is what
//! `repro --keep-going` builds on.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use mcl_core::FastForward;

use crate::json::Json;
use crate::store::{SimProduct, StoreCounters};
use crate::Error;

/// What one cell spent: simulated cycles it accounted for, and its wall
/// time split into trace building (scheduling + VM interpretation,
/// including time spent waiting on or hitting the shared trace store)
/// and cycle-level simulation. Trace building further splits into the
/// host-side phase timers of [`crate::store::TracePhases`] — IL build,
/// prepass, cluster scheduling — which are nonzero only for the cell
/// whose store call actually built that stage.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CellCost {
    /// Cycles the cell actually simulated this run (0 for cells that
    /// only render static material). Cycles served from the memoized
    /// sim cache land in [`CellCost::cached_simulated_cycles`] instead,
    /// so throughput aggregates divide real work by real wall time.
    pub simulated_cycles: u64,
    /// Cycles whose statistics were served from the sim cache without
    /// re-simulating.
    pub cached_simulated_cycles: u64,
    /// Dead-cycle fast-forward counters of the cell's fresh runs.
    pub ff: FastForward,
    /// Seconds spent obtaining traces (store hits cost ~0).
    pub trace_build_seconds: f64,
    /// Seconds spent in cycle-level simulation (store hits cost ~0).
    pub simulate_seconds: f64,
    /// Seconds spent building intermediate-language programs.
    pub il_build_seconds: f64,
    /// Seconds spent in the scheduler-independent prepass.
    pub prepass_seconds: f64,
    /// Seconds spent cluster-scheduling and packing traces.
    pub schedule_seconds: f64,
    /// Most parallel time windows any of this cell's fresh simulations
    /// ran under (0 = every simulation was serial).
    pub shard_windows: u64,
    /// Largest divergence bound reported by this cell's fresh sharded
    /// simulations (see `mcl_core::shard::ShardReport::divergence`).
    pub shard_divergence: f64,
    /// Fresh sharded simulations that fell back to the serial run.
    pub shard_fallbacks: u64,
    /// Seconds spent in shard warmup scans (summed over windows, which
    /// overlap across workers).
    pub warmup_seconds: f64,
}

impl CellCost {
    /// A cost accounting only simulated cycles (for cells that do not
    /// route work through the trace store).
    #[must_use]
    pub fn cycles(simulated_cycles: u64) -> CellCost {
        CellCost { simulated_cycles, ..CellCost::default() }
    }

    /// Accumulates another cost into this one.
    pub fn add(&mut self, other: &CellCost) {
        self.simulated_cycles += other.simulated_cycles;
        self.cached_simulated_cycles += other.cached_simulated_cycles;
        self.ff.add(&other.ff);
        self.trace_build_seconds += other.trace_build_seconds;
        self.simulate_seconds += other.simulate_seconds;
        self.il_build_seconds += other.il_build_seconds;
        self.prepass_seconds += other.prepass_seconds;
        self.schedule_seconds += other.schedule_seconds;
        self.shard_windows = self.shard_windows.max(other.shard_windows);
        self.shard_divergence = self.shard_divergence.max(other.shard_divergence);
        self.shard_fallbacks += other.shard_fallbacks;
        self.warmup_seconds += other.warmup_seconds;
    }

    /// Accumulates one store-served simulation: its cycles (routed to
    /// fresh or cached by whether the store actually simulated),
    /// wall-time split, phase breakdown, and (for sharded runs) shard
    /// telemetry.
    pub fn charge_sim(&mut self, product: &SimProduct) {
        if product.fresh {
            self.simulated_cycles += product.stats.cycles;
            self.ff.add(&product.ff);
            if let Some(report) = &product.shard {
                self.shard_windows = self.shard_windows.max(report.windows as u64);
                self.shard_divergence = self.shard_divergence.max(report.divergence);
                self.shard_fallbacks += u64::from(report.fell_back);
                self.warmup_seconds += report.warmup_seconds;
            }
        } else {
            self.cached_simulated_cycles += product.stats.cycles;
        }
        self.trace_build_seconds += product.trace_build_seconds;
        self.simulate_seconds += product.simulate_seconds;
        self.il_build_seconds += product.phases.il_seconds;
        self.prepass_seconds += product.phases.prepass_seconds;
        self.schedule_seconds += product.phases.schedule_seconds;
    }
}

/// One independent unit of work.
///
/// The closure returns its payload plus the [`CellCost`] it incurred.
pub struct Cell<R> {
    /// Stable identifier, e.g. `table2/compress`.
    pub id: String,
    /// The work itself.
    pub run: Box<dyn FnOnce() -> Result<(R, CellCost), Error> + Send>,
}

impl<R> Cell<R> {
    /// Convenience constructor.
    pub fn new(
        id: impl Into<String>,
        run: impl FnOnce() -> Result<(R, CellCost), Error> + Send + 'static,
    ) -> Cell<R> {
        Cell { id: id.into(), run: Box::new(run) }
    }
}

/// How one cell ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellStatus {
    /// The cell returned a payload.
    Ok,
    /// The cell returned an error (rendered).
    Error(String),
    /// The cell panicked; the payload message is rendered.
    Panicked(String),
}

impl CellStatus {
    /// The status name as written to `BENCH_repro.json`.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            CellStatus::Ok => "ok",
            CellStatus::Error(_) => "error",
            CellStatus::Panicked(_) => "panicked",
        }
    }

    /// The failure message, if any.
    #[must_use]
    pub fn message(&self) -> Option<&str> {
        match self {
            CellStatus::Ok => None,
            CellStatus::Error(m) | CellStatus::Panicked(m) => Some(m),
        }
    }
}

/// Timing record of one executed cell.
#[derive(Debug, Clone)]
pub struct CellMetric {
    /// The cell's identifier.
    pub id: String,
    /// How the cell ended.
    pub status: CellStatus,
    /// Wall-clock time the cell took on its worker.
    pub wall_seconds: f64,
    /// Whether the cell's wall time overran the `--watchdog` budget.
    /// Simulations past the budget are cancelled by the hard
    /// cooperative watchdog (surfacing as a failed cell); this flag
    /// additionally catches overruns outside the simulator's poll
    /// (trace building, rendering) and fails the run's exit code.
    pub watchdog_exceeded: bool,
    /// Cycles the cell actually simulated this run.
    pub simulated_cycles: u64,
    /// Cycles served from the memoized sim cache (no simulation work).
    pub cached_simulated_cycles: u64,
    /// Simulated cycles covered by dead-cycle fast-forward jumps.
    pub skipped_cycles: u64,
    /// Fast-forward jumps the cell's fresh runs took.
    pub ff_jumps: u64,
    /// Seconds the cell spent obtaining traces.
    pub trace_build_seconds: f64,
    /// Seconds the cell spent in cycle-level simulation.
    pub simulate_seconds: f64,
    /// Seconds the cell spent building IL programs.
    pub il_build_seconds: f64,
    /// Seconds the cell spent in the scheduler-independent prepass.
    pub prepass_seconds: f64,
    /// Seconds the cell spent cluster-scheduling and packing traces.
    pub schedule_seconds: f64,
    /// Most parallel time windows any of the cell's fresh simulations
    /// ran under (0 = all serial).
    pub shard_windows: u64,
    /// Largest divergence bound among the cell's fresh sharded
    /// simulations.
    pub shard_divergence: f64,
    /// Fresh sharded simulations that fell back to serial.
    pub shard_fallbacks: u64,
    /// Seconds the cell spent in shard warmup scans.
    pub warmup_seconds: f64,
}

impl CellMetric {
    /// Simulation throughput of this cell (cycles it actually simulated
    /// per wall-clock second). `None` when the cell simulated nothing —
    /// cache-served cycles are excluded, so a fully-cached or
    /// render-only cell has no throughput rather than a misleading 0
    /// (rendered as `null` in the report, and excluded from the
    /// aggregate throughput's denominator).
    #[must_use]
    pub fn cycles_per_second(&self) -> Option<f64> {
        if self.simulated_cycles > 0 && self.wall_seconds > 0.0 {
            Some(self.simulated_cycles as f64 / self.wall_seconds)
        } else {
            None
        }
    }
}

/// One finished cell, pre-collection: its id, outcome, and wall time.
type FinishedCell<R> = (String, Result<(R, CellCost), Error>, f64);

/// The default worker count: the machine's available parallelism.
#[must_use]
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
}

/// Renders a caught panic payload (the standard `&str` / `String`
/// payloads of `panic!`, or a placeholder for exotic ones).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Runs one cell with panic isolation; a panic becomes
/// [`Error::Panic`]. When `watchdog_seconds` is set, the cell runs
/// with the cooperative hard-watchdog deadline armed for its budget:
/// a runaway simulation is cancelled with a structured
/// `SimError::Timeout` instead of running to the cycle limit. The
/// guard is per-cell, so a timed-out cell never leaks its deadline
/// into the next one scheduled on the same worker.
fn execute_cell<R>(cell: Cell<R>, watchdog_seconds: Option<f64>) -> FinishedCell<R> {
    let Cell { id, run } = cell;
    let _watchdog = watchdog_seconds
        .filter(|s| *s > 0.0)
        .map(|s| mcl_core::watchdog::arm_for(std::time::Duration::from_secs_f64(s)));
    // One flight span per cell on the worker that ran it — with
    // `--flight` the whole `--jobs` schedule becomes visible.
    let _flight = crate::flight::span("cell", || id.clone());
    let start = Instant::now();
    let result = match catch_unwind(AssertUnwindSafe(run)) {
        Ok(result) => result,
        Err(payload) => {
            Err(Error::Panic { cell: id.clone(), message: panic_message(payload.as_ref()) })
        }
    };
    (id, result, start.elapsed().as_secs_f64())
}

/// Runs every cell (serially or on the worker pool) and returns the
/// outcomes in submission order, panics caught.
fn run_raw<R: Send>(
    jobs: usize,
    cells: Vec<Cell<R>>,
    watchdog_seconds: Option<f64>,
) -> Vec<FinishedCell<R>> {
    let n = cells.len();
    if jobs <= 1 || n <= 1 {
        return cells.into_iter().map(|c| execute_cell(c, watchdog_seconds)).collect();
    }
    let work: Vec<Mutex<Option<Cell<R>>>> =
        cells.into_iter().map(|c| Mutex::new(Some(c))).collect();
    let done: Vec<Mutex<Option<FinishedCell<R>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..jobs.min(n) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let cell = work[i].lock().unwrap().take().expect("each cell claimed once");
                *done[i].lock().unwrap() = Some(execute_cell(cell, watchdog_seconds));
            });
        }
    });
    done.into_iter().map(|slot| slot.into_inner().unwrap().expect("every cell ran")).collect()
}

/// Runs every cell and returns the payloads in cell order plus one
/// metric per cell (same order).
///
/// With `jobs <= 1` the cells run serially on the calling thread; with
/// more, a scoped worker pool claims cells by atomic index. Either way
/// the result order is the submission order, so callers can render
/// deterministically.
///
/// # Errors
///
/// Returns the error of the earliest (by cell order) failing cell — a
/// panicking cell counts as failing with [`Error::Panic`]. Unlike the
/// serial path, later cells may already have run by then; cells must
/// therefore be independent, which experiment cells are.
pub fn run_cells<R: Send>(
    jobs: usize,
    cells: Vec<Cell<R>>,
) -> Result<(Vec<R>, Vec<CellMetric>), Error> {
    let slots = run_raw(jobs, cells, None);
    let mut payloads = Vec::with_capacity(slots.len());
    let mut metrics = Vec::with_capacity(slots.len());
    for (id, result, wall_seconds) in slots {
        let (payload, cost) = result?;
        payloads.push(payload);
        metrics.push(CellMetric {
            id,
            status: CellStatus::Ok,
            wall_seconds,
            watchdog_exceeded: false,
            simulated_cycles: cost.simulated_cycles,
            cached_simulated_cycles: cost.cached_simulated_cycles,
            skipped_cycles: cost.ff.skipped_cycles,
            ff_jumps: cost.ff.jumps,
            trace_build_seconds: cost.trace_build_seconds,
            simulate_seconds: cost.simulate_seconds,
            il_build_seconds: cost.il_build_seconds,
            prepass_seconds: cost.prepass_seconds,
            schedule_seconds: cost.schedule_seconds,
            shard_windows: cost.shard_windows,
            shard_divergence: cost.shard_divergence,
            shard_fallbacks: cost.shard_fallbacks,
            warmup_seconds: cost.warmup_seconds,
        });
    }
    Ok((payloads, metrics))
}

/// Runs every cell with fault isolation: errors and panics are recorded
/// per cell instead of aborting the run.
///
/// Returns one payload slot per cell (`None` for failed cells) and one
/// metric per cell, both in submission order. `watchdog_seconds`, when
/// set, is enforced two ways: the *hard* cooperative watchdog arms the
/// budget as a per-cell deadline the simulator polls (a runaway
/// simulation is cancelled with `SimError::Timeout`, surfacing as a
/// failed cell), and the *soft* check additionally marks any cell whose
/// total wall time exceeded the budget — e.g. one that overran in trace
/// building or rendering, which the simulator's poll cannot see. Soft
/// overruns are recorded as `watchdog_exceeded`; the driver fails the
/// run's exit code on them.
#[must_use]
pub fn run_cells_isolated<R: Send>(
    jobs: usize,
    cells: Vec<Cell<R>>,
    watchdog_seconds: Option<f64>,
) -> (Vec<Option<R>>, Vec<CellMetric>) {
    let slots = run_raw(jobs, cells, watchdog_seconds);
    let mut payloads = Vec::with_capacity(slots.len());
    let mut metrics = Vec::with_capacity(slots.len());
    for (id, result, wall_seconds) in slots {
        let (payload, status, cost) = match result {
            Ok((payload, cost)) => (Some(payload), CellStatus::Ok, cost),
            Err(Error::Panic { message, .. }) => {
                (None, CellStatus::Panicked(message), CellCost::default())
            }
            Err(e) => (None, CellStatus::Error(e.to_string()), CellCost::default()),
        };
        payloads.push(payload);
        metrics.push(CellMetric {
            id,
            status,
            wall_seconds,
            watchdog_exceeded: watchdog_seconds.is_some_and(|limit| wall_seconds > limit),
            simulated_cycles: cost.simulated_cycles,
            cached_simulated_cycles: cost.cached_simulated_cycles,
            skipped_cycles: cost.ff.skipped_cycles,
            ff_jumps: cost.ff.jumps,
            trace_build_seconds: cost.trace_build_seconds,
            simulate_seconds: cost.simulate_seconds,
            il_build_seconds: cost.il_build_seconds,
            prepass_seconds: cost.prepass_seconds,
            schedule_seconds: cost.schedule_seconds,
            shard_windows: cost.shard_windows,
            shard_divergence: cost.shard_divergence,
            shard_fallbacks: cost.shard_fallbacks,
            warmup_seconds: cost.warmup_seconds,
        });
    }
    (payloads, metrics)
}

/// The `BENCH_repro.json` schema version. Version 2 added the top-level
/// aggregates (`schema_version`, `total_trace_build_seconds`,
/// `total_simulate_seconds`, `store`) and the per-cell
/// trace-build/simulate split. Version 3 added fault-isolation fields:
/// top-level `keep_going`, `watchdog_seconds`, and `failed_cells`, and
/// per-cell `status` (`ok` / `error` / `panicked`), `error`, and
/// `watchdog_exceeded`. Version 4 added the host-side phase timers —
/// top-level `total_il_build_seconds` / `total_prepass_seconds` /
/// `total_schedule_seconds` and the matching per-cell fields — plus the
/// top-level `obs` object (`dir`, `sample_interval`; `null` when the run
/// had no `--obs`). Version 5 added the top-level `explain` object
/// (`dir` of the `*.critpath.json` exports and `baseline` — the
/// `--baseline` name or `null`; the whole object is `null` for every
/// command except `repro explain`). Version 6 added the top-level
/// `engine` name (`ticked` / `event`), split cache-served cycles out of
/// the throughput accounting — per-cell `simulated_cycles` (and the
/// `total_simulated_cycles` / `simulated_cycles_per_second` aggregates)
/// now count only cycles a cell actually simulated, with cache serves
/// in the new `cached_simulated_cycles` fields — and added the
/// event-engine dead-cycle counters (`skipped_cycles`, `ff_jumps`, and
/// their `total_*` aggregates). Version 7 added time-window sharding:
/// the top-level `shards` (the `--shards` request) and `sharding`
/// aggregate (`max_windows`, `fallbacks`, `max_divergence`,
/// `warmup_seconds`), per-cell `shard_windows` / `shard_divergence` /
/// `shard_fallbacks` / `warmup_seconds`; and fixed throughput
/// reporting for cells that simulated nothing (fully cached or
/// render-only): their `simulated_cycles_per_second` is now `null`
/// instead of a misleading 0, and the aggregate
/// `simulated_cycles_per_second` divides by `active_wall_seconds` —
/// the summed wall time of cells that actually simulated (also new) —
/// instead of the whole run's wall clock. Version 8 added the
/// persistent disk store (`repro --store DIR`): the `store` object
/// gained `disk_hits` / `disk_misses` / `disk_stores` /
/// `disk_evictions` / `disk_quarantined` (all 0 when no store is
/// attached), and upgraded the watchdog semantics — `--watchdog` now
/// also arms the hard cooperative per-cell deadline (runaway
/// simulations fail with a structured timeout) and soft
/// `watchdog_exceeded` overruns fail the process exit code. Version 9
/// added the host observability surfaces: the top-level `profile`
/// object (`dir` of the `*.hostprof.json` exports; `null` for every
/// command except `repro profile`) and the top-level `flight` object
/// (`file` of the whole-run flight recording; `null` when the run had
/// no `--flight`). Version 10 added the top-level `pipetrace` object
/// (`dir` of the `*.konata` / `*.pipetrace.json` exports, `range` — the
/// `--range` string or `null` for the full run — and `baseline` — the
/// `--baseline` name or `null`; the whole object is `null` for every
/// command except `repro pipetrace`).
pub const REPORT_SCHEMA_VERSION: u64 = 10;

/// Identity and options of one driver run, recorded at the top of the
/// report.
#[derive(Debug, Clone, Default)]
pub struct RunInfo {
    /// The subcommand that ran (e.g. `table2`).
    pub command: String,
    /// The scale divisor the run used.
    pub divisor: u32,
    /// Worker count.
    pub jobs: usize,
    /// The simulation engine the run used (`ticked` / `event`).
    pub engine: String,
    /// Requested time-window shards per simulation (`--shards`; 0 is
    /// normalized to 1, the serial path).
    pub shards: usize,
    /// Wall-clock time of the whole run.
    pub total_wall_seconds: f64,
    /// Whether the run continued past failed cells (`--keep-going`).
    pub keep_going: bool,
    /// The soft wall-clock watchdog, if one was set (`--watchdog`).
    pub watchdog_seconds: Option<f64>,
    /// The observability export directory, when `--obs` was set.
    pub obs_dir: Option<String>,
    /// The `--sample-interval` of an observability run (cycles).
    pub sample_interval: u64,
    /// The critpath export directory of a `repro explain` run.
    pub explain_dir: Option<String>,
    /// The `--baseline` name of a differential `repro explain` run.
    pub explain_baseline: Option<String>,
    /// The hostprof export directory of a `repro profile` run.
    pub profile_dir: Option<String>,
    /// The Konata/pipetrace export directory of a `repro pipetrace` run.
    pub pipetrace_dir: Option<String>,
    /// The `--range` string of a `repro pipetrace` run (`None` = full).
    pub pipetrace_range: Option<String>,
    /// The `--baseline` name of a differential `repro pipetrace` run.
    pub pipetrace_baseline: Option<String>,
    /// The flight-recording path, when `--flight` was set.
    pub flight_path: Option<String>,
}

/// Builds the `BENCH_repro.json` report.
#[must_use]
pub fn report_json(info: &RunInfo, store: &StoreCounters, metrics: &[CellMetric]) -> Json {
    let total_wall_seconds = info.total_wall_seconds;
    let total_cycles: u64 = metrics.iter().map(|m| m.simulated_cycles).sum();
    let total_cached: u64 = metrics.iter().map(|m| m.cached_simulated_cycles).sum();
    let total_skipped: u64 = metrics.iter().map(|m| m.skipped_cycles).sum();
    let total_jumps: u64 = metrics.iter().map(|m| m.ff_jumps).sum();
    let total_build: f64 = metrics.iter().map(|m| m.trace_build_seconds).sum();
    let total_sim: f64 = metrics.iter().map(|m| m.simulate_seconds).sum();
    let total_il: f64 = metrics.iter().map(|m| m.il_build_seconds).sum();
    let total_prepass: f64 = metrics.iter().map(|m| m.prepass_seconds).sum();
    let total_schedule: f64 = metrics.iter().map(|m| m.schedule_seconds).sum();
    // Throughput denominator: only cells that actually simulated.
    // Fully-cached and render-only cells spend wall time but produce no
    // fresh cycles; counting their wall would understate throughput.
    let active_wall: f64 = metrics
        .iter()
        .filter(|m| m.simulated_cycles > 0)
        .map(|m| m.wall_seconds)
        .sum();
    let max_windows: u64 = metrics.iter().map(|m| m.shard_windows).fold(0, u64::max);
    let shard_fallbacks: u64 = metrics.iter().map(|m| m.shard_fallbacks).sum();
    let max_divergence: f64 = metrics.iter().map(|m| m.shard_divergence).fold(0.0, f64::max);
    let total_warmup: f64 = metrics.iter().map(|m| m.warmup_seconds).sum();
    let failed = metrics.iter().filter(|m| m.status != CellStatus::Ok).count();
    let obs_json = match &info.obs_dir {
        Some(dir) => {
            let mut obs = Json::object();
            obs.field("dir", dir.as_str().into())
                .field("sample_interval", info.sample_interval.into());
            obs
        }
        None => Json::Null,
    };
    let explain_json = match &info.explain_dir {
        Some(dir) => {
            let mut explain = Json::object();
            explain
                .field("dir", dir.as_str().into())
                .field(
                    "baseline",
                    info.explain_baseline.as_deref().map_or(Json::Null, Json::from),
                );
            explain
        }
        None => Json::Null,
    };
    let profile_json = match &info.profile_dir {
        Some(dir) => {
            let mut profile = Json::object();
            profile.field("dir", dir.as_str().into());
            profile
        }
        None => Json::Null,
    };
    let pipetrace_json = match &info.pipetrace_dir {
        Some(dir) => {
            let mut pipetrace = Json::object();
            pipetrace
                .field("dir", dir.as_str().into())
                .field(
                    "range",
                    info.pipetrace_range.as_deref().map_or(Json::Null, Json::from),
                )
                .field(
                    "baseline",
                    info.pipetrace_baseline.as_deref().map_or(Json::Null, Json::from),
                );
            pipetrace
        }
        None => Json::Null,
    };
    let flight_json = match &info.flight_path {
        Some(file) => {
            let mut flight = Json::object();
            flight.field("file", file.as_str().into());
            flight
        }
        None => Json::Null,
    };
    let mut store_json = Json::object();
    store_json
        .field("trace_hits", store.trace_hits.into())
        .field("trace_misses", store.trace_misses.into())
        .field("sim_hits", store.sim_hits.into())
        .field("sim_misses", store.sim_misses.into())
        .field("disk_hits", store.disk_hits.into())
        .field("disk_misses", store.disk_misses.into())
        .field("disk_stores", store.disk_stores.into())
        .field("disk_evictions", store.disk_evictions.into())
        .field("disk_quarantined", store.disk_quarantined.into());
    let mut report = Json::object();
    report
        .field("schema_version", REPORT_SCHEMA_VERSION.into())
        .field("command", info.command.as_str().into())
        .field("divisor", u64::from(info.divisor).into())
        .field("jobs", (info.jobs as u64).into())
        .field("engine", info.engine.as_str().into())
        .field("shards", (info.shards.max(1) as u64).into())
        .field("keep_going", info.keep_going.into())
        .field("watchdog_seconds", info.watchdog_seconds.map_or(Json::Null, Json::F64))
        .field("failed_cells", (failed as u64).into())
        .field("total_wall_seconds", total_wall_seconds.into())
        .field("total_simulated_cycles", total_cycles.into())
        .field("total_cached_simulated_cycles", total_cached.into())
        .field("total_skipped_cycles", total_skipped.into())
        .field("total_ff_jumps", total_jumps.into())
        .field("active_wall_seconds", active_wall.into())
        .field(
            "simulated_cycles_per_second",
            if total_cycles > 0 && active_wall > 0.0 {
                (total_cycles as f64 / active_wall).into()
            } else {
                Json::Null
            },
        )
        .field("total_trace_build_seconds", total_build.into())
        .field("total_simulate_seconds", total_sim.into())
        .field("total_il_build_seconds", total_il.into())
        .field("total_prepass_seconds", total_prepass.into())
        .field("total_schedule_seconds", total_schedule.into())
        .field("sharding", {
            let mut sharding = Json::object();
            sharding
                .field("max_windows", max_windows.into())
                .field("fallbacks", shard_fallbacks.into())
                .field("max_divergence", max_divergence.into())
                .field("warmup_seconds", total_warmup.into());
            sharding
        })
        .field("store", store_json)
        .field("obs", obs_json)
        .field("explain", explain_json)
        .field("profile", profile_json)
        .field("pipetrace", pipetrace_json)
        .field("flight", flight_json)
        .field(
            "cells",
            Json::Array(
                metrics
                    .iter()
                    .map(|m| {
                        let mut cell = Json::object();
                        cell.field("id", m.id.as_str().into())
                            .field("status", m.status.name().into())
                            .field("error", m.status.message().map_or(Json::Null, Json::from))
                            .field("watchdog_exceeded", m.watchdog_exceeded.into())
                            .field("wall_seconds", m.wall_seconds.into())
                            .field("simulated_cycles", m.simulated_cycles.into())
                            .field("cached_simulated_cycles", m.cached_simulated_cycles.into())
                            .field("skipped_cycles", m.skipped_cycles.into())
                            .field("ff_jumps", m.ff_jumps.into())
                            .field(
                                "simulated_cycles_per_second",
                                m.cycles_per_second().map_or(Json::Null, Json::F64),
                            )
                            .field("trace_build_seconds", m.trace_build_seconds.into())
                            .field("simulate_seconds", m.simulate_seconds.into())
                            .field("il_build_seconds", m.il_build_seconds.into())
                            .field("prepass_seconds", m.prepass_seconds.into())
                            .field("schedule_seconds", m.schedule_seconds.into())
                            .field("shard_windows", m.shard_windows.into())
                            .field("shard_divergence", m.shard_divergence.into())
                            .field("shard_fallbacks", m.shard_fallbacks.into())
                            .field("warmup_seconds", m.warmup_seconds.into());
                        cell
                    })
                    .collect(),
            ),
        );
    report
}

/// Writes the report to `path`, newline-terminated.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_report(
    path: &std::path::Path,
    info: &RunInfo,
    store: &StoreCounters,
    metrics: &[CellMetric],
) -> std::io::Result<()> {
    let json = report_json(info, store, metrics);
    std::fs::write(path, json.render() + "\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counting_cells(n: usize) -> Vec<Cell<usize>> {
        (0..n)
            .map(|i| {
                Cell::new(format!("cell/{i}"), move || {
                    // Make early cells the slowest so workers finish out
                    // of submission order; collection must reorder.
                    std::thread::sleep(std::time::Duration::from_millis(
                        (n - i) as u64 * 2,
                    ));
                    Ok((i, CellCost::cycles(i as u64 * 10)))
                })
            })
            .collect()
    }

    #[test]
    fn parallel_results_are_in_cell_order() {
        let (payloads, metrics) = run_cells(4, counting_cells(12)).unwrap();
        assert_eq!(payloads, (0..12).collect::<Vec<_>>());
        let ids: Vec<&str> = metrics.iter().map(|m| m.id.as_str()).collect();
        assert_eq!(ids[0], "cell/0");
        assert_eq!(ids[11], "cell/11");
        assert_eq!(metrics[7].simulated_cycles, 70);
    }

    #[test]
    fn serial_and_parallel_agree() {
        let (serial, _) = run_cells(1, counting_cells(8)).unwrap();
        let (parallel, _) = run_cells(8, counting_cells(8)).unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn first_failing_cell_in_order_wins() {
        let cells: Vec<Cell<usize>> = (0..6)
            .map(|i| {
                Cell::new(format!("cell/{i}"), move || {
                    if i >= 2 {
                        Err(Error::Vm(mcl_trace::VmError::MaxStepsExceeded { limit: i as u64 }))
                    } else {
                        Ok((i, CellCost::default()))
                    }
                })
            })
            .collect();
        let err = run_cells(3, cells).expect_err("must fail");
        // Cells 2..6 all fail; the reported error is cell 2's, the
        // earliest in submission order.
        assert!(matches!(err, Error::Vm(mcl_trace::VmError::MaxStepsExceeded { limit: 2 })));
    }

    #[test]
    fn report_shape_is_stable() {
        let metrics = vec![
            CellMetric {
                id: "table2/compress".into(),
                status: CellStatus::Ok,
                wall_seconds: 2.0,
                watchdog_exceeded: false,
                simulated_cycles: 100,
                cached_simulated_cycles: 40,
                skipped_cycles: 25,
                ff_jumps: 5,
                trace_build_seconds: 0.5,
                simulate_seconds: 1.25,
                il_build_seconds: 0.125,
                prepass_seconds: 0.25,
                schedule_seconds: 0.0625,
                shard_windows: 4,
                shard_divergence: 0.0625,
                shard_fallbacks: 0,
                warmup_seconds: 0.25,
            },
            CellMetric {
                id: "table2/broken".into(),
                status: CellStatus::Panicked("boom".into()),
                wall_seconds: 0.25,
                watchdog_exceeded: true,
                simulated_cycles: 0,
                cached_simulated_cycles: 0,
                skipped_cycles: 0,
                ff_jumps: 0,
                trace_build_seconds: 0.0,
                simulate_seconds: 0.0,
                il_build_seconds: 0.0,
                prepass_seconds: 0.0,
                schedule_seconds: 0.0,
                shard_windows: 0,
                shard_divergence: 0.0,
                shard_fallbacks: 0,
                warmup_seconds: 0.0,
            },
        ];
        let counters = StoreCounters {
            trace_hits: 3,
            trace_misses: 1,
            sim_hits: 2,
            sim_misses: 4,
            disk_hits: 5,
            disk_misses: 2,
            disk_stores: 2,
            disk_evictions: 1,
            disk_quarantined: 1,
        };
        let info = RunInfo {
            command: "table2".into(),
            divisor: 1,
            jobs: 8,
            engine: "event".into(),
            shards: 4,
            total_wall_seconds: 2.5,
            keep_going: true,
            watchdog_seconds: Some(0.2),
            obs_dir: None,
            sample_interval: 0,
            explain_dir: None,
            explain_baseline: None,
            profile_dir: None,
            pipetrace_dir: None,
            pipetrace_range: None,
            pipetrace_baseline: None,
            flight_path: None,
        };
        let json = report_json(&info, &counters, &metrics).render();
        assert!(json.starts_with("{\"schema_version\":10,\"command\":\"table2\","));
        assert!(json.contains("\"engine\":\"event\""));
        assert!(json.contains("\"shards\":4"));
        assert!(json.contains("\"keep_going\":true"));
        assert!(json.contains("\"watchdog_seconds\":0.200000"));
        assert!(json.contains("\"failed_cells\":1"));
        assert!(json.contains("\"total_simulated_cycles\":100"));
        assert!(json.contains("\"total_cached_simulated_cycles\":40"));
        assert!(json.contains("\"total_skipped_cycles\":25"));
        assert!(json.contains("\"total_ff_jumps\":5"));
        assert!(json.contains(
            "\"simulated_cycles\":100,\"cached_simulated_cycles\":40,\
             \"skipped_cycles\":25,\"ff_jumps\":5,"
        ));
        // Throughput divides by the *active* wall (only the compress
        // cell simulated): 100 cycles / 2.0 s, not / 2.5 s total.
        assert!(json.contains("\"active_wall_seconds\":2.000000"));
        assert!(json.contains("\"simulated_cycles_per_second\":50.000000"));
        // The cell that simulated nothing reports null, not 0.
        assert!(json.contains("\"simulated_cycles_per_second\":null"));
        assert!(json.contains(
            "\"sharding\":{\"max_windows\":4,\"fallbacks\":0,\
             \"max_divergence\":0.062500,\"warmup_seconds\":0.250000}"
        ));
        assert!(json.contains(
            "\"shard_windows\":4,\"shard_divergence\":0.062500,\
             \"shard_fallbacks\":0,\"warmup_seconds\":0.250000"
        ));
        assert!(json.contains("\"total_trace_build_seconds\":0.500000"));
        assert!(json.contains("\"total_simulate_seconds\":1.250000"));
        assert!(json.contains("\"total_il_build_seconds\":0.125000"));
        assert!(json.contains("\"total_prepass_seconds\":0.250000"));
        assert!(json.contains("\"total_schedule_seconds\":0.062500"));
        assert!(json.contains(
            "\"store\":{\"trace_hits\":3,\"trace_misses\":1,\"sim_hits\":2,\"sim_misses\":4,\
             \"disk_hits\":5,\"disk_misses\":2,\"disk_stores\":2,\"disk_evictions\":1,\
             \"disk_quarantined\":1}"
        ));
        assert!(json.contains("\"obs\":null"), "no --obs recorded for this run");
        assert!(json.contains("\"explain\":null"), "not an explain run");
        assert!(json.contains("\"profile\":null"), "not a profile run");
        assert!(json.contains("\"pipetrace\":null"), "not a pipetrace run");
        assert!(json.contains("\"flight\":null"), "no --flight recorded for this run");
        assert!(json.contains(
            "\"cells\":[{\"id\":\"table2/compress\",\"status\":\"ok\",\"error\":null,\
             \"watchdog_exceeded\":false,"
        ));
        assert!(json.contains(
            "{\"id\":\"table2/broken\",\"status\":\"panicked\",\"error\":\"boom\",\
             \"watchdog_exceeded\":true,"
        ));
        assert!(json.contains("\"trace_build_seconds\":0.500000"));
        assert!(json.contains("\"simulate_seconds\":1.250000,\"il_build_seconds\":0.125000,\
                               \"prepass_seconds\":0.250000,\"schedule_seconds\":0.062500"));
    }

    #[test]
    fn obs_run_records_dir_and_interval() {
        let info = RunInfo {
            obs_dir: Some("out/obs".into()),
            sample_interval: 1024,
            ..RunInfo::default()
        };
        let json = report_json(&info, &StoreCounters::default(), &[]).render();
        assert!(json.contains("\"obs\":{\"dir\":\"out/obs\",\"sample_interval\":1024}"));
    }

    #[test]
    fn explain_run_records_dir_and_baseline() {
        let info = RunInfo {
            explain_dir: Some("critpath_out".into()),
            explain_baseline: Some("single".into()),
            ..RunInfo::default()
        };
        let json = report_json(&info, &StoreCounters::default(), &[]).render();
        assert!(json.contains("\"explain\":{\"dir\":\"critpath_out\",\"baseline\":\"single\"}"));
        let bare = RunInfo { explain_dir: Some("out".into()), ..RunInfo::default() };
        let json = report_json(&bare, &StoreCounters::default(), &[]).render();
        assert!(json.contains("\"explain\":{\"dir\":\"out\",\"baseline\":null}"));
    }

    #[test]
    fn profile_and_flight_runs_record_their_targets() {
        let info = RunInfo {
            profile_dir: Some("hostprof_out".into()),
            flight_path: Some("run.flight.json".into()),
            ..RunInfo::default()
        };
        let json = report_json(&info, &StoreCounters::default(), &[]).render();
        assert!(json.contains("\"profile\":{\"dir\":\"hostprof_out\"}"));
        assert!(json.contains("\"flight\":{\"file\":\"run.flight.json\"}"));
    }

    #[test]
    fn pipetrace_run_records_dir_range_and_baseline() {
        let info = RunInfo {
            pipetrace_dir: Some("pipetrace_out".into()),
            pipetrace_range: Some("100..200".into()),
            pipetrace_baseline: Some("single".into()),
            ..RunInfo::default()
        };
        let json = report_json(&info, &StoreCounters::default(), &[]).render();
        assert!(json.contains(
            "\"pipetrace\":{\"dir\":\"pipetrace_out\",\"range\":\"100..200\",\
             \"baseline\":\"single\"}"
        ));
        let bare = RunInfo { pipetrace_dir: Some("out".into()), ..RunInfo::default() };
        let json = report_json(&bare, &StoreCounters::default(), &[]).render();
        assert!(json.contains("\"pipetrace\":{\"dir\":\"out\",\"range\":null,\"baseline\":null}"));
    }

    #[test]
    fn watchdog_is_off_by_default_and_renders_null() {
        let json = report_json(&RunInfo::default(), &StoreCounters::default(), &[]).render();
        assert!(json.contains("\"keep_going\":false"));
        assert!(json.contains("\"watchdog_seconds\":null"));
        assert!(json.contains("\"failed_cells\":0"));
        assert!(json.contains("\"obs\":null"));
    }

    fn mixed_cells() -> Vec<Cell<usize>> {
        (0..5)
            .map(|i| {
                Cell::new(format!("cell/{i}"), move || match i {
                    2 => panic!("cell {i} exploded"),
                    3 => Err(Error::Store("cache poisoned".into())),
                    _ => Ok((i, CellCost::cycles(7))),
                })
            })
            .collect()
    }

    #[test]
    fn panicking_cell_becomes_an_ordinary_error_in_run_cells() {
        // Both serial and parallel paths must catch the panic rather
        // than unwind through the pool.
        for jobs in [1, 4] {
            let err = run_cells(jobs, mixed_cells()).expect_err("must fail");
            match err {
                Error::Panic { cell, message } => {
                    assert_eq!(cell, "cell/2");
                    assert_eq!(message, "cell 2 exploded");
                }
                other => panic!("expected Panic, got {other}"),
            }
        }
    }

    #[test]
    fn isolated_run_keeps_surviving_payloads_and_records_statuses() {
        for jobs in [1, 4] {
            let (payloads, metrics) = run_cells_isolated(jobs, mixed_cells(), None);
            assert_eq!(payloads, vec![Some(0), Some(1), None, None, Some(4)]);
            assert_eq!(metrics[0].status, CellStatus::Ok);
            assert_eq!(metrics[2].status, CellStatus::Panicked("cell 2 exploded".into()));
            assert_eq!(
                metrics[3].status,
                CellStatus::Error("trace store: cache poisoned".into())
            );
            assert!(metrics.iter().all(|m| !m.watchdog_exceeded), "no watchdog configured");
        }
    }

    #[test]
    fn hard_watchdog_cancels_runaway_simulations() {
        // A vanishingly small budget on a run long enough to cross the
        // simulator's poll stride: the cooperative poll must cancel the
        // run with a structured timeout, which the isolated runner
        // records as a failed cell.
        let cells: Vec<Cell<u64>> = vec![Cell::new("runaway", || {
            use mcl_isa::ArchReg;
            let mut b = mcl_trace::ProgramBuilder::<ArchReg>::new("runaway");
            b.lda(ArchReg::int(1), 1);
            for _ in 0..6000 {
                b.addq(ArchReg::int(1), ArchReg::int(1), ArchReg::int(1));
            }
            let program = b.finish().expect("valid chain program");
            let result = mcl_core::Processor::new(
                mcl_core::ProcessorConfig::single_cluster_8way(),
            )
            .run_program(&program)?;
            Ok((result.stats.cycles, CellCost::default()))
        })];
        let (payloads, metrics) = run_cells_isolated(1, cells, Some(1e-9));
        assert_eq!(payloads, vec![None], "the cancelled cell yields no payload");
        match &metrics[0].status {
            CellStatus::Error(m) => {
                assert!(m.contains("hard watchdog deadline exceeded"), "unexpected error: {m}");
            }
            other => panic!("expected a timeout error, got {other:?}"),
        }
        assert!(metrics[0].watchdog_exceeded, "the soft marker agrees");
    }

    #[test]
    fn soft_watchdog_marks_slow_cells() {
        let cells: Vec<Cell<u32>> = vec![
            Cell::new("fast", || Ok((1, CellCost::default()))),
            Cell::new("slow", || {
                std::thread::sleep(std::time::Duration::from_millis(30));
                Ok((2, CellCost::default()))
            }),
        ];
        let (_, metrics) = run_cells_isolated(1, cells, Some(0.01));
        assert!(!metrics[0].watchdog_exceeded);
        assert!(metrics[1].watchdog_exceeded);
        assert_eq!(
            metrics[1].status,
            CellStatus::Ok,
            "a soft overrun outside the simulator still returns its payload"
        );
    }
}
