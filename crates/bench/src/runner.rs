//! Parallel experiment driver.
//!
//! Every `repro` experiment expands into independent *cells* — one
//! (workload, configuration) unit each, typically "one benchmark of one
//! experiment". Cells run on a [`std::thread::scope`] worker pool that
//! claims work by atomic index, and results land in per-cell slots, so
//! collection order equals submission order regardless of which worker
//! finished first. Rendering happens after collection, which is what
//! makes `--jobs N` output byte-identical to a serial run.
//!
//! The pool also records per-cell wall time, simulated cycles, and the
//! trace-build/simulate split reported by the cells (see [`CellCost`]);
//! the driver writes them to `BENCH_repro.json` via [`report_json`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::json::Json;
use crate::store::StoreCounters;
use crate::Error;

/// What one cell spent: simulated cycles it accounted for, and its wall
/// time split into trace building (scheduling + VM interpretation,
/// including time spent waiting on or hitting the shared trace store)
/// and cycle-level simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CellCost {
    /// Simulated cycles the cell accounted for (0 for cells that only
    /// render static material).
    pub simulated_cycles: u64,
    /// Seconds spent obtaining traces (store hits cost ~0).
    pub trace_build_seconds: f64,
    /// Seconds spent in cycle-level simulation (store hits cost ~0).
    pub simulate_seconds: f64,
}

impl CellCost {
    /// A cost accounting only simulated cycles (for cells that do not
    /// route work through the trace store).
    #[must_use]
    pub fn cycles(simulated_cycles: u64) -> CellCost {
        CellCost { simulated_cycles, ..CellCost::default() }
    }

    /// Accumulates another cost into this one.
    pub fn add(&mut self, other: &CellCost) {
        self.simulated_cycles += other.simulated_cycles;
        self.trace_build_seconds += other.trace_build_seconds;
        self.simulate_seconds += other.simulate_seconds;
    }
}

/// One independent unit of work.
///
/// The closure returns its payload plus the [`CellCost`] it incurred.
pub struct Cell<R> {
    /// Stable identifier, e.g. `table2/compress`.
    pub id: String,
    /// The work itself.
    pub run: Box<dyn FnOnce() -> Result<(R, CellCost), Error> + Send>,
}

impl<R> Cell<R> {
    /// Convenience constructor.
    pub fn new(
        id: impl Into<String>,
        run: impl FnOnce() -> Result<(R, CellCost), Error> + Send + 'static,
    ) -> Cell<R> {
        Cell { id: id.into(), run: Box::new(run) }
    }
}

/// Timing record of one executed cell.
#[derive(Debug, Clone)]
pub struct CellMetric {
    /// The cell's identifier.
    pub id: String,
    /// Wall-clock time the cell took on its worker.
    pub wall_seconds: f64,
    /// Simulated cycles the cell accounted for.
    pub simulated_cycles: u64,
    /// Seconds the cell spent obtaining traces.
    pub trace_build_seconds: f64,
    /// Seconds the cell spent in cycle-level simulation.
    pub simulate_seconds: f64,
}

impl CellMetric {
    /// Simulation throughput of this cell (simulated cycles per
    /// wall-clock second); 0 when the cell did no simulation work.
    #[must_use]
    pub fn cycles_per_second(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.simulated_cycles as f64 / self.wall_seconds
        } else {
            0.0
        }
    }
}

/// One finished cell, pre-collection: its id, outcome, and wall time.
type FinishedCell<R> = (String, Result<(R, CellCost), Error>, f64);

/// The default worker count: the machine's available parallelism.
#[must_use]
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
}

/// Runs every cell and returns the payloads in cell order plus one
/// metric per cell (same order).
///
/// With `jobs <= 1` the cells run serially on the calling thread; with
/// more, a scoped worker pool claims cells by atomic index. Either way
/// the result order is the submission order, so callers can render
/// deterministically.
///
/// # Errors
///
/// Returns the error of the earliest (by cell order) failing cell.
/// Unlike the serial path, later cells may already have run by then;
/// cells must therefore be independent, which experiment cells are.
pub fn run_cells<R: Send>(
    jobs: usize,
    cells: Vec<Cell<R>>,
) -> Result<(Vec<R>, Vec<CellMetric>), Error> {
    let n = cells.len();
    let mut slots: Vec<FinishedCell<R>> = if jobs <= 1 || n <= 1 {
        cells
            .into_iter()
            .map(|cell| {
                let start = Instant::now();
                let result = (cell.run)();
                (cell.id, result, start.elapsed().as_secs_f64())
            })
            .collect()
    } else {
        let work: Vec<Mutex<Option<Cell<R>>>> =
            cells.into_iter().map(|c| Mutex::new(Some(c))).collect();
        let done: Vec<Mutex<Option<FinishedCell<R>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..jobs.min(n) {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let cell = work[i].lock().unwrap().take().expect("each cell claimed once");
                    let start = Instant::now();
                    let result = (cell.run)();
                    *done[i].lock().unwrap() =
                        Some((cell.id, result, start.elapsed().as_secs_f64()));
                });
            }
        });
        done.into_iter()
            .map(|slot| slot.into_inner().unwrap().expect("every cell ran"))
            .collect()
    };

    let mut payloads = Vec::with_capacity(n);
    let mut metrics = Vec::with_capacity(n);
    for (id, result, wall_seconds) in slots.drain(..) {
        let (payload, cost) = result?;
        payloads.push(payload);
        metrics.push(CellMetric {
            id,
            wall_seconds,
            simulated_cycles: cost.simulated_cycles,
            trace_build_seconds: cost.trace_build_seconds,
            simulate_seconds: cost.simulate_seconds,
        });
    }
    Ok((payloads, metrics))
}

/// The `BENCH_repro.json` schema version. Version 2 added the top-level
/// aggregates (`schema_version`, `total_trace_build_seconds`,
/// `total_simulate_seconds`, `store`) and the per-cell
/// trace-build/simulate split.
pub const REPORT_SCHEMA_VERSION: u64 = 2;

/// Builds the `BENCH_repro.json` report.
#[must_use]
pub fn report_json(
    command: &str,
    divisor: u32,
    jobs: usize,
    total_wall_seconds: f64,
    store: &StoreCounters,
    metrics: &[CellMetric],
) -> Json {
    let total_cycles: u64 = metrics.iter().map(|m| m.simulated_cycles).sum();
    let total_build: f64 = metrics.iter().map(|m| m.trace_build_seconds).sum();
    let total_sim: f64 = metrics.iter().map(|m| m.simulate_seconds).sum();
    let mut store_json = Json::object();
    store_json
        .field("trace_hits", store.trace_hits.into())
        .field("trace_misses", store.trace_misses.into())
        .field("sim_hits", store.sim_hits.into())
        .field("sim_misses", store.sim_misses.into());
    let mut report = Json::object();
    report
        .field("schema_version", REPORT_SCHEMA_VERSION.into())
        .field("command", command.into())
        .field("divisor", u64::from(divisor).into())
        .field("jobs", (jobs as u64).into())
        .field("total_wall_seconds", total_wall_seconds.into())
        .field("total_simulated_cycles", total_cycles.into())
        .field(
            "simulated_cycles_per_second",
            if total_wall_seconds > 0.0 {
                (total_cycles as f64 / total_wall_seconds).into()
            } else {
                0.0.into()
            },
        )
        .field("total_trace_build_seconds", total_build.into())
        .field("total_simulate_seconds", total_sim.into())
        .field("store", store_json)
        .field(
            "cells",
            Json::Array(
                metrics
                    .iter()
                    .map(|m| {
                        let mut cell = Json::object();
                        cell.field("id", m.id.as_str().into())
                            .field("wall_seconds", m.wall_seconds.into())
                            .field("simulated_cycles", m.simulated_cycles.into())
                            .field("simulated_cycles_per_second", m.cycles_per_second().into())
                            .field("trace_build_seconds", m.trace_build_seconds.into())
                            .field("simulate_seconds", m.simulate_seconds.into());
                        cell
                    })
                    .collect(),
            ),
        );
    report
}

/// Writes the report to `path`, newline-terminated.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_report(
    path: &std::path::Path,
    command: &str,
    divisor: u32,
    jobs: usize,
    total_wall_seconds: f64,
    store: &StoreCounters,
    metrics: &[CellMetric],
) -> std::io::Result<()> {
    let json = report_json(command, divisor, jobs, total_wall_seconds, store, metrics);
    std::fs::write(path, json.render() + "\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counting_cells(n: usize) -> Vec<Cell<usize>> {
        (0..n)
            .map(|i| {
                Cell::new(format!("cell/{i}"), move || {
                    // Make early cells the slowest so workers finish out
                    // of submission order; collection must reorder.
                    std::thread::sleep(std::time::Duration::from_millis(
                        (n - i) as u64 * 2,
                    ));
                    Ok((i, CellCost::cycles(i as u64 * 10)))
                })
            })
            .collect()
    }

    #[test]
    fn parallel_results_are_in_cell_order() {
        let (payloads, metrics) = run_cells(4, counting_cells(12)).unwrap();
        assert_eq!(payloads, (0..12).collect::<Vec<_>>());
        let ids: Vec<&str> = metrics.iter().map(|m| m.id.as_str()).collect();
        assert_eq!(ids[0], "cell/0");
        assert_eq!(ids[11], "cell/11");
        assert_eq!(metrics[7].simulated_cycles, 70);
    }

    #[test]
    fn serial_and_parallel_agree() {
        let (serial, _) = run_cells(1, counting_cells(8)).unwrap();
        let (parallel, _) = run_cells(8, counting_cells(8)).unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn first_failing_cell_in_order_wins() {
        let cells: Vec<Cell<usize>> = (0..6)
            .map(|i| {
                Cell::new(format!("cell/{i}"), move || {
                    if i >= 2 {
                        Err(Error::Vm(mcl_trace::VmError::MaxStepsExceeded { limit: i as u64 }))
                    } else {
                        Ok((i, CellCost::default()))
                    }
                })
            })
            .collect();
        let err = run_cells(3, cells).err().expect("must fail");
        // Cells 2..6 all fail; the reported error is cell 2's, the
        // earliest in submission order.
        assert!(matches!(err, Error::Vm(mcl_trace::VmError::MaxStepsExceeded { limit: 2 })));
    }

    #[test]
    fn report_shape_is_stable() {
        let metrics = vec![CellMetric {
            id: "table2/compress".into(),
            wall_seconds: 2.0,
            simulated_cycles: 100,
            trace_build_seconds: 0.5,
            simulate_seconds: 1.25,
        }];
        let counters = StoreCounters { trace_hits: 3, trace_misses: 1, sim_hits: 2, sim_misses: 4 };
        let json = report_json("table2", 1, 8, 2.5, &counters, &metrics).render();
        assert!(json.starts_with("{\"schema_version\":2,\"command\":\"table2\","));
        assert!(json.contains("\"total_simulated_cycles\":100"));
        assert!(json.contains("\"simulated_cycles_per_second\":40.000000"));
        assert!(json.contains("\"total_trace_build_seconds\":0.500000"));
        assert!(json.contains("\"total_simulate_seconds\":1.250000"));
        assert!(json.contains(
            "\"store\":{\"trace_hits\":3,\"trace_misses\":1,\"sim_hits\":2,\"sim_misses\":4}"
        ));
        assert!(json.contains("\"cells\":[{\"id\":\"table2/compress\""));
        assert!(json.contains("\"trace_build_seconds\":0.500000"));
    }
}
