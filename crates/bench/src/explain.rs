//! `repro explain` — critical-path cycle-loss attribution reports.
//!
//! For each benchmark this module reruns the dual-cluster /
//! local-scheduler Table 2 cell with a [`CritPathProbe`] attached and
//! turns the probe's exact per-cause cycle breakdown into two
//! artifacts:
//!
//! - `<bench>.critpath.json` — the machine-readable attribution
//!   (schema documented in `EXPERIMENTS.md`, validated by
//!   `repro obs-validate`);
//! - a rendered per-cell text report, printed by the driver.
//!
//! With `--baseline CONFIG` the report turns differential: the named
//! reference cell (the single-cluster run of Table 2, or the
//! dual-cluster native run) is attributed the same way and the two
//! breakdowns are diffed. Because each attribution sums *exactly* to
//! its run's cycle count, the per-cause deltas (as a percentage of
//! baseline cycles) sum exactly to the cell's slowdown — "compress
//! loses 14.2%: 9.1% inter-cluster forward, 3.8% spill code, 1.3% OTB
//! credit" is an identity, not an estimate.
//!
//! Like the `--obs` exports, the instrumented runs are companions: the
//! reported statistics come from the uninstrumented store simulation,
//! and the two are cross-checked for byte identity, so attribution can
//! never perturb what it explains.

use std::path::Path;

use mcl_core::{CritAttribution, CritCause, CritPathProbe, Processor, ProcessorConfig};
use mcl_sched::SchedulerKind;
use mcl_workloads::Benchmark;

use crate::json::Json;
use crate::runner::CellCost;
use crate::store::TraceRequest;
use crate::{Error, TraceStore};

/// Schema version of the `*.critpath.json` exports.
pub const CRITPATH_SCHEMA_VERSION: u64 = 1;

/// The reference cell a differential explain report diffs against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Baseline {
    /// The native binary on the single-cluster machine (Table 2's
    /// denominator).
    Single,
    /// The native (cluster-blind) binary on the dual-cluster machine
    /// (Table 2's "none" column).
    DualNone,
}

impl Baseline {
    /// Parses a `--baseline` value.
    ///
    /// # Errors
    ///
    /// A usage message listing the accepted names.
    pub fn parse(s: &str) -> Result<Baseline, String> {
        match s {
            "single" => Ok(Baseline::Single),
            "dual-none" => Ok(Baseline::DualNone),
            other => Err(format!(
                "invalid --baseline `{other}` (expected `single` or `dual-none`)"
            )),
        }
    }

    /// The stable name recorded in exports and `BENCH_repro.json`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Baseline::Single => "single",
            Baseline::DualNone => "dual-none",
        }
    }

    pub(crate) fn request(self, bench: Benchmark, scale: u32) -> TraceRequest {
        // Both baselines run the native cluster-blind binary, exactly as
        // Table 2 does.
        let _ = self;
        TraceRequest::new(bench, scale, SchedulerKind::Naive)
    }

    pub(crate) fn config(self) -> ProcessorConfig {
        match self {
            Baseline::Single => ProcessorConfig::single_cluster_8way(),
            Baseline::DualNone => ProcessorConfig::dual_cluster_8way(),
        }
    }

    pub(crate) fn labels(self) -> (&'static str, &'static str) {
        match self {
            Baseline::Single => ("single_cluster_8way", "naive"),
            Baseline::DualNone => ("dual_cluster_8way", "naive"),
        }
    }
}

/// One attributed run: its identity, headline statistics, and the exact
/// per-cause breakdown.
#[derive(Debug, Clone)]
struct AttributedRun {
    config_label: &'static str,
    sched_label: &'static str,
    cycles: u64,
    retired: u64,
    ipc: f64,
    attr: CritAttribution,
}

fn explain_err(stem: &str, detail: impl std::fmt::Display) -> Error {
    Error::Obs(format!("critpath {stem}: {detail}"))
}

/// Runs one `(request, configuration)` pair instrumented with a
/// [`CritPathProbe`], cross-checks byte identity against the store's
/// uninstrumented run, and enforces the attribution identity.
fn attribute_run(
    store: &TraceStore,
    stem: &str,
    req: &TraceRequest,
    cfg: &ProcessorConfig,
    labels: (&'static str, &'static str),
    cost: &mut CellCost,
) -> Result<AttributedRun, Error> {
    // Probed companions are always serial, so the byte-identity
    // reference must be the serial product even when the store shards
    // fresh runs.
    let expected = store.sim_serial(req, cfg)?;
    cost.charge_sim(&expected);
    let (trace, _) = store.trace(req)?;
    let mut probe = CritPathProbe::new();
    let observed = Processor::new(cfg.clone())
        .run_packed_observed(&trace, &mut probe)
        .map_err(Error::Sim)?;
    // Observe, never perturb: the companion's cycles are deliberately
    // not charged, so report aggregates match a probe-free run.
    if observed.stats != expected.stats {
        return Err(explain_err(
            stem,
            format!(
                "instrumented run diverged from the store run ({} vs {} cycles) — \
                 probes must not affect simulation",
                observed.stats.cycles, expected.stats.cycles
            ),
        ));
    }
    let attr = probe.attribution(observed.stats.cycles);
    attr.check_identity(observed.stats.cycles).map_err(|e| explain_err(stem, e))?;
    if attr.retired != observed.stats.retired {
        return Err(explain_err(
            stem,
            format!(
                "probe saw {} retirements, simulator reported {}",
                attr.retired, observed.stats.retired
            ),
        ));
    }
    Ok(AttributedRun {
        config_label: labels.0,
        sched_label: labels.1,
        cycles: observed.stats.cycles,
        retired: observed.stats.retired,
        ipc: observed.stats.ipc(),
        attr,
    })
}

/// Runs the explain cell of one benchmark: attributes the dual-cluster
/// local-scheduler run (and the baseline, when given), writes
/// `<bench>.critpath.json` into `dir`, and returns the rendered text
/// report plus the cell cost.
///
/// # Errors
///
/// [`Error::Obs`] when the attribution identity fails, the instrumented
/// run diverges from the store run, or the export cannot be written;
/// harness errors propagate.
pub fn explain_cell(
    store: &TraceStore,
    bench: Benchmark,
    scale: u32,
    dir: &Path,
    baseline: Option<Baseline>,
) -> Result<(String, CellCost), Error> {
    let mut cost = CellCost::default();
    let target = attribute_run(
        store,
        bench.name(),
        &TraceRequest::new(bench, scale, SchedulerKind::Local),
        &ProcessorConfig::dual_cluster_8way(),
        ("dual_cluster_8way", "local"),
        &mut cost,
    )?;
    let base = baseline
        .map(|b| {
            attribute_run(
                store,
                &format!("{} baseline", bench.name()),
                &b.request(bench, scale),
                &b.config(),
                b.labels(),
                &mut cost,
            )
        })
        .transpose()?;

    std::fs::create_dir_all(dir)
        .map_err(|e| explain_err(bench.name(), format!("creating {}: {e}", dir.display())))?;
    let path = dir.join(format!("{}.critpath.json", bench.name()));
    let doc = critpath_json(bench, &target, baseline, base.as_ref());
    std::fs::write(&path, doc.render() + "\n")
        .map_err(|e| explain_err(bench.name(), format!("writing {}: {e}", path.display())))?;

    Ok((render_cell(bench, &target, baseline, base.as_ref()), cost))
}

fn attribution_json(attr: &CritAttribution) -> Json {
    let mut obj = Json::object();
    for (cause, cycles) in attr.iter() {
        obj.field(cause.name(), cycles.into());
    }
    obj
}

fn run_json(run: &AttributedRun) -> Json {
    let mut obj = Json::object();
    obj.field("config", run.config_label.into())
        .field("scheduler", run.sched_label.into())
        .field("cycles", run.cycles.into())
        .field("retired", run.retired.into())
        .field("ipc", run.ipc.into())
        .field("attribution", attribution_json(&run.attr));
    obj
}

fn critpath_json(
    bench: Benchmark,
    target: &AttributedRun,
    baseline: Option<Baseline>,
    base: Option<&AttributedRun>,
) -> Json {
    let mut obj = Json::object();
    obj.field("schema_version", CRITPATH_SCHEMA_VERSION.into())
        .field("benchmark", bench.name().into())
        .field("target", run_json(target));
    match (baseline, base) {
        (Some(b), Some(base)) => {
            let mut diff = run_json(base);
            diff.field("name", b.name().into())
                .field("slowdown_pct", slowdown_pct(target, base).into());
            let mut deltas = Json::object();
            for (cause, _) in target.attr.iter() {
                deltas.field(cause.name(), delta_pct(target, base, cause).into());
            }
            diff.field("delta_pct", deltas);
            obj.field("baseline", diff);
        }
        _ => {
            obj.field("baseline", Json::Null);
        }
    }
    obj
}

/// Cycle cost of the target relative to the baseline, as a percentage
/// of baseline cycles (positive = the target is slower).
fn slowdown_pct(target: &AttributedRun, base: &AttributedRun) -> f64 {
    (target.cycles as f64 - base.cycles as f64) / base.cycles as f64 * 100.0
}

/// Per-cause share of the slowdown, as a percentage of baseline cycles.
/// Because each attribution sums to its run's cycles, these deltas sum
/// exactly to [`slowdown_pct`].
fn delta_pct(target: &AttributedRun, base: &AttributedRun, cause: CritCause) -> f64 {
    (target.attr.cycles(cause) as f64 - base.attr.cycles(cause) as f64)
        / base.cycles as f64
        * 100.0
}

/// Causes ordered by descending cycle share (stable on ties).
fn ranked(attr: &CritAttribution) -> Vec<(CritCause, u64)> {
    let mut causes: Vec<(CritCause, u64)> = attr.iter().collect();
    causes.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.index().cmp(&b.0.index())));
    causes
}

fn render_cell(
    bench: Benchmark,
    target: &AttributedRun,
    baseline: Option<Baseline>,
    base: Option<&AttributedRun>,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}: {} cycles, IPC {:.2} (dual-cluster, local scheduler)",
        bench.name(),
        target.cycles,
        target.ipc
    );
    for (cause, cycles) in ranked(&target.attr) {
        if cycles == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "  {:<22} {:>5.1}%  {:>12} cycles",
            cause.name(),
            cycles as f64 / target.cycles as f64 * 100.0,
            cycles
        );
    }
    if let (Some(b), Some(base)) = (baseline, base) {
        let slow = slowdown_pct(target, base);
        let verb = if slow >= 0.0 { "loses" } else { "gains" };
        let _ = writeln!(
            out,
            "  vs {} ({} cycles, IPC {:.2}): {verb} {:.1}% of baseline cycles",
            b.name(),
            base.cycles,
            base.ipc,
            slow.abs()
        );
        let mut deltas: Vec<(CritCause, f64)> = target
            .attr
            .iter()
            .map(|(cause, _)| (cause, delta_pct(target, base, cause)))
            .filter(|&(_, d)| d.abs() >= 0.05)
            .collect();
        deltas.sort_by(|a, b| {
            b.1.abs().partial_cmp(&a.1.abs()).unwrap().then(a.0.index().cmp(&b.0.index()))
        });
        for (cause, d) in deltas {
            let _ = writeln!(out, "    {:<22} {:>+6.1}%", cause.name(), d);
        }
    }
    out
}

/// Validates one `*.critpath.json` export: schema version, a complete
/// per-cause attribution, and — re-checked from the file itself — the
/// attribution identity (causes sum to the run's cycles), for both the
/// target and any baseline.
///
/// # Errors
///
/// [`Error::Obs`] describing the first violation.
pub fn validate_critpath(path: &Path) -> Result<(), Error> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| explain_err(&path.display().to_string(), format!("reading: {e}")))?;
    let doc = Json::parse(&text)
        .map_err(|e| explain_err(&path.display().to_string(), e))?;
    let fail = |what: &str| explain_err(&path.display().to_string(), what.to_owned());
    if doc.get("schema_version").and_then(Json::as_u64) != Some(CRITPATH_SCHEMA_VERSION) {
        return Err(fail("schema_version missing or unsupported"));
    }
    for key in ["target", "baseline"] {
        let Some(run) = doc.get(key) else {
            return Err(fail(&format!("{key} object missing")));
        };
        if matches!(run, Json::Null) {
            continue; // baseline-less export
        }
        let cycles = run
            .get("cycles")
            .and_then(Json::as_u64)
            .ok_or_else(|| fail(&format!("{key}.cycles missing")))?;
        let attr = run
            .get("attribution")
            .ok_or_else(|| fail(&format!("{key}.attribution missing")))?;
        let mut sum = 0u64;
        for cause in CritCause::ALL {
            sum += attr.get(cause.name()).and_then(Json::as_u64).ok_or_else(|| {
                fail(&format!("{key}.attribution.{} missing", cause.name()))
            })?;
        }
        if sum != cycles {
            return Err(fail(&format!(
                "{key} attribution identity violated: causes sum to {sum}, run has {cycles} cycles"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("mcl-explain-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn explain_cell_exports_validate_and_diff_decomposes_exactly() {
        let dir = temp_dir("cell");
        let store = TraceStore::new();
        let (rendered, cost) =
            explain_cell(&store, Benchmark::Compress, 40, &dir, Some(Baseline::Single)).unwrap();
        assert!(rendered.starts_with("compress: "), "{rendered}");
        assert!(rendered.contains("vs single ("), "{rendered}");
        assert!(cost.simulated_cycles > 0);

        let path = dir.join("compress.critpath.json");
        validate_critpath(&path).unwrap();
        let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let target = doc.get("target").unwrap();
        let base = doc.get("baseline").unwrap();
        assert_eq!(base.get("name").and_then(Json::as_str), Some("single"));
        // The per-cause deltas must sum exactly (modulo float rendering)
        // to the reported slowdown — the differential identity.
        let slowdown = base.get("slowdown_pct").and_then(Json::as_f64).unwrap();
        let delta_sum: f64 = CritCause::ALL
            .iter()
            .map(|c| base.get("delta_pct").unwrap().get(c.name()).and_then(Json::as_f64).unwrap())
            .sum();
        assert!(
            (slowdown - delta_sum).abs() < 1e-3,
            "slowdown {slowdown} != delta sum {delta_sum}"
        );
        // Spill code the local scheduler inserted must surface in the
        // target attribution namespace (possibly zero, but present).
        assert!(target.get("attribution").unwrap().get("sched_spill").is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn explain_without_baseline_writes_null_baseline() {
        let dir = temp_dir("nobase");
        let store = TraceStore::new();
        let (rendered, _) =
            explain_cell(&store, Benchmark::Compress, 40, &dir, None).unwrap();
        assert!(!rendered.contains("vs "), "{rendered}");
        let path = dir.join("compress.critpath.json");
        validate_critpath(&path).unwrap();
        let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert!(matches!(doc.get("baseline"), Some(Json::Null)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn validate_critpath_rejects_broken_identity() {
        let dir = temp_dir("broken");
        let path = dir.join("x.critpath.json");
        let mut attr = String::new();
        for (i, cause) in CritCause::ALL.iter().enumerate() {
            if i > 0 {
                attr.push(',');
            }
            attr.push_str(&format!("\"{}\":1", cause.name()));
        }
        // 17 causes × 1 cycle but the run claims 100 cycles.
        let doc = format!(
            "{{\"schema_version\":1,\"benchmark\":\"x\",\"target\":{{\"cycles\":100,\
             \"attribution\":{{{attr}}}}},\"baseline\":null}}"
        );
        std::fs::write(&path, doc).unwrap();
        let err = validate_critpath(&path).unwrap_err().to_string();
        assert!(err.contains("identity violated"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn baseline_parse_accepts_known_names_only() {
        assert_eq!(Baseline::parse("single").unwrap(), Baseline::Single);
        assert_eq!(Baseline::parse("dual-none").unwrap(), Baseline::DualNone);
        assert!(Baseline::parse("fastest").is_err());
    }
}
