//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro table1                 Table 1 (issue rules & latencies)
//! repro table2 [divisor]      Table 2 (speedups; optional scale divisor)
//! repro scenarios              Figures 2–5 (dual-execution timelines)
//! repro fig6                   Figure 6 (local-scheduler walkthrough)
//! repro crossover [divisor]   cycle-time crossover analysis (§4.2/§5)
//! repro ablate-buffers         A1: transfer-buffer sweep
//! repro ablate-threshold       A2: imbalance-threshold sweep
//! repro ablate-dq              A3: dispatch-queue sweep (compress anomaly)
//! repro ablate-globals         A4: global-register designation on/off
//! repro ablate-width           A5: 4-way configurations
//! repro ablate-unroll          A6: loop unrolling (§6 future work)
//! repro mix                    workload behavioural profiles
//! repro schedulers             B1: partitioning-strategy comparison
//! repro pipeline <bench>       per-instruction pipeline diagram
//! repro selftest [divisor]    differential + fault-injection self-checks
//! repro explain [divisor]     critical-path cycle-loss attribution
//! repro pipetrace [divisor]   per-instruction lifecycle trace (Konata + JSON)
//! repro profile [divisor]     engine phase-cost host profile (ns/cycle)
//! repro bench [divisor]       ticked-vs-event engine microbenchmark
//! repro chaos                  fault-injection chaos campaign
//! repro trend [file] [--gate]  perf-trend analysis of the bench history
//! repro all [divisor]         everything above (except selftest/explain/bench/chaos)
//! repro obs-validate <dir>     validate a directory of exports
//! repro history-append <file>  validated append of a history line (stdin)
//! ```
//!
//! Every subcommand (except `pipeline`) expands into independent
//! experiment cells executed by the parallel runner; `--jobs N` (or
//! `--jobs=N`) sets the worker count, defaulting to the machine's
//! available parallelism. Results are collected in cell order before
//! anything is printed, so the output is byte-identical for every job
//! count. Each run also writes `BENCH_repro.json` with per-cell wall
//! time, simulated cycles, throughput, and completion status.
//!
//! Robustness flags:
//!
//! - `--keep-going` — cells are already panic-isolated; additionally
//!   render every section whose cells all succeeded instead of rendering
//!   nothing when something failed. The exit code is still nonzero.
//! - `--check LEVEL` — run every simulation with the architectural
//!   invariant checker at `off`, `retire`, or `cycle` level
//!   (see `mcl_core::check`).
//! - `--engine ENGINE` — run every simulation on the `ticked` or the
//!   `event` engine (default `event`; see `mcl_core::config::Engine`).
//!   The engines produce byte-identical results; the event engine
//!   fast-forwards across dead cycles and is several times faster.
//! - `--watchdog SECS` — each cell's simulations run under a hard
//!   cooperative deadline: a cell whose simulation exceeds the budget is
//!   cancelled with a structured timeout error and the run exits
//!   nonzero. Cells that overrun the budget *outside* the simulator
//!   (trace building, rendering) still complete, are marked
//!   `watchdog_exceeded` in `BENCH_repro.json`, and also fail the run's
//!   exit code. For `repro chaos` the value overrides the per-attempt
//!   campaign budget (default 30 s).
//! - `--store DIR` — a crash-safe persistent result store: serial
//!   simulation results are cached on disk keyed by content hash of the
//!   packed trace and configuration, so a warm rerun serves
//!   byte-identical statistics without simulating. Entries are written
//!   atomically, checksummed on read, and corrupt entries are
//!   quarantined and transparently recomputed; the store is bounded
//!   (LRU, `MCL_STORE_CAP_BYTES`, default 256 MiB) and safe for
//!   concurrent `repro` processes. Disk counters land in
//!   `BENCH_repro.json`.
//! - `--shards K` — split each (long enough) fresh simulation into K
//!   parallel time windows with functional warmup and merged statistics
//!   (see `mcl_core::shard`). `--shards 1` (the default) is exactly the
//!   serial path, byte-identical output; K > 1 trades bounded,
//!   reported cycle-count divergence (with automatic serial fallback)
//!   for wall-clock speed. `repro selftest` and `repro bench` honor the
//!   flag too.
//!
//! Observability flags (see `mcl_bench::obs`):
//!
//! - `--obs OUT_DIR` — for every Table 2, ablation, and scenario cell,
//!   run an instrumented companion simulation and export
//!   `<stem>.series.json` (interval time series + latency histograms)
//!   and `<stem>.trace.json` (Chrome trace events, Perfetto-loadable)
//!   into `OUT_DIR`. The cell's reported statistics still come from the
//!   uninstrumented run, and the two are cross-checked for byte
//!   identity. Ablation cells export their family-representative
//!   configuration under `ablate-<family>-<bench>`; scenario cells
//!   export under `scenario<N>`.
//! - `--sample-interval N` — sampling interval in cycles for `--obs`
//!   (default 1024).
//!
//! Explain flags (see `mcl_bench::explain`):
//!
//! - `repro explain [divisor]` — for every benchmark, rerun the
//!   dual-cluster/local Table 2 cell with the critical-path attribution
//!   probe, write `<bench>.critpath.json` (into `--obs OUT_DIR`, or
//!   `critpath_out` by default), and print the per-cause cycle
//!   breakdown. The attribution identity (causes sum exactly to total
//!   cycles) is enforced on every cell.
//! - `--baseline single|dual-none` — differential mode: also attribute
//!   the named Table 2 reference cell and report the per-cause share of
//!   the slowdown against it.
//!
//! Pipetrace flags (see `mcl_bench::pipetrace`):
//!
//! - `repro pipetrace [divisor]` — for every benchmark (or just
//!   `MCL_ONLY`), rerun the dual-cluster/local Table 2 cell with the
//!   per-instruction lifecycle probe and write two artifacts into
//!   `--out DIR` (default `pipetrace_out`): `<bench>.konata`, a
//!   Konata/O3-pipeview-compatible text trace (fetch/dispatch/execute/
//!   complete stages, retire and flush records, inter-cluster
//!   dependency arrows), and `<bench>.pipetrace.json`, the
//!   machine-readable lifecycle list plus the inter-cluster dataflow
//!   edge list (producer → consumer, delivery cycle, crossed buffer,
//!   occupancy at send). The retire-exactness identity (every retired
//!   op exactly once, monotone lifecycle, well-formed edges, count
//!   equal to the simulator's retirements) is enforced on every cell.
//! - `--range A..B` — restrict the recorded ops to retired sequence
//!   numbers in `[A, B)`; `A..` and `..B` are accepted. Default: the
//!   full run.
//! - `--out DIR` — the export directory (`--obs OUT_DIR` is honored as
//!   a fallback for symmetry with `explain` / `profile`).
//! - `--baseline single|dual-none` — differential mode: also trace the
//!   named Table 2 reference cell and report per-op slip (the change in
//!   each aligned op's retire-to-retire gap), ranked by contribution;
//!   the slips telescope exactly to the total retire-cycle drift.
//!
//! Profiling flags (see `mcl_bench::profile`, `mcl_bench::flight`, and
//! `mcl_bench::trend`):
//!
//! - `repro profile [divisor]` — for every benchmark, rerun the
//!   dual-cluster/local Table 2 cell on the event engine with the host
//!   phase profiler, write `<bench>.hostprof.json` (into `--obs
//!   OUT_DIR`, or `hostprof_out` by default), and print the ranked
//!   host-ns-per-live-cycle phase breakdown. The sum-to-elapsed
//!   identity (phase nanoseconds telescope to the sampled span, within
//!   a stated slop of the cell's wall time) is enforced on every cell.
//! - `--flight FILE` — record a whole-run host flight recording: one
//!   Chrome trace-event file covering every cell, trace build,
//!   simulation, persistent-store load/store, and shard-worker window
//!   across the invocation, written to `FILE` after the run. Recording
//!   off is one relaxed atomic load per site, and the recording never
//!   alters results — `repro` output is byte-identical with the flag
//!   on or off.
//! - `repro trend [FILE] [--gate]` — parse the appended bench history
//!   (`BENCH_repro.history.jsonl` by default, mixed schema versions
//!   tolerated), compare the latest run against the per-group baseline
//!   with noise-banded thresholds, and print a ranked per-metric
//!   report. `--gate` exits nonzero when any metric regressed beyond
//!   its noise band.

use std::ops::Range;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use mcl_bench::explain::{self, Baseline};
use mcl_bench::obs::{self, ObsSettings, ObsTarget};
use mcl_bench::runner::{self, Cell, CellCost, CellStatus, RunInfo};
use mcl_bench::{
    ablate, crossover, figure6, scenarios, selftest, table1, table2, Table2Row, TraceRequest,
    TraceStore,
};
use mcl_core::check::CheckLevel;
use mcl_core::ProcessorConfig;
use mcl_sched::SchedulerKind;
use mcl_workloads::Benchmark;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = match take_jobs_flag(&mut args) {
        Ok(jobs) => jobs.unwrap_or_else(runner::default_jobs),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let keep_going = take_switch(&mut args, "--keep-going");
    let check_level = match take_value_flag(&mut args, "--check") {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let watchdog = match take_value_flag(&mut args, "--watchdog") {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(level) = check_level {
        match level.parse::<CheckLevel>() {
            // Configuration presets built anywhere below (including deep
            // inside experiment cells) read this process-wide default.
            Ok(level) => mcl_core::check::set_global_level(level),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    match take_value_flag(&mut args, "--engine") {
        Ok(None) => {}
        Ok(Some(v)) => match v.parse::<mcl_core::Engine>() {
            // Like --check: presets built anywhere below read this
            // process-wide default.
            Ok(engine) => mcl_core::set_global_engine(engine),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        },
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    let watchdog_seconds = match watchdog {
        None => None,
        Some(v) => match v.parse::<f64>() {
            Ok(secs) if secs > 0.0 => Some(secs),
            _ => {
                eprintln!("error: invalid --watchdog value `{v}`");
                return ExitCode::FAILURE;
            }
        },
    };
    let store_dir = match take_value_flag(&mut args, "--store") {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let shards = match take_value_flag(&mut args, "--shards") {
        Ok(None) => 1,
        Ok(Some(v)) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("error: invalid --shards value `{v}`");
                return ExitCode::FAILURE;
            }
        },
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let obs_dir = match take_value_flag(&mut args, "--obs") {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let sample_interval = match take_value_flag(&mut args, "--sample-interval") {
        Ok(None) => 1024,
        Ok(Some(v)) => match v.parse::<u64>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("error: invalid --sample-interval value `{v}`");
                return ExitCode::FAILURE;
            }
        },
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline = match take_value_flag(&mut args, "--baseline") {
        Ok(None) => None,
        Ok(Some(v)) => match Baseline::parse(&v) {
            Ok(b) => Some(b),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        },
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let range = match take_value_flag(&mut args, "--range") {
        Ok(None) => None,
        Ok(Some(v)) => match mcl_bench::pipetrace::parse_range(&v) {
            Ok(r) => Some((v, r)),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        },
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let out_dir = match take_value_flag(&mut args, "--out") {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let flight_path = match take_value_flag(&mut args, "--flight") {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if flight_path.is_some() {
        // Turn the recorder on before any cell, trace build, or store
        // access so the recording covers the whole invocation.
        mcl_bench::flight::enable();
    }
    let obs_settings =
        obs_dir.map(|dir| ObsSettings { dir: PathBuf::from(dir), sample_interval });
    let mut options = RunOptions {
        keep_going,
        watchdog_seconds,
        obs: obs_settings,
        explain: None,
        profile: None,
        pipetrace: None,
        flight: flight_path,
    };
    let cmd = args.first().cloned().unwrap_or_else(|| "all".to_owned());
    let divisor: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1);

    if cmd == "pipeline" {
        return match run_pipeline(args.get(1).map_or("compress", String::as_str)) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if cmd == "bench" {
        return match mcl_bench::microbench::run(divisor, shards) {
            Ok(rows) => {
                print!("{}", mcl_bench::microbench::render(&rows, divisor, shards));
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if cmd == "chaos" {
        let budget = watchdog_seconds.unwrap_or(mcl_bench::chaos::DEFAULT_WATCHDOG_SECONDS);
        let report = mcl_bench::chaos::run(jobs, budget);
        print!("{}", mcl_bench::chaos::render(&report));
        return if report.passed() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }

    if cmd == "trend" {
        let gate = take_switch(&mut args, "--gate");
        let path = args.get(1).map_or("BENCH_repro.history.jsonl", String::as_str);
        return run_trend(std::path::Path::new(path), gate);
    }

    if cmd == "history-append" {
        let Some(path) = args.get(1) else {
            eprintln!("error: history-append requires a history file path");
            return ExitCode::FAILURE;
        };
        return run_history_append(std::path::Path::new(path));
    }

    if cmd == "obs-validate" {
        let Some(dir) = args.get(1) else {
            eprintln!("error: obs-validate requires a directory");
            return ExitCode::FAILURE;
        };
        return match obs::validate_dir(std::path::Path::new(dir)) {
            Ok(summary) => {
                println!("obs-validate {dir}: {summary}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    // One trace store shared by every cell: distinct traces build once
    // and are reused across experiments (and across workers under
    // `--jobs N`). With `--store DIR`, serial simulation results are
    // additionally cached on disk across processes.
    let mut store = TraceStore::new().with_shards(shards);
    if let Some(dir) = store_dir {
        match mcl_bench::PersistStore::open(std::path::Path::new(&dir)) {
            Ok(persist) => store = store.with_persist(Arc::new(persist)),
            Err(e) => {
                eprintln!("error: --store {dir}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let store = Arc::new(store);
    let mut plan = Plan::default();
    match cmd.as_str() {
        "table1" => plan_table1(&mut plan),
        "table2" => {
            plan_table2(&mut plan, &store, divisor, mcl_only().as_deref(), options.obs.as_ref());
        }
        "scenarios" => plan_scenarios(&mut plan, options.obs.as_ref()),
        "fig6" => plan_fig6(&mut plan),
        "crossover" => {
            let rows = plan_table2_cells(&mut plan, &store, divisor, None, options.obs.as_ref());
            plan_crossover(&mut plan, rows);
        }
        "ablate-buffers" => plan_ablate_buffers(&mut plan, &store, divisor, options.obs.as_ref()),
        "ablate-threshold" => {
            plan_ablate_threshold(&mut plan, &store, divisor, options.obs.as_ref());
        }
        "ablate-dq" => plan_ablate_dq(&mut plan, &store, divisor, options.obs.as_ref()),
        "ablate-globals" => plan_ablate_globals(&mut plan, &store, divisor, options.obs.as_ref()),
        "ablate-width" => plan_ablate_width(&mut plan, &store, divisor, options.obs.as_ref()),
        "ablate-unroll" => plan_ablate_unroll(&mut plan, &store, divisor, options.obs.as_ref()),
        "mix" => plan_mix(&mut plan, divisor),
        "schedulers" => plan_schedulers(&mut plan, &store, divisor),
        "selftest" => plan_selftest(&mut plan, divisor, shards),
        "explain" => {
            let dir = options
                .obs
                .as_ref()
                .map_or_else(|| PathBuf::from("critpath_out"), |s| s.dir.clone());
            options.explain =
                Some((dir.display().to_string(), baseline.map(|b| b.name().to_owned())));
            plan_explain(&mut plan, &store, divisor, dir, baseline, mcl_only().as_deref());
        }
        "profile" => {
            let dir = options
                .obs
                .as_ref()
                .map_or_else(|| PathBuf::from("hostprof_out"), |s| s.dir.clone());
            options.profile = Some(dir.display().to_string());
            plan_profile(&mut plan, &store, divisor, dir, mcl_only().as_deref());
        }
        "pipetrace" => {
            let dir = out_dir.map(PathBuf::from).unwrap_or_else(|| {
                options
                    .obs
                    .as_ref()
                    .map_or_else(|| PathBuf::from("pipetrace_out"), |s| s.dir.clone())
            });
            let (range_str, range) = match &range {
                Some((s, r)) => (Some(s.clone()), *r),
                None => (None, (0, u64::MAX)),
            };
            options.pipetrace = Some((
                dir.display().to_string(),
                range_str,
                baseline.map(|b| b.name().to_owned()),
            ));
            plan_pipetrace(&mut plan, &store, divisor, dir, range, baseline, mcl_only().as_deref());
        }
        "all" => plan_all(&mut plan, &store, divisor, options.obs.as_ref()),
        other => {
            eprintln!("unknown subcommand `{other}`; see the module docs for usage");
            return ExitCode::FAILURE;
        }
    }

    // Test hook: append one deliberately panicking cell, to exercise
    // the fault-isolated driver end to end (used by scripts/ci.sh).
    if std::env::var("MCL_PANIC_CELL").is_ok() {
        plan.section(
            vec![Cell::new("panic-probe", || {
                panic!("deliberate panic injected via MCL_PANIC_CELL")
            })],
            Box::new(|_| {}),
        );
    }

    match plan.execute(&cmd, divisor, jobs, options, &store) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `repro history-append <file>`: reads one candidate history line from
/// stdin, validates it against the existing file
/// ([`mcl_bench::microbench::validate_history_line`]), and appends only
/// well-formed, schema-current, non-duplicate lines. Skips warn on
/// stderr but exit 0 — a benign rerun must not fail CI; only I/O errors
/// are fatal.
fn run_history_append(path: &std::path::Path) -> ExitCode {
    use std::io::Read as _;

    use mcl_bench::microbench::{malformed_history_lines, validate_history_line, HistoryVerdict};

    let mut candidate = String::new();
    if let Err(e) = std::io::stdin().read_to_string(&mut candidate) {
        eprintln!("error: history-append: reading stdin: {e}");
        return ExitCode::FAILURE;
    }
    let candidate = candidate.trim();
    if candidate.is_empty() {
        eprintln!("error: history-append: no candidate line on stdin");
        return ExitCode::FAILURE;
    }
    let existing = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => {
            eprintln!("error: history-append: reading {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    for (line, why) in malformed_history_lines(&existing) {
        eprintln!("warning: history-append: {} line {line}: {why}", path.display());
    }
    match validate_history_line(&existing, candidate) {
        HistoryVerdict::Append => {
            // Append-only: existing lines are never rewritten, so a
            // crash mid-append can at worst leave one torn trailing
            // line — which the next run's validation pass reports.
            use std::io::Write as _;
            let result = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .and_then(|mut f| {
                    let newline = if existing.is_empty() || existing.ends_with('\n') {
                        ""
                    } else {
                        "\n"
                    };
                    writeln!(f, "{newline}{candidate}")
                });
            if let Err(e) = result {
                eprintln!("error: history-append: writing {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            println!("history-append: appended to {}", path.display());
            ExitCode::SUCCESS
        }
        HistoryVerdict::Skip(why) => {
            eprintln!("warning: history-append: skipped line ({why})");
            ExitCode::SUCCESS
        }
    }
}

/// `repro trend [FILE] [--gate]`: analyzes the appended bench history
/// ([`mcl_bench::trend`]) and prints the per-group, per-metric report.
/// Unreadable files, empty histories, and all-garbage histories are
/// hard errors — a gate that silently passes on a missing history
/// guards nothing. With `gate`, regressions beyond the noise band fail
/// the exit code too.
fn run_trend(path: &std::path::Path, gate: bool) -> ExitCode {
    let history = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: trend: reading {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    match mcl_bench::trend::analyze(&history) {
        Ok(report) => {
            print!("{}", mcl_bench::trend::render(&report));
            let regressions = report.regressions();
            if gate && regressions > 0 {
                eprintln!(
                    "error: trend --gate: {regressions} metric(s) regressed beyond the noise band"
                );
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("error: trend: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Driver-level robustness and observability options.
#[derive(Clone, Default)]
struct RunOptions {
    keep_going: bool,
    watchdog_seconds: Option<f64>,
    obs: Option<ObsSettings>,
    /// `(export dir, baseline name)` of a `repro explain` run, recorded
    /// in `BENCH_repro.json`.
    explain: Option<(String, Option<String>)>,
    /// Export dir of a `repro profile` run, recorded in
    /// `BENCH_repro.json`.
    profile: Option<String>,
    /// `(export dir, range string, baseline name)` of a
    /// `repro pipetrace` run, recorded in `BENCH_repro.json`.
    pipetrace: Option<(String, Option<String>, Option<String>)>,
    /// `--flight FILE` target, recorded in `BENCH_repro.json`; the
    /// recording is written there after every cell has finished.
    flight: Option<String>,
}

/// Extracts `--jobs N` / `--jobs=N` from the argument list.
fn take_jobs_flag(args: &mut Vec<String>) -> Result<Option<usize>, String> {
    let mut jobs = None;
    let mut i = 0;
    while i < args.len() {
        let value = if args[i] == "--jobs" {
            if i + 1 >= args.len() {
                return Err("--jobs requires a value".to_owned());
            }
            let v = args[i + 1].clone();
            args.drain(i..=i + 1);
            v
        } else if let Some(v) = args[i].strip_prefix("--jobs=") {
            let v = v.to_owned();
            args.remove(i);
            v
        } else {
            i += 1;
            continue;
        };
        let parsed: usize =
            value.parse().map_err(|_| format!("invalid --jobs value `{value}`"))?;
        if parsed == 0 {
            return Err("--jobs must be at least 1".to_owned());
        }
        jobs = Some(parsed);
    }
    Ok(jobs)
}

/// Extracts a boolean `--flag` switch; returns whether it was present.
fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    let before = args.len();
    args.retain(|a| a != flag);
    args.len() != before
}

/// Extracts `--flag VALUE` / `--flag=VALUE` from the argument list.
fn take_value_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let mut value = None;
    let prefix = format!("{flag}=");
    let mut i = 0;
    while i < args.len() {
        if args[i] == flag {
            if i + 1 >= args.len() {
                return Err(format!("{flag} requires a value"));
            }
            value = Some(args[i + 1].clone());
            args.drain(i..=i + 1);
        } else if let Some(v) = args[i].strip_prefix(&prefix) {
            value = Some(v.to_owned());
            args.remove(i);
        } else {
            i += 1;
        }
    }
    Ok(value)
}

fn mcl_only() -> Option<String> {
    std::env::var("MCL_ONLY").ok()
}

/// What one cell computed: either a pre-rendered text fragment or a
/// Table 2 row (kept structured so the crossover section can reuse it).
#[derive(Clone)]
enum Payload {
    Text(String),
    Row(Box<Table2Row>),
}

fn text(p: &Payload) -> &str {
    match p {
        Payload::Text(s) => s,
        Payload::Row(_) => unreachable!("section expected a text payload"),
    }
}

fn rows_of(ps: &[Payload]) -> Vec<Table2Row> {
    ps.iter()
        .map(|p| match p {
            Payload::Row(r) => (**r).clone(),
            Payload::Text(_) => unreachable!("section expected row payloads"),
        })
        .collect()
}

type Render = Box<dyn FnOnce(&[Payload])>;

/// An execution plan: a flat list of cells (executed once, possibly in
/// parallel) plus ordered sections that render slices of the results.
#[derive(Default)]
struct Plan {
    cells: Vec<Cell<Payload>>,
    sections: Vec<(Range<usize>, Render)>,
}

impl Plan {
    /// Appends cells and a renderer over exactly those cells.
    fn section(&mut self, cells: Vec<Cell<Payload>>, render: Render) -> Range<usize> {
        let start = self.cells.len();
        self.cells.extend(cells);
        let range = start..self.cells.len();
        self.sections.push((range.clone(), render));
        range
    }

    /// Appends a renderer over an existing cell range (no new work) —
    /// how the crossover section shares Table 2's rows.
    fn derived_section(&mut self, range: Range<usize>, render: Render) {
        self.sections.push((range, render));
    }

    /// Runs all cells on the worker pool (panic-isolated), renders the
    /// sections in order, and writes `BENCH_repro.json` — including the
    /// per-cell statuses of a failed run.
    ///
    /// When everything succeeds, every section renders and the output is
    /// byte-identical to the pre-isolation driver. On failure the report
    /// is still written and the run exits nonzero; with `keep_going` the
    /// sections whose cells all succeeded still render first.
    fn execute(
        self,
        command: &str,
        divisor: u32,
        jobs: usize,
        options: RunOptions,
        store: &TraceStore,
    ) -> Result<(), String> {
        let start = Instant::now();
        let (payloads, metrics) =
            runner::run_cells_isolated(jobs, self.cells, options.watchdog_seconds);
        let failed: Vec<String> = metrics
            .iter()
            .filter(|m| m.status != CellStatus::Ok)
            .map(|m| {
                format!(
                    "cell `{}` {}: {}",
                    m.id,
                    m.status.name(),
                    m.status.message().unwrap_or("unknown failure")
                )
            })
            .collect();
        // Soft-watchdog overruns (cells that completed Ok but blew the
        // budget outside the simulator) still render — their payloads
        // are valid — but fail the exit code: a budget the caller set is
        // a contract, not a suggestion.
        let overran: Vec<String> = metrics
            .iter()
            .filter(|m| m.status == CellStatus::Ok && m.watchdog_exceeded)
            .map(|m| {
                format!(
                    "cell `{}` exceeded the soft watchdog budget ({:.3}s wall)",
                    m.id, m.wall_seconds
                )
            })
            .collect();

        if failed.is_empty() {
            let payloads: Vec<Payload> =
                payloads.into_iter().map(|p| p.expect("no cell failed")).collect();
            for (range, render) in self.sections {
                render(&payloads[range]);
            }
        } else if options.keep_going {
            for (range, render) in self.sections {
                if payloads[range.clone()].iter().all(Option::is_some) {
                    let complete: Vec<Payload> = payloads[range]
                        .iter()
                        .map(|p| p.clone().expect("checked complete"))
                        .collect();
                    render(&complete);
                } else {
                    eprintln!("warning: section with failed cells skipped");
                }
            }
        }

        // Write the flight recording once every cell has finished, so
        // it covers the full run; an unwritable recording is a warning
        // (like the report below), not a lost run.
        if let Some(flight) = &options.flight {
            match mcl_bench::flight::write(std::path::Path::new(flight)) {
                Ok(()) => eprintln!("flight recording written to {flight}"),
                Err(e) => eprintln!("warning: could not write flight recording {flight}: {e}"),
            }
        }

        let path = std::path::Path::new("BENCH_repro.json");
        let info = RunInfo {
            command: command.to_owned(),
            divisor,
            jobs,
            engine: mcl_core::global_engine().name().to_owned(),
            shards: store.shards(),
            total_wall_seconds: start.elapsed().as_secs_f64(),
            keep_going: options.keep_going,
            watchdog_seconds: options.watchdog_seconds,
            obs_dir: options.obs.as_ref().map(|s| s.dir.display().to_string()),
            sample_interval: options.obs.as_ref().map_or(0, |s| s.sample_interval),
            explain_dir: options.explain.as_ref().map(|(dir, _)| dir.clone()),
            explain_baseline: options.explain.as_ref().and_then(|(_, b)| b.clone()),
            profile_dir: options.profile.clone(),
            pipetrace_dir: options.pipetrace.as_ref().map(|(dir, _, _)| dir.clone()),
            pipetrace_range: options.pipetrace.as_ref().and_then(|(_, r, _)| r.clone()),
            pipetrace_baseline: options.pipetrace.as_ref().and_then(|(_, _, b)| b.clone()),
            flight_path: options.flight.clone(),
        };
        if let Err(e) = runner::write_report(path, &info, &store.counters(), &metrics) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }

        if failed.is_empty() && overran.is_empty() {
            Ok(())
        } else {
            for f in failed.iter().chain(&overran) {
                eprintln!("error: {f}");
            }
            Err(format!(
                "{} of {} cells failed",
                failed.len() + overran.len(),
                metrics.len()
            ))
        }
    }
}

fn plan_table1(plan: &mut Plan) {
    plan.section(
        vec![Cell::new("table1", || Ok((Payload::Text(table1::render()), CellCost::default())))],
        Box::new(|ps| println!("{}", text(&ps[0]))),
    );
}

/// Adds one Table 2 cell per benchmark (no rendering); returns the cell
/// range so both the Table 2 and crossover sections can consume it.
///
/// With `obs` set, each cell additionally runs an instrumented companion
/// simulation and writes its exports ([`obs::observe_cell`]); the
/// companion's cycles are not charged to the cell cost, so the report's
/// aggregate statistics stay identical with `--obs` on or off.
fn plan_table2_cells(
    plan: &mut Plan,
    store: &Arc<TraceStore>,
    divisor: u32,
    only: Option<&str>,
    obs: Option<&ObsSettings>,
) -> Range<usize> {
    let start = plan.cells.len();
    for &bench in Benchmark::ALL.iter().filter(|b| only.is_none_or(|name| b.name() == name)) {
        let scale = bench.scaled(divisor);
        let store = Arc::clone(store);
        let obs = obs.cloned();
        plan.cells.push(Cell::new(format!("table2/{bench}"), move || {
            let (row, cost) = table2::table2_row_with(&store, bench, scale)?;
            if let Some(settings) = &obs {
                obs::observe_cell(&store, bench, scale, settings)?;
            }
            Ok((Payload::Row(Box::new(row)), cost))
        }));
    }
    start..plan.cells.len()
}

fn plan_table2(
    plan: &mut Plan,
    store: &Arc<TraceStore>,
    divisor: u32,
    only: Option<&str>,
    obs: Option<&ObsSettings>,
) -> Range<usize> {
    let range = plan_table2_cells(plan, store, divisor, only, obs);
    plan.derived_section(
        range.clone(),
        Box::new(|ps| {
            let rows = rows_of(ps);
            println!("{}", table2::render(&rows));
            println!("{}", table2::render_details(&rows));
        }),
    );
    range
}

fn plan_crossover(plan: &mut Plan, table2_cells: Range<usize>) {
    plan.derived_section(
        table2_cells,
        Box::new(|ps| {
            let rows = rows_of(ps);
            let cross = crossover::from_table2(&rows);
            println!("{}", crossover::render(&cross));
        }),
    );
}

fn plan_scenarios(plan: &mut Plan, obs: Option<&ObsSettings>) {
    let obs = obs.cloned();
    plan.section(
        vec![Cell::new("scenarios", move || {
            let timelines = scenarios::run_all()?;
            if let Some(settings) = &obs {
                for s in mcl_workloads::scenarios::all() {
                    obs::observe_scenario(&s, settings)?;
                }
            }
            Ok((Payload::Text(scenarios::render(&timelines)), CellCost::default()))
        })],
        Box::new(|ps| println!("{}", text(&ps[0]))),
    );
}

fn plan_fig6(plan: &mut Plan) {
    plan.section(
        vec![Cell::new("fig6", || Ok((Payload::Text(figure6::render()), CellCost::default())))],
        Box::new(|ps| println!("{}", text(&ps[0]))),
    );
}

/// The common shape of the sweep ablations (A1/A2/A3/A6): one cell per
/// benchmark, each rendering its own sweep table.
fn plan_sweep(
    plan: &mut Plan,
    id: &str,
    store: &Arc<TraceStore>,
    divisor: u32,
    sweep: impl Fn(&TraceStore, Benchmark, u32) -> Result<(String, CellCost), mcl_bench::Error>
        + Send
        + Clone
        + 'static,
) {
    let cells = Benchmark::ALL
        .iter()
        .map(|&bench| {
            let sweep = sweep.clone();
            let store = Arc::clone(store);
            Cell::new(format!("{id}/{bench}"), move || {
                let (rendered, cost) = sweep(&store, bench, bench.scaled(divisor))?;
                Ok((Payload::Text(rendered), cost))
            })
        })
        .collect();
    plan.section(
        cells,
        Box::new(|ps| {
            for p in ps {
                println!("{}", text(p));
            }
        }),
    );
}

/// Exports the family-representative instrumented companion of one
/// ablation cell (`--obs` on `repro ablate-*`): the sweep's statistics
/// come from the ordinary uninstrumented runs; the export covers one
/// canonical `(request, configuration)` of the family under the stem
/// `<family>-<bench>`.
fn observe_ablate(
    store: &TraceStore,
    family: &str,
    bench: Benchmark,
    req: &TraceRequest,
    cfg: &ProcessorConfig,
    (config_label, sched_label): (&'static str, &'static str),
    obs: Option<&ObsSettings>,
) -> Result<(), mcl_bench::Error> {
    if let Some(settings) = obs {
        let stem = format!("{family}-{bench}");
        obs::observe_request(
            store,
            req,
            cfg,
            ObsTarget { stem: &stem, config_label, sched_label },
            settings,
        )?;
    }
    Ok(())
}

fn plan_ablate_buffers(plan: &mut Plan, store: &Arc<TraceStore>, divisor: u32, obs: Option<&ObsSettings>) {
    let obs = obs.cloned();
    plan_sweep(plan, "ablate-buffers", store, divisor, move |store, bench, scale| {
        let (points, cost) = ablate::buffers(store, bench, scale, &[1, 2, 4, 8, 16, 32])?;
        observe_ablate(
            store,
            "ablate-buffers",
            bench,
            &TraceRequest::new(bench, scale, SchedulerKind::Local),
            &ProcessorConfig::dual_cluster_8way(),
            ("dual_cluster_8way", "local"),
            obs.as_ref(),
        )?;
        let rendered = ablate::render_sweep(
            &format!("A1: transfer-buffer entries per cluster — {bench}"),
            "entries",
            &points,
        );
        Ok((rendered, cost))
    });
}

fn plan_ablate_threshold(plan: &mut Plan, store: &Arc<TraceStore>, divisor: u32, obs: Option<&ObsSettings>) {
    let obs = obs.cloned();
    plan_sweep(plan, "ablate-threshold", store, divisor, move |store, bench, scale| {
        let (points, cost) =
            ablate::threshold(store, bench, scale, &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0])?;
        observe_ablate(
            store,
            "ablate-threshold",
            bench,
            &TraceRequest::new(bench, scale, SchedulerKind::Local),
            &ProcessorConfig::dual_cluster_8way(),
            ("dual_cluster_8way", "local"),
            obs.as_ref(),
        )?;
        let rendered = ablate::render_sweep(
            &format!("A2: local-scheduler imbalance threshold — {bench}"),
            "threshold",
            &points,
        );
        Ok((rendered, cost))
    });
}

fn plan_ablate_dq(plan: &mut Plan, store: &Arc<TraceStore>, divisor: u32, obs: Option<&ObsSettings>) {
    let obs = obs.cloned();
    plan_sweep(plan, "ablate-dq", store, divisor, move |store, bench, scale| {
        let (points, cost) = ablate::dq_single(store, bench, scale, &[16, 32, 64, 128, 256])?;
        observe_ablate(
            store,
            "ablate-dq",
            bench,
            &TraceRequest::new(bench, scale, SchedulerKind::Naive),
            &ProcessorConfig::single_cluster_8way(),
            ("single_cluster_8way", "naive"),
            obs.as_ref(),
        )?;
        let rendered = ablate::render_sweep(
            &format!("A3: single-cluster dispatch-queue size — {bench}"),
            "entries",
            &points,
        );
        Ok((rendered, cost))
    });
}

fn plan_ablate_unroll(plan: &mut Plan, store: &Arc<TraceStore>, divisor: u32, obs: Option<&ObsSettings>) {
    let obs = obs.cloned();
    plan_sweep(plan, "ablate-unroll", store, divisor, move |store, bench, scale| {
        let (points, cost) = ablate::unroll(store, bench, scale, &[1, 2, 4])?;
        observe_ablate(
            store,
            "ablate-unroll",
            bench,
            &TraceRequest::new(bench, scale, SchedulerKind::Local).with_unroll(2),
            &ProcessorConfig::dual_cluster_8way(),
            ("dual_cluster_8way", "local"),
            obs.as_ref(),
        )?;
        let rendered = ablate::render_sweep(
            &format!("A6: loop unrolling (dual-cluster, local scheduler) — {bench}"),
            "factor",
            &points,
        );
        Ok((rendered, cost))
    });
}

fn plan_ablate_globals(plan: &mut Plan, store: &Arc<TraceStore>, divisor: u32, obs: Option<&ObsSettings>) {
    let cells = Benchmark::ALL
        .iter()
        .map(|&bench| {
            let store = Arc::clone(store);
            let obs = obs.cloned();
            Cell::new(format!("ablate-globals/{bench}"), move || {
                let ((with, without), cost) =
                    ablate::globals(&store, bench, bench.scaled(divisor))?;
                observe_ablate(
                    &store,
                    "ablate-globals",
                    bench,
                    &TraceRequest::new(bench, bench.scaled(divisor), SchedulerKind::LocalNoGlobals),
                    &ProcessorConfig::dual_cluster_8way(),
                    ("dual_cluster_8way", "local_no_globals"),
                    obs.as_ref(),
                )?;
                let line = format!(
                    "{:<10} {:>14} {:>14}",
                    bench.name(),
                    with.cycles,
                    without.cycles
                );
                Ok((Payload::Text(line), cost))
            })
        })
        .collect();
    plan.section(
        cells,
        Box::new(|ps| {
            println!("A4: global-register designation (dual-cluster, local scheduler)\n");
            println!("{:<10} {:>14} {:>14}", "benchmark", "with globals", "all-local");
            for p in ps {
                println!("{}", text(p));
            }
            println!();
        }),
    );
}

fn plan_ablate_width(plan: &mut Plan, store: &Arc<TraceStore>, divisor: u32, obs: Option<&ObsSettings>) {
    let cells = Benchmark::ALL
        .iter()
        .map(|&bench| {
            let store = Arc::clone(store);
            let obs = obs.cloned();
            Cell::new(format!("ablate-width/{bench}"), move || {
                let ((single, none_pct, local_pct), cost) =
                    ablate::width4(&store, bench, bench.scaled(divisor))?;
                observe_ablate(
                    &store,
                    "ablate-width",
                    bench,
                    &TraceRequest::new(bench, bench.scaled(divisor), SchedulerKind::Local),
                    &ProcessorConfig::dual_cluster_4way(),
                    ("dual_cluster_4way", "local"),
                    obs.as_ref(),
                )?;
                let line = format!(
                    "{:<10} {:>12} {:>11.1}% {:>11.1}%",
                    bench.name(),
                    single,
                    none_pct,
                    local_pct
                );
                Ok((Payload::Text(line), cost))
            })
        })
        .collect();
    plan.section(
        cells,
        Box::new(|ps| {
            println!("A5: four-way issue (single 4-way vs dual 2x2-way)\n");
            println!("{:<10} {:>12} {:>12} {:>12}", "benchmark", "C_single4", "none%", "local%");
            for p in ps {
                println!("{}", text(p));
            }
            println!();
        }),
    );
}

fn plan_schedulers(plan: &mut Plan, store: &Arc<TraceStore>, divisor: u32) {
    let cells = Benchmark::ALL
        .iter()
        .map(|&bench| {
            let store = Arc::clone(store);
            Cell::new(format!("schedulers/{bench}"), move || {
                let (rows, cost) = ablate::schedulers(&store, bench, bench.scaled(divisor))?;
                let lines: Vec<String> = rows
                    .into_iter()
                    .map(|(kind, cycles, dual)| {
                        format!(
                            "{:<10} {:>22} {:>10} {:>6.1}%",
                            bench.name(),
                            kind,
                            cycles,
                            dual
                        )
                    })
                    .collect();
                Ok((Payload::Text(lines.join("\n")), cost))
            })
        })
        .collect();
    plan.section(
        cells,
        Box::new(|ps| {
            println!("B1: dual-cluster cycles by partitioning strategy\n");
            println!("{:<10} {:>22} {:>10} {:>7}", "benchmark", "scheduler", "cycles", "dual%");
            for p in ps {
                println!("{}", text(p));
            }
            println!();
        }),
    );
}

fn plan_mix(plan: &mut Plan, divisor: u32) {
    use mcl_trace::analysis::analyze;
    let cells = Benchmark::ALL
        .iter()
        .map(|&bench| {
            Cell::new(format!("mix/{bench}"), move || {
                let il = bench.build(bench.scaled(divisor));
                let report = analyze(&il).map_err(mcl_bench::Error::Vm)?;
                Ok((Payload::Text(report.render_row()), CellCost::default()))
            })
        })
        .collect();
    plan.section(
        cells,
        Box::new(|ps| {
            use mcl_trace::analysis::MixReport;
            println!("Workload behavioural profiles (intermediate-language form)\n");
            println!("{}", MixReport::render_header());
            for p in ps {
                println!("{}", text(p));
            }
            println!();
        }),
    );
}

fn selftest_cell(
    name: &'static str,
    f: impl FnOnce() -> Result<(String, CellCost), mcl_bench::Error> + Send + 'static,
) -> Cell<Payload> {
    Cell::new(format!("selftest/{name}"), move || {
        let (detail, cost) = f()?;
        Ok((Payload::Text(format!("{name:<16} ok — {detail}")), cost))
    })
}

fn plan_selftest(plan: &mut Plan, divisor: u32, shards: usize) {
    let cells = vec![
        selftest_cell("packed-vs-fat", move || selftest::packed_vs_fat(divisor)),
        selftest_cell("store-vs-fresh", move || selftest::store_vs_fresh(divisor)),
        selftest_cell("jobs-agree", move || selftest::jobs_agree(divisor)),
        selftest_cell("stall-identity", move || selftest::stall_identity(divisor, shards)),
        selftest_cell("critpath-identity", move || {
            selftest::critpath_identity(divisor, shards)
        }),
        selftest_cell("pipetrace-identity", move || {
            selftest::pipetrace_identity(divisor, shards)
        }),
        selftest_cell("hostprof-identity", move || {
            selftest::hostprof_identity(divisor, shards)
        }),
        selftest_cell("fuzz-checker", || selftest::fuzz_checker(24)),
        selftest_cell("leak-fault", selftest::leak_fault_caught),
        selftest_cell("corrupt-packed", selftest::corrupt_packed_rejected),
        selftest_cell("store-recovery", move || selftest::store_recovery(divisor)),
    ];
    plan.section(
        cells,
        Box::new(|ps| {
            println!("Self-checks (differential + fault injection)\n");
            for p in ps {
                println!("{}", text(p));
            }
            println!();
        }),
    );
}

/// Adds one explain cell per benchmark: the critical-path attribution
/// of the dual-cluster/local run (differential against `baseline` when
/// given), exporting `<bench>.critpath.json` into `dir`.
fn plan_explain(
    plan: &mut Plan,
    store: &Arc<TraceStore>,
    divisor: u32,
    dir: PathBuf,
    baseline: Option<Baseline>,
    only: Option<&str>,
) {
    let cells = Benchmark::ALL
        .iter()
        .filter(|b| only.is_none_or(|name| b.name() == name))
        .map(|&bench| {
            let store = Arc::clone(store);
            let dir = dir.clone();
            Cell::new(format!("explain/{bench}"), move || {
                let (rendered, cost) =
                    explain::explain_cell(&store, bench, bench.scaled(divisor), &dir, baseline)?;
                Ok((Payload::Text(rendered), cost))
            })
        })
        .collect();
    plan.section(
        cells,
        Box::new(move |ps| {
            println!("Critical-path cycle-loss attribution (dual-cluster, local scheduler)\n");
            for p in ps {
                println!("{}", text(p));
            }
        }),
    );
}

/// Adds one pipetrace cell per benchmark: the per-instruction lifecycle
/// trace of the dual-cluster/local run (differential against `baseline`
/// when given), exporting `<bench>.konata` and `<bench>.pipetrace.json`
/// into `dir`.
fn plan_pipetrace(
    plan: &mut Plan,
    store: &Arc<TraceStore>,
    divisor: u32,
    dir: PathBuf,
    range: (u64, u64),
    baseline: Option<Baseline>,
    only: Option<&str>,
) {
    let cells = Benchmark::ALL
        .iter()
        .filter(|b| only.is_none_or(|name| b.name() == name))
        .map(|&bench| {
            let store = Arc::clone(store);
            let dir = dir.clone();
            Cell::new(format!("pipetrace/{bench}"), move || {
                let (rendered, cost) = mcl_bench::pipetrace::pipetrace_cell(
                    &store,
                    bench,
                    bench.scaled(divisor),
                    &dir,
                    range,
                    baseline,
                )?;
                Ok((Payload::Text(rendered), cost))
            })
        })
        .collect();
    plan.section(
        cells,
        Box::new(move |ps| {
            println!("Per-instruction pipeline lifecycle trace (dual-cluster, local scheduler)\n");
            for p in ps {
                println!("{}", text(p));
            }
        }),
    );
}

/// Adds one profile cell per benchmark: the host phase-cost profile of
/// the dual-cluster/local run on the event engine, exporting
/// `<bench>.hostprof.json` into `dir`.
fn plan_profile(
    plan: &mut Plan,
    store: &Arc<TraceStore>,
    divisor: u32,
    dir: PathBuf,
    only: Option<&str>,
) {
    let cells = Benchmark::ALL
        .iter()
        .filter(|b| only.is_none_or(|name| b.name() == name))
        .map(|&bench| {
            let store = Arc::clone(store);
            let dir = dir.clone();
            Cell::new(format!("profile/{bench}"), move || {
                let (rendered, cost) =
                    mcl_bench::profile::profile_cell(&store, bench, bench.scaled(divisor), &dir)?;
                Ok((Payload::Text(rendered), cost))
            })
        })
        .collect();
    plan.section(
        cells,
        Box::new(move |ps| {
            println!("Engine phase-cost profile (dual-cluster, local scheduler, event engine)\n");
            for p in ps {
                println!("{}", text(p));
            }
        }),
    );
}

fn plan_all(plan: &mut Plan, store: &Arc<TraceStore>, divisor: u32, obs: Option<&ObsSettings>) {
    plan_table1(plan);
    let table2_cells = plan_table2(plan, store, divisor, mcl_only().as_deref(), obs);
    plan_scenarios(plan, obs);
    plan_fig6(plan);
    // The crossover analysis derives from Table 2's rows; reuse them
    // instead of re-simulating — unless MCL_ONLY restricted Table 2, in
    // which case crossover still covers every benchmark (as the serial
    // driver always did). The extra rows never re-export observability
    // artifacts.
    if mcl_only().is_none() {
        plan_crossover(plan, table2_cells);
    } else {
        let full_rows = plan_table2_cells(plan, store, divisor, None, None);
        plan_crossover(plan, full_rows);
    }
    plan_ablate_buffers(plan, store, divisor, obs);
    plan_ablate_threshold(plan, store, divisor, obs);
    plan_ablate_dq(plan, store, divisor, obs);
    plan_ablate_globals(plan, store, divisor, obs);
    plan_ablate_width(plan, store, divisor, obs);
    plan_ablate_unroll(plan, store, divisor, obs);
    plan_schedulers(plan, store, divisor);
    plan_mix(plan, divisor);
}

fn run_pipeline(bench_name: &str) -> Result<(), mcl_bench::Error> {
    use mcl_core::{render_pipeline, PipeViewOptions, Processor, ProcessorConfig};
    use mcl_isa::assign::RegisterAssignment;
    use mcl_sched::SchedulerKind;
    use mcl_trace::vm::trace_program_packed;

    let Some(bench) = Benchmark::ALL.iter().find(|b| b.name() == bench_name) else {
        eprintln!("unknown benchmark `{bench_name}`");
        return Ok(());
    };
    let il = bench.build((bench.default_scale() / 100).max(1));
    let assign = RegisterAssignment::even_odd_with_default_globals(2);
    let scheduled = mcl_sched::SchedulePipeline::new(SchedulerKind::Local, &assign)
        .run(&il)
        .map_err(mcl_bench::Error::Schedule)?;
    let (trace, _) = trace_program_packed(&scheduled.program, 0).map_err(mcl_bench::Error::Vm)?;
    let result = Processor::new(ProcessorConfig::dual_cluster_8way().with_events())
        .run_packed(&trace)
        .map_err(mcl_bench::Error::Sim)?;
    let events = result.events.expect("events enabled");
    // Show a steady-state window of 48 instructions.
    let mid = (trace.len() as u64 / 2).max(1);
    println!(
        "pipeline view of {bench} (dual-cluster, local scheduler), instructions #{mid}..#{}:
",
        mid + 47
    );
    println!(
        "{}",
        render_pipeline(
            &events,
            PipeViewOptions { first_seq: mid, last_seq: mid + 47, max_cycles: 110 }
        )
    );
    Ok(())
}
