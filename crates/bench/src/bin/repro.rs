//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro table1                 Table 1 (issue rules & latencies)
//! repro table2 [divisor]      Table 2 (speedups; optional scale divisor)
//! repro scenarios              Figures 2–5 (dual-execution timelines)
//! repro fig6                   Figure 6 (local-scheduler walkthrough)
//! repro crossover [divisor]   cycle-time crossover analysis (§4.2/§5)
//! repro ablate-buffers         A1: transfer-buffer sweep
//! repro ablate-threshold       A2: imbalance-threshold sweep
//! repro ablate-dq              A3: dispatch-queue sweep (compress anomaly)
//! repro ablate-globals         A4: global-register designation on/off
//! repro ablate-width           A5: 4-way configurations
//! repro ablate-unroll          A6: loop unrolling (§6 future work)
//! repro mix                    workload behavioural profiles
//! repro schedulers             B1: partitioning-strategy comparison
//! repro pipeline <bench>       per-instruction pipeline diagram
//! repro all [divisor]         everything above
//! ```

use std::process::ExitCode;

use mcl_bench::{ablate, crossover, figure6, scenarios, table1, table2};
use mcl_workloads::Benchmark;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map_or("all", String::as_str);
    let divisor: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1);

    let result = match cmd {
        "table1" => run_table1(),
        "table2" => run_table2(divisor),
        "scenarios" => run_scenarios(),
        "fig6" => run_fig6(),
        "crossover" => run_crossover(divisor),
        "ablate-buffers" => run_ablate_buffers(divisor),
        "ablate-threshold" => run_ablate_threshold(divisor),
        "ablate-dq" => run_ablate_dq(divisor),
        "ablate-globals" => run_ablate_globals(divisor),
        "ablate-width" => run_ablate_width(divisor),
        "ablate-unroll" => run_ablate_unroll(divisor),
        "mix" => run_mix(divisor),
        "schedulers" => run_schedulers(divisor),
        "pipeline" => run_pipeline(args.get(1).map_or("compress", String::as_str)),
        "all" => run_all(divisor),
        other => {
            eprintln!("unknown subcommand `{other}`; see the module docs for usage");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_table1() -> Result<(), mcl_bench::Error> {
    println!("{}", table1::render());
    Ok(())
}

fn run_table2(divisor: u32) -> Result<(), mcl_bench::Error> {
    let only = std::env::var("MCL_ONLY").ok();
    let rows = table2::table2_filtered(divisor, only.as_deref())?;
    println!("{}", table2::render(&rows));
    println!("{}", table2::render_details(&rows));
    Ok(())
}

fn run_scenarios() -> Result<(), mcl_bench::Error> {
    let timelines = scenarios::run_all()?;
    println!("{}", scenarios::render(&timelines));
    Ok(())
}

fn run_fig6() -> Result<(), mcl_bench::Error> {
    println!("{}", figure6::render());
    Ok(())
}

fn run_crossover(divisor: u32) -> Result<(), mcl_bench::Error> {
    let rows = table2::table2(divisor)?;
    let cross = crossover::from_table2(&rows);
    println!("{}", crossover::render(&cross));
    Ok(())
}

fn scaled(b: Benchmark, divisor: u32) -> u32 {
    (b.default_scale() / divisor.max(1)).max(1)
}

fn run_ablate_buffers(divisor: u32) -> Result<(), mcl_bench::Error> {
    for bench in Benchmark::ALL {
        let points = ablate::buffers(bench, scaled(bench, divisor), &[1, 2, 4, 8, 16, 32])?;
        println!(
            "{}",
            ablate::render_sweep(
                &format!("A1: transfer-buffer entries per cluster — {bench}"),
                "entries",
                &points
            )
        );
    }
    Ok(())
}

fn run_ablate_threshold(divisor: u32) -> Result<(), mcl_bench::Error> {
    for bench in Benchmark::ALL {
        let points =
            ablate::threshold(bench, scaled(bench, divisor), &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0])?;
        println!(
            "{}",
            ablate::render_sweep(
                &format!("A2: local-scheduler imbalance threshold — {bench}"),
                "threshold",
                &points
            )
        );
    }
    Ok(())
}

fn run_ablate_dq(divisor: u32) -> Result<(), mcl_bench::Error> {
    for bench in Benchmark::ALL {
        let points = ablate::dq_single(bench, scaled(bench, divisor), &[16, 32, 64, 128, 256])?;
        println!(
            "{}",
            ablate::render_sweep(
                &format!("A3: single-cluster dispatch-queue size — {bench}"),
                "entries",
                &points
            )
        );
    }
    Ok(())
}

fn run_ablate_globals(divisor: u32) -> Result<(), mcl_bench::Error> {
    println!("A4: global-register designation (dual-cluster, local scheduler)\n");
    println!("{:<10} {:>14} {:>14}", "benchmark", "with globals", "all-local");
    for bench in Benchmark::ALL {
        let (with, without) = ablate::globals(bench, scaled(bench, divisor))?;
        println!("{:<10} {:>14} {:>14}", bench.name(), with.cycles, without.cycles);
    }
    println!();
    Ok(())
}

fn run_ablate_width(divisor: u32) -> Result<(), mcl_bench::Error> {
    println!("A5: four-way issue (single 4-way vs dual 2x2-way)\n");
    println!("{:<10} {:>12} {:>12} {:>12}", "benchmark", "C_single4", "none%", "local%");
    for bench in Benchmark::ALL {
        let (single, none_pct, local_pct) = ablate::width4(bench, scaled(bench, divisor))?;
        println!("{:<10} {:>12} {:>11.1}% {:>11.1}%", bench.name(), single, none_pct, local_pct);
    }
    println!();
    Ok(())
}

fn run_mix(divisor: u32) -> Result<(), mcl_bench::Error> {
    use mcl_trace::analysis::{analyze, MixReport};
    println!("Workload behavioural profiles (intermediate-language form)\n");
    println!("{}", MixReport::render_header());
    for bench in Benchmark::ALL {
        let il = bench.build(scaled(bench, divisor));
        let report = analyze(&il).map_err(mcl_bench::Error::Vm)?;
        println!("{}", report.render_row());
    }
    println!();
    Ok(())
}

fn run_pipeline(bench_name: &str) -> Result<(), mcl_bench::Error> {
    use mcl_core::{render_pipeline, PipeViewOptions, Processor, ProcessorConfig};
    use mcl_isa::assign::RegisterAssignment;
    use mcl_sched::SchedulerKind;
    use mcl_trace::vm::trace_program;

    let Some(bench) = Benchmark::ALL.iter().find(|b| b.name() == bench_name) else {
        eprintln!("unknown benchmark `{bench_name}`");
        return Ok(());
    };
    let il = bench.build((bench.default_scale() / 100).max(1));
    let assign = RegisterAssignment::even_odd_with_default_globals(2);
    let scheduled = mcl_sched::SchedulePipeline::new(SchedulerKind::Local, &assign)
        .run(&il)
        .map_err(mcl_bench::Error::Schedule)?;
    let (trace, _) = trace_program(&scheduled.program).map_err(mcl_bench::Error::Vm)?;
    let result = Processor::new(ProcessorConfig::dual_cluster_8way().with_events())
        .run_trace(&trace)
        .map_err(mcl_bench::Error::Sim)?;
    let events = result.events.expect("events enabled");
    // Show a steady-state window of 48 instructions.
    let mid = (trace.len() as u64 / 2).max(1);
    println!(
        "pipeline view of {bench} (dual-cluster, local scheduler), instructions #{mid}..#{}:
",
        mid + 47
    );
    println!(
        "{}",
        render_pipeline(
            &events,
            PipeViewOptions { first_seq: mid, last_seq: mid + 47, max_cycles: 110 }
        )
    );
    Ok(())
}

fn run_schedulers(divisor: u32) -> Result<(), mcl_bench::Error> {
    println!("B1: dual-cluster cycles by partitioning strategy\n");
    println!("{:<10} {:>22} {:>10} {:>7}", "benchmark", "scheduler", "cycles", "dual%");
    for bench in Benchmark::ALL {
        for (kind, cycles, dual) in ablate::schedulers(bench, scaled(bench, divisor))? {
            println!("{:<10} {:>22} {:>10} {:>6.1}%", bench.name(), kind, cycles, dual);
        }
    }
    println!();
    Ok(())
}

fn run_ablate_unroll(divisor: u32) -> Result<(), mcl_bench::Error> {
    for bench in Benchmark::ALL {
        let points = ablate::unroll(bench, scaled(bench, divisor), &[1, 2, 4])?;
        println!(
            "{}",
            ablate::render_sweep(
                &format!("A6: loop unrolling (dual-cluster, local scheduler) — {bench}"),
                "factor",
                &points
            )
        );
    }
    Ok(())
}

fn run_all(divisor: u32) -> Result<(), mcl_bench::Error> {
    run_table1()?;
    run_table2(divisor)?;
    run_scenarios()?;
    run_fig6()?;
    run_crossover(divisor)?;
    run_ablate_buffers(divisor)?;
    run_ablate_threshold(divisor)?;
    run_ablate_dq(divisor)?;
    run_ablate_globals(divisor)?;
    run_ablate_width(divisor)?;
    run_ablate_unroll(divisor)?;
    run_schedulers(divisor)?;
    run_mix(divisor)?;
    Ok(())
}
