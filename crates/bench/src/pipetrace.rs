//! `repro pipetrace` — per-instruction pipeline lifecycle exports.
//!
//! For each benchmark this module reruns the dual-cluster /
//! local-scheduler Table 2 cell with a [`PipeTraceProbe`] attached and
//! turns the recorded lifecycles into two artifacts:
//!
//! - `<bench>.konata` — a Kanata/O3-pipeview text trace viewable in the
//!   stock Konata viewer: one record per retired op (and per flushed
//!   incarnation), staged `F → D → X → Cm`, with `W` dependency lines
//!   for every inter-cluster operand delivery;
//! - `<bench>.pipetrace.json` (schema 1) — the machine-readable
//!   lifecycle list plus the dataflow edge list (producer → consumer,
//!   delivery cycle, crossed buffer, occupancy at send), validated by
//!   `repro obs-validate`.
//!
//! With `--baseline CONFIG` the export turns differential: the same
//! architectural instruction stream is retired by the baseline cell
//! (spill ops the local scheduler inserted are excluded from
//! alignment), and each aligned op gets a *slip* — the change in its
//! retire-to-retire gap against the baseline. Slips telescope: their
//! sum is exactly the difference of the final retire cycles, so "op X
//! contributes +40 cycles of the slowdown" is an identity, not an
//! estimate.
//!
//! Like every probe layer, the instrumented runs are companions: the
//! reported statistics come from the uninstrumented store simulation
//! and the two are cross-checked for byte identity, and the probe's
//! [`PipeTrace::check_identity`] enforces retire exactness (every
//! retired op exactly once, monotone lifecycle, well-formed edges,
//! count equal to `SimStats` retirements).

use std::path::Path;
use std::sync::Arc;

use mcl_core::{PipeTrace, PipeTraceProbe, Processor, ProcessorConfig, TransferKind};
use mcl_sched::SchedulerKind;
use mcl_trace::PackedTrace;
use mcl_workloads::Benchmark;

use crate::explain::Baseline;
use crate::json::Json;
use crate::runner::CellCost;
use crate::store::TraceRequest;
use crate::{Error, TraceStore};

/// Schema version of the `*.pipetrace.json` exports.
pub const PIPETRACE_SCHEMA_VERSION: u64 = 1;

/// Slips kept in the JSON export (the full ranking is summarized by
/// `slip_total`, which is exact).
const MAX_SLIPS: usize = 100;

fn pt_err(stem: &str, detail: impl std::fmt::Display) -> Error {
    Error::Obs(format!("pipetrace {stem}: {detail}"))
}

/// Parses a `--range A..B` value: `A..B`, `A..` (to the end) or `..B`
/// (from the start), with `A <= B`.
///
/// # Errors
///
/// A usage message describing the accepted forms.
pub fn parse_range(s: &str) -> Result<(u64, u64), String> {
    let usage = || format!("invalid --range `{s}` (expected `A..B`, `A..`, or `..B`)");
    let (a, b) = s.split_once("..").ok_or_else(usage)?;
    let start = if a.is_empty() { 0 } else { a.parse::<u64>().map_err(|_| usage())? };
    let end =
        if b.is_empty() { u64::MAX } else { b.parse::<u64>().map_err(|_| usage())? };
    if start >= end {
        return Err(format!("invalid --range `{s}` (start must be below end)"));
    }
    Ok((start, end))
}

/// One traced run: its identity, headline statistics, the lifecycle
/// snapshot, and the packed trace for op metadata (pc, mnemonic).
struct TracedRun {
    config_label: &'static str,
    sched_label: &'static str,
    cycles: u64,
    retired: u64,
    ipc: f64,
    trace: PipeTrace,
    ops: Arc<PackedTrace>,
}

/// Runs one `(request, configuration)` pair instrumented with a
/// [`PipeTraceProbe`], cross-checks byte identity against the store's
/// uninstrumented run, and enforces the retire-exactness identity.
fn traced_run(
    store: &TraceStore,
    stem: &str,
    req: &TraceRequest,
    cfg: &ProcessorConfig,
    labels: (&'static str, &'static str),
    range: (u64, u64),
    cost: &mut CellCost,
) -> Result<TracedRun, Error> {
    // Probed companions are always serial, so the byte-identity
    // reference must be the serial product even when the store shards
    // fresh runs.
    let expected = store.sim_serial(req, cfg)?;
    cost.charge_sim(&expected);
    let (trace, _) = store.trace(req)?;
    let mut probe = PipeTraceProbe::new(range.0, range.1);
    let observed = Processor::new(cfg.clone())
        .run_packed_observed(&trace, &mut probe)
        .map_err(Error::Sim)?;
    // Observe, never perturb: the companion's cycles are deliberately
    // not charged, so report aggregates match a probe-free run.
    if observed.stats != expected.stats {
        return Err(pt_err(
            stem,
            format!(
                "instrumented run diverged from the store run ({} vs {} cycles) — \
                 probes must not affect simulation",
                observed.stats.cycles, expected.stats.cycles
            ),
        ));
    }
    let pipetrace = probe.finish();
    pipetrace.check_identity(observed.stats.retired).map_err(|e| pt_err(stem, e))?;
    Ok(TracedRun {
        config_label: labels.0,
        sched_label: labels.1,
        cycles: observed.stats.cycles,
        retired: observed.stats.retired,
        ipc: observed.stats.ipc(),
        trace: pipetrace,
        ops: trace,
    })
}

/// One aligned target-vs-baseline retirement with its slip: the change
/// of this op's retire-to-retire gap against the baseline. Slips
/// telescope — summed over the aligned stream they equal the final
/// retire-cycle difference exactly.
#[derive(Debug, Clone)]
struct Slip {
    seq: u64,
    pc: u64,
    slip: i64,
    retire_target: u64,
    retire_baseline: u64,
}

/// Aligns the architectural (non-scheduler-inserted) retired stream of
/// the target against the baseline and computes per-op slips.
fn compute_slips(
    stem: &str,
    target: &TracedRun,
    base: &TracedRun,
) -> Result<(Vec<Slip>, i64), Error> {
    // The baseline's aligned stream: retire cycles of its architectural
    // ops, in order.
    let aligned: Vec<(u64, u64)> = base
        .trace
        .ops
        .iter()
        .filter(|o| !o.sched_inserted)
        .map(|o| (base.ops.get(o.seq as usize).pc, o.retire))
        .collect();
    // Architectural ops the target's range skipped over.
    let skipped = (0..target.trace.range_start.min(target.ops.len() as u64))
        .filter(|&i| !target.ops.get(i as usize).sched_inserted)
        .count();
    let mut slips = Vec::new();
    let (mut prev_t, mut prev_b) = (0u64, 0u64);
    for (k, op) in
        target.trace.ops.iter().filter(|o| !o.sched_inserted).enumerate()
    {
        let pc = target.ops.get(op.seq as usize).pc;
        let Some(&(bpc, bretire)) = aligned.get(skipped + k) else {
            return Err(pt_err(
                stem,
                format!("target op {} has no baseline counterpart", op.seq),
            ));
        };
        if pc != bpc {
            return Err(pt_err(
                stem,
                format!(
                    "alignment drifted at op {}: target pc {pc:#x}, baseline pc {bpc:#x}",
                    op.seq
                ),
            ));
        }
        let slip = (op.retire - prev_t) as i64 - (bretire - prev_b) as i64;
        slips.push(Slip {
            seq: op.seq,
            pc,
            slip,
            retire_target: op.retire,
            retire_baseline: bretire,
        });
        (prev_t, prev_b) = (op.retire, bretire);
    }
    let total = prev_t as i64 - prev_b as i64;
    let sum: i64 = slips.iter().map(|s| s.slip).sum();
    if sum != total {
        return Err(pt_err(
            stem,
            format!("slips sum to {sum}, final retire drift is {total} — not telescoping"),
        ));
    }
    slips.sort_by(|a, b| b.slip.abs().cmp(&a.slip.abs()).then(a.seq.cmp(&b.seq)));
    Ok((slips, total))
}

/// Runs the pipetrace cell of one benchmark: traces the dual-cluster
/// local-scheduler run (and the baseline, when given), writes
/// `<bench>.konata` and `<bench>.pipetrace.json` into `dir`, and
/// returns the rendered text report plus the cell cost.
///
/// # Errors
///
/// [`Error::Obs`] when the retire-exactness identity fails, the
/// instrumented run diverges from the store run, baseline alignment
/// drifts, or an export cannot be written; harness errors propagate.
pub fn pipetrace_cell(
    store: &TraceStore,
    bench: Benchmark,
    scale: u32,
    dir: &Path,
    range: (u64, u64),
    baseline: Option<Baseline>,
) -> Result<(String, CellCost), Error> {
    let mut cost = CellCost::default();
    let target = traced_run(
        store,
        bench.name(),
        &TraceRequest::new(bench, scale, SchedulerKind::Local),
        &ProcessorConfig::dual_cluster_8way(),
        ("dual_cluster_8way", "local"),
        range,
        &mut cost,
    )?;
    // The baseline records the full run: alignment needs its whole
    // architectural retire stream whatever the target range is.
    let base = baseline
        .map(|b| {
            traced_run(
                store,
                &format!("{} baseline", bench.name()),
                &b.request(bench, scale),
                &b.config(),
                b.labels(),
                (0, u64::MAX),
                &mut cost,
            )
        })
        .transpose()?;
    let slips = base
        .as_ref()
        .map(|b| compute_slips(bench.name(), &target, b))
        .transpose()?;

    std::fs::create_dir_all(dir)
        .map_err(|e| pt_err(bench.name(), format!("creating {}: {e}", dir.display())))?;
    let konata_path = dir.join(format!("{}.konata", bench.name()));
    std::fs::write(&konata_path, render_konata(&target))
        .map_err(|e| pt_err(bench.name(), format!("writing {}: {e}", konata_path.display())))?;
    let json_path = dir.join(format!("{}.pipetrace.json", bench.name()));
    let doc = pipetrace_json(bench, &target, baseline, base.as_ref(), slips.as_ref());
    std::fs::write(&json_path, doc.render() + "\n")
        .map_err(|e| pt_err(bench.name(), format!("writing {}: {e}", json_path.display())))?;

    Ok((render_cell(bench, &target, baseline, base.as_ref(), slips.as_ref()), cost))
}

// -- Konata export ----------------------------------------------------------

/// Renders the Kanata 0004 text trace: `I`/`L` declarations, `S` stage
/// starts (`F` fetch, `D` dispatch/wait, `X` execute, `Cm` completed),
/// `R` retires (type 0) and flushes (type 1), and `W` dependency lines
/// for inter-cluster operand deliveries — all in cycle order, the way
/// the stock viewer expects.
fn render_konata(run: &TracedRun) -> String {
    use std::fmt::Write as _;
    let pt = &run.trace;
    // (cycle, text) events; a stable sort keeps per-record lifecycle
    // order inside a cycle.
    let mut events: Vec<(u64, String)> = Vec::new();
    let first_seq = pt.ops.first().map_or(0, |o| o.seq);
    for (k, op) in pt.ops.iter().enumerate() {
        let id = k as u64;
        let top = run.ops.get(op.seq as usize);
        let mut decl = String::new();
        let _ = writeln!(decl, "I\t{id}\t{}\t0", op.seq);
        let _ = writeln!(decl, "L\t{id}\t0\t{:#x}: {}", top.pc, top.op.mnemonic());
        let mut tip = format!("cluster {}", op.master);
        if let Some(s) = op.slave {
            let _ = write!(tip, " + slave {s}");
        }
        if op.replays > 0 {
            let _ = write!(tip, ", {} replay(s)", op.replays);
        }
        if op.load_miss {
            tip.push_str(", load miss");
        }
        if let Some(cause) = op.dispatch_stall {
            let _ = write!(tip, ", dispatch stalled on {}", cause.name());
        }
        if op.blocked_width + op.blocked_otb + op.blocked_rtb > 0 {
            let _ = write!(
                tip,
                ", issue blocked {}w/{}otb/{}rtb",
                op.blocked_width, op.blocked_otb, op.blocked_rtb
            );
        }
        if op.sched_inserted {
            tip.push_str(", sched-inserted");
        }
        let _ = writeln!(decl, "L\t{id}\t1\t{tip}");
        let _ = writeln!(decl, "S\t{id}\t0\tF");
        events.push((op.fetch, decl));
        events.push((op.dispatch, format!("S\t{id}\t0\tD\n")));
        events.push((op.issue, format!("S\t{id}\t0\tX\n")));
        events.push((op.complete, format!("S\t{id}\t0\tCm\n")));
        events.push((op.retire, format!("E\t{id}\t0\tCm\nR\t{id}\t{k}\t0\n")));
    }
    for (j, f) in pt.flushed.iter().enumerate() {
        let id = (pt.ops.len() + j) as u64;
        let top = run.ops.get(f.seq as usize);
        let mut decl = String::new();
        let _ = writeln!(decl, "I\t{id}\t{}\t0", f.seq);
        let _ = writeln!(decl, "L\t{id}\t0\t{:#x}: {} (flushed)", top.pc, top.op.mnemonic());
        let _ = writeln!(decl, "S\t{id}\t0\tF");
        events.push((f.fetch, decl));
        if let Some(d) = f.dispatch {
            events.push((d, format!("S\t{id}\t0\tD\n")));
        }
        if let Some(i) = f.issue {
            events.push((i, format!("S\t{id}\t0\tX\n")));
        }
        events.push((f.squash, format!("R\t{id}\t0\t1\n")));
    }
    for e in &pt.edges {
        // 0 = result forward (RTB), 1 = operand forward (OTB).
        let kind = match e.kind {
            TransferKind::Result => 0,
            TransferKind::Operand => 1,
        };
        let (cid, pid) = (e.consumer - first_seq, e.producer - first_seq);
        events.push((e.deliver, format!("W\t{cid}\t{pid}\t{kind}\n")));
    }
    events.sort_by_key(|&(cycle, _)| cycle);

    let mut out = String::from("Kanata\t0004\n");
    let mut now = events.first().map_or(0, |&(c, _)| c);
    let _ = writeln!(out, "C=\t{now}");
    for (cycle, text) in events {
        if cycle > now {
            let _ = writeln!(out, "C\t{}", cycle - now);
            now = cycle;
        }
        out.push_str(&text);
    }
    out
}

// -- JSON export ------------------------------------------------------------

fn run_json(run: &TracedRun) -> Json {
    let mut obj = Json::object();
    obj.field("config", run.config_label.into())
        .field("scheduler", run.sched_label.into())
        .field("cycles", run.cycles.into())
        .field("retired", run.retired.into())
        .field("ipc", run.ipc.into());
    obj
}

fn pipetrace_json(
    bench: Benchmark,
    target: &TracedRun,
    baseline: Option<Baseline>,
    base: Option<&TracedRun>,
    slips: Option<&(Vec<Slip>, i64)>,
) -> Json {
    let pt = &target.trace;
    let mut range = Json::object();
    range.field("start", pt.range_start.into()).field(
        "end",
        if pt.range_end == u64::MAX { Json::Null } else { pt.range_end.into() },
    );

    let mut ops = Vec::with_capacity(pt.ops.len());
    for op in &pt.ops {
        let top = target.ops.get(op.seq as usize);
        let mut o = Json::object();
        o.field("seq", op.seq.into())
            .field("pc", top.pc.into())
            .field("op", top.op.mnemonic().into())
            .field("fetch", op.fetch.into())
            .field("dispatch", op.dispatch.into())
            .field("issue", op.issue.into())
            .field("complete", op.complete.into())
            .field("retire", op.retire.into())
            .field("cluster", (op.master.index() as u64).into())
            .field("slave", match op.slave {
                Some(s) => (s.index() as u64).into(),
                None => Json::Null,
            })
            .field("replays", u64::from(op.replays).into())
            .field("sched_inserted", op.sched_inserted.into())
            .field("load_miss", op.load_miss.into())
            .field("dispatch_stall", match op.dispatch_stall {
                Some(c) => c.name().into(),
                None => Json::Null,
            });
        if op.blocked_width + op.blocked_otb + op.blocked_rtb > 0 {
            let mut blocked = Json::object();
            blocked
                .field("width", u64::from(op.blocked_width).into())
                .field("otb", u64::from(op.blocked_otb).into())
                .field("rtb", u64::from(op.blocked_rtb).into());
            o.field("issue_blocked", blocked);
        }
        ops.push(o);
    }

    let mut edges = Vec::with_capacity(pt.edges.len());
    for e in &pt.edges {
        let mut obj = Json::object();
        obj.field("producer", e.producer.into())
            .field("consumer", e.consumer.into())
            .field("deliver", e.deliver.into())
            .field(
                "buffer",
                match e.kind {
                    TransferKind::Operand => "operand",
                    TransferKind::Result => "result",
                }
                .into(),
            )
            .field("occupancy", u64::from(e.occupancy).into());
        edges.push(obj);
    }

    let mut doc = Json::object();
    doc.field("schema_version", PIPETRACE_SCHEMA_VERSION.into())
        .field("benchmark", bench.name().into())
        .field("range", range)
        .field("target", run_json(target))
        .field("flushed", (pt.flushed.len() as u64).into())
        .field("ops", Json::Array(ops))
        .field("edges", Json::Array(edges));
    match (baseline, base, slips) {
        (Some(b), Some(base), Some((slips, total))) => {
            let mut diff = run_json(base);
            diff.field("name", b.name().into())
                .field("slip_total", (*total).into())
                .field("aligned_ops", (slips.len() as u64).into());
            let mut top = Vec::new();
            for s in slips.iter().take(MAX_SLIPS) {
                let mut obj = Json::object();
                obj.field("seq", s.seq.into())
                    .field("pc", s.pc.into())
                    .field("slip", s.slip.into())
                    .field("retire_target", s.retire_target.into())
                    .field("retire_baseline", s.retire_baseline.into());
                top.push(obj);
            }
            diff.field("slips", Json::Array(top));
            doc.field("baseline", diff);
        }
        _ => {
            doc.field("baseline", Json::Null);
        }
    }
    doc
}

// -- rendered report --------------------------------------------------------

fn render_cell(
    bench: Benchmark,
    target: &TracedRun,
    baseline: Option<Baseline>,
    base: Option<&TracedRun>,
    slips: Option<&(Vec<Slip>, i64)>,
) -> String {
    use std::fmt::Write as _;
    let pt = &target.trace;
    let mut out = String::new();
    let range = if pt.range_end == u64::MAX {
        format!("{}..", pt.range_start)
    } else {
        format!("{}..{}", pt.range_start, pt.range_end)
    };
    let _ = writeln!(
        out,
        "{}: {} op(s) traced (range {range}) of {} retired, {} cycles, IPC {:.2}",
        bench.name(),
        pt.ops.len(),
        target.retired,
        target.cycles,
        target.ipc
    );
    let replays: u64 = pt.ops.iter().map(|o| u64::from(o.replays)).sum();
    let _ = writeln!(
        out,
        "  {} inter-cluster edge(s) ({} operand, {} result), {} flushed incarnation(s), {} replay(s)",
        pt.edges.len(),
        pt.edges.iter().filter(|e| e.kind == TransferKind::Operand).count(),
        pt.edges.iter().filter(|e| e.kind == TransferKind::Result).count(),
        pt.flushed.len(),
        replays
    );
    if let (Some(b), Some(base), Some((slips, total))) = (baseline, base, slips) {
        let _ = writeln!(
            out,
            "  vs {} ({} cycles): retire drift {total:+} cycle(s) over {} aligned op(s)",
            b.name(),
            base.cycles,
            slips.len()
        );
        for s in slips.iter().take(5) {
            if s.slip == 0 {
                break;
            }
            let top = target.ops.get(s.seq as usize);
            let _ = writeln!(
                out,
                "    seq {:>6} {:#010x} {:<10} {:>+6} cycle(s)",
                s.seq,
                s.pc,
                top.op.mnemonic(),
                s.slip
            );
        }
    }
    out
}

// -- validation -------------------------------------------------------------

/// Validates one `*.pipetrace.json` export: schema version, a dense
/// monotone op list consistent with the declared range and retirement
/// count, referentially-intact edges, and a sane baseline block.
///
/// # Errors
///
/// [`Error::Obs`] describing the first violation.
pub fn validate_pipetrace(path: &Path) -> Result<(), Error> {
    let stem = path.display().to_string();
    let text =
        std::fs::read_to_string(path).map_err(|e| pt_err(&stem, format!("reading: {e}")))?;
    let doc = Json::parse(&text).map_err(|e| pt_err(&stem, e))?;
    let fail = |what: String| pt_err(&stem, what);
    if doc.get("schema_version").and_then(Json::as_u64) != Some(PIPETRACE_SCHEMA_VERSION) {
        return Err(fail("schema_version missing or unsupported".into()));
    }
    let retired = doc
        .get("target")
        .and_then(|t| t.get("retired"))
        .and_then(Json::as_u64)
        .ok_or_else(|| fail("target.retired missing".into()))?;
    let range = doc.get("range").ok_or_else(|| fail("range missing".into()))?;
    let start = range
        .get("start")
        .and_then(Json::as_u64)
        .ok_or_else(|| fail("range.start missing".into()))?;
    let end = match range.get("end") {
        Some(Json::Null) => u64::MAX,
        Some(v) => v.as_u64().ok_or_else(|| fail("range.end not an integer".into()))?,
        None => return Err(fail("range.end missing".into())),
    };
    let ops = doc
        .get("ops")
        .and_then(Json::as_array)
        .ok_or_else(|| fail("ops array missing".into()))?;
    let expected = end.min(retired) - start.min(retired);
    if ops.len() as u64 != expected {
        return Err(fail(format!(
            "{} op(s) recorded, range {start}..{end} of {retired} retired expects {expected}",
            ops.len()
        )));
    }
    let first = start.min(retired);
    let mut issue_by_index = Vec::with_capacity(ops.len());
    for (i, op) in ops.iter().enumerate() {
        let num = |key: &str| {
            op.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| fail(format!("ops[{i}].{key} missing")))
        };
        let seq = num("seq")?;
        if seq != first + i as u64 {
            return Err(fail(format!(
                "ops[{i}].seq is {seq}, expected {} — retired ops appear exactly once, in order",
                first + i as u64
            )));
        }
        let stages = [
            ("fetch", num("fetch")?),
            ("dispatch", num("dispatch")?),
            ("issue", num("issue")?),
            ("complete", num("complete")?),
            ("retire", num("retire")?),
        ];
        for pair in stages.windows(2) {
            let ((a, at), (b, bt)) = (pair[0], pair[1]);
            if at > bt {
                return Err(fail(format!(
                    "ops[{i}] lifecycle not monotone: {a} {at} > {b} {bt}"
                )));
            }
        }
        issue_by_index.push(stages[2].1);
    }
    let edges = doc
        .get("edges")
        .and_then(Json::as_array)
        .ok_or_else(|| fail("edges array missing".into()))?;
    for (i, e) in edges.iter().enumerate() {
        let num = |key: &str| {
            e.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| fail(format!("edges[{i}].{key} missing")))
        };
        let (producer, consumer, deliver) = (num("producer")?, num("consumer")?, num("deliver")?);
        for (name, seq) in [("producer", producer), ("consumer", consumer)] {
            if seq < first || seq >= first + ops.len() as u64 {
                return Err(fail(format!(
                    "edges[{i}].{name} {seq} references no recorded op"
                )));
            }
        }
        if deliver > issue_by_index[(consumer - first) as usize] {
            return Err(fail(format!(
                "edges[{i}] delivered at {deliver} after consumer {consumer} issued"
            )));
        }
    }
    if let Some(base) = doc.get("baseline") {
        if !matches!(base, Json::Null) {
            let total = base
                .get("slip_total")
                .and_then(Json::as_i64)
                .ok_or_else(|| fail("baseline.slip_total missing".into()))?;
            let slips = base
                .get("slips")
                .and_then(Json::as_array)
                .ok_or_else(|| fail("baseline.slips missing".into()))?;
            let mut prev = i64::MAX;
            let mut sum = 0i64;
            for (i, s) in slips.iter().enumerate() {
                let slip = s
                    .get("slip")
                    .and_then(Json::as_i64)
                    .ok_or_else(|| fail(format!("baseline.slips[{i}].slip missing")))?;
                if slip.abs() > prev {
                    return Err(fail(format!(
                        "baseline.slips[{i}] not ranked by contribution"
                    )));
                }
                prev = slip.abs();
                sum += slip;
            }
            // The export keeps only the top contributors; a complete
            // list must telescope exactly to the total.
            let aligned =
                base.get("aligned_ops").and_then(Json::as_u64).unwrap_or(slips.len() as u64);
            if aligned == slips.len() as u64 && sum != total {
                return Err(fail(format!(
                    "baseline slips sum to {sum}, slip_total is {total}"
                )));
            }
        }
    }
    Ok(())
}

/// Validates one `*.konata` export against the Kanata 0004 grammar the
/// stock viewer accepts: header, monotone cycle directives, and `L` /
/// `S` / `E` / `R` / `W` records referencing declared instruction ids,
/// with at most one retire per id.
///
/// # Errors
///
/// [`Error::Obs`] describing the first violation.
pub fn validate_konata(path: &Path) -> Result<(), Error> {
    let stem = path.display().to_string();
    let text =
        std::fs::read_to_string(path).map_err(|e| pt_err(&stem, format!("reading: {e}")))?;
    let fail = |line: usize, what: String| pt_err(&stem, format!("line {}: {what}", line + 1));
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, "Kanata\t0004")) => {}
        _ => return Err(pt_err(&stem, "missing `Kanata\\t0004` header")),
    }
    let mut declared = std::collections::HashSet::new();
    let mut retired = std::collections::HashSet::new();
    let mut cycle_set = false;
    for (i, line) in lines {
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        let tag = fields[0];
        let num_at = |idx: usize, name: &str| -> Result<u64, Error> {
            let v = fields
                .get(idx)
                .ok_or_else(|| fail(i, format!("{tag}: {name} missing")))?;
            v.parse::<u64>().map_err(|_| fail(i, format!("{tag}: bad {name} `{v}`")))
        };
        match tag {
            "C=" => {
                num_at(1, "cycle")?;
                cycle_set = true;
            }
            "C" => {
                if !cycle_set {
                    return Err(fail(i, "C before C=".into()));
                }
                num_at(1, "delta")?;
            }
            "I" => {
                let id = num_at(1, "id")?;
                if !declared.insert(id) {
                    return Err(fail(i, format!("instruction {id} declared twice")));
                }
            }
            "L" | "S" | "E" | "R" | "W" => {
                let id = num_at(1, "id")?;
                if !declared.contains(&id) {
                    return Err(fail(i, format!("{tag} references undeclared id {id}")));
                }
                if tag == "R" {
                    if !retired.insert(id) {
                        return Err(fail(i, format!("instruction {id} retired twice")));
                    }
                } else if tag == "W" {
                    let producer = num_at(2, "producer")?;
                    if !declared.contains(&producer) {
                        return Err(fail(
                            i,
                            format!("W references undeclared producer {producer}"),
                        ));
                    }
                } else if fields.len() < 4 {
                    return Err(fail(i, format!("{tag}: payload missing")));
                }
            }
            other => return Err(fail(i, format!("unknown record `{other}`"))),
        }
    }
    for id in &declared {
        if !retired.contains(id) {
            return Err(pt_err(&stem, format!("instruction {id} never retired or flushed")));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("mcl-pipetrace-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn parse_range_accepts_open_and_closed_forms() {
        assert_eq!(parse_range("10..20").unwrap(), (10, 20));
        assert_eq!(parse_range("10..").unwrap(), (10, u64::MAX));
        assert_eq!(parse_range("..20").unwrap(), (0, 20));
        assert!(parse_range("20..10").is_err());
        assert!(parse_range("5..5").is_err());
        assert!(parse_range("abc").is_err());
        assert!(parse_range("a..b").is_err());
    }

    #[test]
    fn pipetrace_cell_exports_validate_and_slips_telescope() {
        let dir = temp_dir("cell");
        let store = TraceStore::new();
        let (rendered, cost) =
            pipetrace_cell(&store, Benchmark::Compress, 40, &dir, (0, u64::MAX), Some(Baseline::Single))
                .unwrap();
        assert!(rendered.starts_with("compress: "), "{rendered}");
        assert!(rendered.contains("vs single ("), "{rendered}");
        assert!(cost.simulated_cycles > 0);

        let json_path = dir.join("compress.pipetrace.json");
        validate_pipetrace(&json_path).unwrap();
        let konata_path = dir.join("compress.konata");
        validate_konata(&konata_path).unwrap();

        let doc = Json::parse(&std::fs::read_to_string(&json_path).unwrap()).unwrap();
        let base = doc.get("baseline").unwrap();
        assert_eq!(base.get("name").and_then(Json::as_str), Some("single"));
        // Dual distribution must leave inter-cluster edges behind.
        assert!(!doc.get("edges").unwrap().as_array().unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ranged_export_clips_and_validates() {
        let dir = temp_dir("range");
        let store = TraceStore::new();
        let (rendered, _) =
            pipetrace_cell(&store, Benchmark::Compress, 40, &dir, (5, 60), None).unwrap();
        assert!(rendered.contains("(range 5..60)"), "{rendered}");
        let json_path = dir.join("compress.pipetrace.json");
        validate_pipetrace(&json_path).unwrap();
        validate_konata(&dir.join("compress.konata")).unwrap();
        let doc = Json::parse(&std::fs::read_to_string(&json_path).unwrap()).unwrap();
        let ops = doc.get("ops").unwrap().as_array().unwrap();
        assert_eq!(ops.len(), 55);
        assert_eq!(ops[0].get("seq").and_then(Json::as_u64), Some(5));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn validators_reject_broken_files() {
        let dir = temp_dir("broken");
        // Non-monotone lifecycle.
        let path = dir.join("x.pipetrace.json");
        std::fs::write(
            &path,
            "{\"schema_version\":1,\"benchmark\":\"x\",\"range\":{\"start\":0,\"end\":1},\
             \"target\":{\"cycles\":9,\"retired\":1},\"flushed\":0,\
             \"ops\":[{\"seq\":0,\"fetch\":5,\"dispatch\":4,\"issue\":6,\"complete\":7,\
             \"retire\":8}],\"edges\":[],\"baseline\":null}",
        )
        .unwrap();
        let err = validate_pipetrace(&path).unwrap_err().to_string();
        assert!(err.contains("not monotone"), "{err}");
        // Edge referencing a missing op.
        std::fs::write(
            &path,
            "{\"schema_version\":1,\"benchmark\":\"x\",\"range\":{\"start\":0,\"end\":1},\
             \"target\":{\"cycles\":9,\"retired\":1},\"flushed\":0,\
             \"ops\":[{\"seq\":0,\"fetch\":4,\"dispatch\":4,\"issue\":6,\"complete\":7,\
             \"retire\":8}],\"edges\":[{\"producer\":9,\"consumer\":0,\"deliver\":5,\
             \"buffer\":\"operand\",\"occupancy\":1}],\"baseline\":null}",
        )
        .unwrap();
        let err = validate_pipetrace(&path).unwrap_err().to_string();
        assert!(err.contains("references no recorded op"), "{err}");
        // Konata: undeclared id.
        let kpath = dir.join("x.konata");
        std::fs::write(&kpath, "Kanata\t0004\nC=\t0\nS\t7\t0\tF\n").unwrap();
        let err = validate_konata(&kpath).unwrap_err().to_string();
        assert!(err.contains("undeclared id 7"), "{err}");
        // Konata: missing header.
        std::fs::write(&kpath, "Konata\t0004\n").unwrap();
        let err = validate_konata(&kpath).unwrap_err().to_string();
        assert!(err.contains("header"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn konata_starts_with_header_and_declares_before_use() {
        let dir = temp_dir("konata");
        let store = TraceStore::new();
        pipetrace_cell(&store, Benchmark::Compress, 40, &dir, (0, 40), None).unwrap();
        let text = std::fs::read_to_string(dir.join("compress.konata")).unwrap();
        assert!(text.starts_with("Kanata\t0004\nC=\t"), "{}", &text[..40.min(text.len())]);
        assert!(text.contains("\nI\t0\t0\t0\n"), "first instruction declared");
        assert!(text.contains("\tCm\n"), "completion stage present");
        assert!(text.contains("\nR\t"), "retires present");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
