//! `repro chaos` — the fault-injection chaos campaign.
//!
//! PR 3 seeded fault injection with two transfer-buffer leak faults and
//! one self-test; this module grows it into a systematic campaign over
//! the full [`FaultInjection`] family. The contract under test is the
//! robustness layer's core promise: **an injected hardware fault must
//! always surface as a structured error** ([`SimError::Invariant`] or
//! [`SimError::Wedged`]) — never a silent completion, and never
//! statistics that differ from the clean run (a "leak into stats",
//! which would poison every downstream table).
//!
//! The campaign sweeps a matrix of
//! `fault × workload × engine × check level`:
//!
//! - **Workloads** are crafted so each fault is guaranteed to *trigger*
//!   (a dropped completion needs multi-cycle latencies in flight, a
//!   stuck branch resolution needs a mispredicted branch, buffer faults
//!   need cross-cluster traffic), plus one real benchmark workload
//!   (compress) for the accounting faults.
//! - **Check levels** start at the weakest level that guarantees
//!   *detection* for the fault: wedge-class faults are caught by the
//!   progress monitor at any level (including `off`); accounting faults
//!   need the invariant checker (`retire` or `cycle`); the dropped
//!   completion is only visible to the cycle-granular liveness rule.
//! - **Engines**: every case runs on both the ticked and the
//!   event-driven engine — fault handling must not depend on
//!   fast-forward behaviour.
//!
//! Each cell first runs its workload *clean* (same configuration, no
//! fault) to establish baseline statistics, then injected. A run
//! cancelled by the hard watchdog retries with a doubled budget and
//! backoff (bounded), so a loaded host cannot fail the campaign
//! spuriously. The report classifies every cell and the campaign
//! passes only when 100% of cells detect their fault and 0% leak into
//! statistics.

use std::fmt;
use std::time::Duration;

use mcl_core::check::{CheckLevel, FaultInjection};
use mcl_core::{Engine, Processor, ProcessorConfig, SimError, SimStats};
use mcl_isa::assign::RegisterAssignment;
use mcl_isa::ArchReg;
use mcl_sched::SchedulerKind;
use mcl_trace::vm::trace_program;
use mcl_trace::{ProgramBuilder, TraceOp};
use mcl_workloads::Benchmark;

use crate::runner::{self, Cell, CellCost, CellStatus};
use crate::Error;

/// Per-attempt hard-watchdog budget when the caller does not override
/// it (`repro chaos --watchdog SECS`).
pub const DEFAULT_WATCHDOG_SECONDS: f64 = 30.0;

/// Timed-out attempts are retried this many times, each with a doubled
/// budget and a short backoff.
const TIMEOUT_RETRIES: u32 = 2;

/// The wedge threshold every campaign configuration uses: low enough
/// that wedge-class faults are detected in tens of cycles, high enough
/// that no clean campaign workload stalls anywhere near it.
const WEDGE_THRESHOLD: u32 = 64;

/// The workloads the campaign crafts (each guaranteeing its faults can
/// trigger) plus one real benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Workload {
    /// A dependent single-cluster add chain (retire pressure).
    Chain,
    /// Alternating even/odd destinations: every add dual-distributes
    /// and moves an operand or result through a transfer buffer.
    PingPong,
    /// A dependent multiply chain: multi-cycle latencies keep
    /// completion events strictly in the future at cycle boundaries.
    MulChain,
    /// A warm loop with trailing straightline work: the loop-exit
    /// branch guarantees a misprediction that blocks fetch with trace
    /// remaining.
    LoopTail,
    /// The compress benchmark (local-scheduled, dual-cluster): real
    /// cross-cluster traffic for the accounting faults.
    Compress,
}

impl Workload {
    fn name(self) -> &'static str {
        match self {
            Workload::Chain => "chain",
            Workload::PingPong => "pingpong",
            Workload::MulChain => "mul-chain",
            Workload::LoopTail => "loop-tail",
            Workload::Compress => "compress",
        }
    }

    /// The machine trace of this workload.
    fn ops(self) -> Result<Vec<TraceOp>, Error> {
        let program = match self {
            Workload::Chain => {
                let mut b = ProgramBuilder::<ArchReg>::new("chain");
                let r = ArchReg::int(2);
                b.lda(r, 0);
                for _ in 0..30 {
                    b.addq_imm(r, r, 1);
                }
                b.finish().expect("valid chain")
            }
            Workload::PingPong => {
                let mut b = ProgramBuilder::<ArchReg>::new("pingpong");
                let (e, o) = (ArchReg::int(2), ArchReg::int(3));
                b.lda(e, 0);
                for _ in 0..20 {
                    b.addq_imm(o, e, 1);
                    b.addq_imm(e, o, 1);
                }
                b.finish().expect("valid pingpong")
            }
            Workload::MulChain => {
                let mut b = ProgramBuilder::<ArchReg>::new("mul-chain");
                let r = ArchReg::int(2);
                b.lda(r, 3);
                for _ in 0..10 {
                    b.mulq(r, r, r);
                }
                b.finish().expect("valid mul chain")
            }
            Workload::LoopTail => {
                let mut b = ProgramBuilder::<ArchReg>::new("loop-tail");
                let r = ArchReg::int(2);
                let i = ArchReg::int(4);
                let body = b.new_block("body");
                b.lda(r, 0);
                b.lda(i, 8);
                b.switch_to(body);
                b.addq_imm(r, r, 1);
                b.subq_imm(i, i, 1);
                b.bne(i, body);
                let tail = b.new_block("tail");
                b.switch_to(tail);
                for _ in 0..10 {
                    b.addq_imm(r, r, 1);
                }
                b.finish().expect("valid loop")
            }
            Workload::Compress => {
                let il = Benchmark::Compress.build(20);
                let assignment = RegisterAssignment::even_odd_with_default_globals(2);
                return crate::schedule_and_trace(&il, SchedulerKind::Local, &assignment, None);
            }
        };
        let (ops, _) = trace_program(&program).map_err(Error::Vm)?;
        Ok(ops)
    }

    /// The machine this workload runs on (cross-cluster workloads need
    /// the dual-cluster configuration for their faults to apply).
    fn config(self) -> ProcessorConfig {
        match self {
            Workload::Chain | Workload::MulChain | Workload::LoopTail => {
                ProcessorConfig::single_cluster_8way()
            }
            Workload::PingPong | Workload::Compress => ProcessorConfig::dual_cluster_8way(),
        }
    }
}

/// How a case's fault is expected to surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Expect {
    /// An invariant-checker violation of this rule.
    Invariant(&'static str),
    /// A forward-progress wedge.
    Wedged,
}

/// One campaign cell: a fault injected into a workload on an engine at
/// a check level, with its expected structured detection.
#[derive(Debug, Clone)]
struct Case {
    fault: FaultInjection,
    workload: Workload,
    engine: Engine,
    level: CheckLevel,
    expect: Expect,
}

impl Case {
    fn id(&self) -> String {
        format!(
            "chaos/{}/{}/{}/{}",
            self.fault.name(),
            self.workload.name(),
            self.engine.name(),
            level_name(self.level)
        )
    }

    fn config(&self, with_fault: bool) -> ProcessorConfig {
        let mut cfg = self
            .workload
            .config()
            .with_engine(self.engine)
            .with_check_level(self.level);
        cfg.wedge_threshold = WEDGE_THRESHOLD;
        if with_fault {
            cfg.faults = vec![self.fault.clone()];
        }
        cfg
    }
}

fn level_name(level: CheckLevel) -> &'static str {
    match level {
        CheckLevel::Off => "off",
        CheckLevel::Retire => "retire",
        CheckLevel::Cycle => "cycle",
    }
}

/// The full campaign matrix: each fault crossed with the workloads
/// that guarantee it triggers, the check levels that guarantee it is
/// detected, and both engines.
fn matrix() -> Vec<Case> {
    use CheckLevel::{Cycle, Off, Retire};
    use FaultInjection as F;
    // (fault, workloads, levels, expected detection)
    let rows: Vec<(F, Vec<Workload>, Vec<CheckLevel>, Expect)> = vec![
        (
            F::LeakOperandBuffer { cycle: 0 },
            vec![Workload::PingPong, Workload::Compress],
            vec![Retire, Cycle],
            Expect::Invariant("otb-accounting"),
        ),
        (
            F::LeakResultBuffer { cycle: 0 },
            vec![Workload::PingPong, Workload::Compress],
            vec![Retire, Cycle],
            Expect::Invariant("rtb-accounting"),
        ),
        (
            F::DropCompletion { cycle: 0 },
            vec![Workload::MulChain],
            vec![Cycle],
            Expect::Invariant("completion-liveness"),
        ),
        (
            F::StickBranchResolution { cycle: 0 },
            vec![Workload::LoopTail],
            vec![Off, Retire, Cycle],
            Expect::Wedged,
        ),
        (
            F::CorruptTransferCredit { cycle: 0 },
            vec![Workload::PingPong],
            vec![Retire, Cycle],
            Expect::Invariant("otb-accounting"),
        ),
        (
            F::DelayOperandDelivery { cycle: 0, delay: 1 << 40 },
            vec![Workload::PingPong],
            vec![Off, Retire, Cycle],
            Expect::Wedged,
        ),
        (
            F::LeakPhysReg { cycle: 0 },
            vec![Workload::PingPong, Workload::Compress],
            vec![Retire, Cycle],
            Expect::Invariant("phys-reg-accounting"),
        ),
        (
            F::StallRetire { cycle: 0 },
            vec![Workload::Chain],
            vec![Off, Retire, Cycle],
            Expect::Wedged,
        ),
    ];
    let mut cases = Vec::new();
    for (fault, workloads, levels, expect) in rows {
        for &workload in &workloads {
            for &level in &levels {
                for engine in [Engine::Ticked, Engine::Event] {
                    cases.push(Case {
                        fault: fault.clone(),
                        workload,
                        engine,
                        level,
                        expect,
                    });
                }
            }
        }
    }
    cases
}

/// How one campaign cell ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The fault surfaced as the expected structured error.
    Detected {
        /// `invariant \`rule\`` or `wedged`.
        kind: String,
        /// The cycle the error reported.
        cycle: u64,
        /// Attempts taken (> 1 only after watchdog-timeout retries).
        attempts: u32,
    },
    /// The run completed with statistics differing from the clean
    /// baseline — the fault silently poisoned results. Campaign
    /// failure.
    LeakedStats {
        /// Clean-run cycles.
        baseline_cycles: u64,
        /// Faulted-run cycles.
        observed_cycles: u64,
    },
    /// The run completed with statistics identical to the baseline —
    /// the fault never took effect. Campaign failure (the matrix is
    /// built so every fault triggers).
    NotTriggered,
    /// A different structured error than expected (wrong rule, or a
    /// timeout that survived every retry). Campaign failure.
    Unexpected(String),
}

impl Outcome {
    /// Whether this outcome counts as a detected fault.
    #[must_use]
    pub fn detected(&self) -> bool {
        matches!(self, Outcome::Detected { .. })
    }

    /// Whether the fault leaked into statistics.
    #[must_use]
    pub fn leaked(&self) -> bool {
        matches!(self, Outcome::LeakedStats { .. })
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Detected { kind, cycle, attempts } => {
                write!(f, "detected: {kind} @ cycle {cycle}")?;
                if *attempts > 1 {
                    write!(f, " (attempt {attempts})")?;
                }
                Ok(())
            }
            Outcome::LeakedStats { baseline_cycles, observed_cycles } => write!(
                f,
                "LEAKED INTO STATS: clean {baseline_cycles} cycles, faulted {observed_cycles}"
            ),
            Outcome::NotTriggered => write!(f, "NOT TRIGGERED: run matched the clean baseline"),
            Outcome::Unexpected(e) => write!(f, "UNEXPECTED: {e}"),
        }
    }
}

/// One classified campaign cell.
#[derive(Debug, Clone)]
pub struct ChaosRow {
    /// Fault name (`FaultInjection::name`).
    pub fault: &'static str,
    /// Workload name.
    pub workload: &'static str,
    /// Engine name.
    pub engine: &'static str,
    /// Check-level name.
    pub level: &'static str,
    /// The classified outcome.
    pub outcome: Outcome,
}

/// The campaign result.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Every cell, in matrix order.
    pub rows: Vec<ChaosRow>,
    /// Cells that failed at the infrastructure level (panic, trace
    /// build failure) before classification, rendered.
    pub broken_cells: Vec<String>,
}

impl ChaosReport {
    /// Cells whose fault was detected as a structured error.
    #[must_use]
    pub fn detected(&self) -> usize {
        self.rows.iter().filter(|r| r.outcome.detected()).count()
    }

    /// Cells whose fault leaked into statistics.
    #[must_use]
    pub fn leaked(&self) -> usize {
        self.rows.iter().filter(|r| r.outcome.leaked()).count()
    }

    /// Whether the campaign passed: every cell ran, every fault was
    /// detected, nothing leaked.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.broken_cells.is_empty() && self.detected() == self.rows.len()
    }
}

/// Runs one faulted attempt with the hard watchdog armed; timeouts are
/// retried with a doubled budget and a short backoff.
fn run_with_watchdog(
    cfg: &ProcessorConfig,
    ops: &[TraceOp],
    watchdog_seconds: f64,
) -> (Result<SimStats, SimError>, u32) {
    let mut budget = watchdog_seconds;
    let mut attempts = 0;
    loop {
        attempts += 1;
        let result = {
            let _armed = mcl_core::watchdog::arm_for(Duration::from_secs_f64(budget));
            Processor::new(cfg.clone()).run_trace(ops).map(|r| r.stats)
        };
        match result {
            Err(SimError::Timeout { .. }) if attempts <= TIMEOUT_RETRIES => {
                budget *= 2.0;
                std::thread::sleep(Duration::from_millis(10 * u64::from(attempts)));
            }
            other => return (other, attempts),
        }
    }
}

/// Runs and classifies one campaign cell.
fn run_case(case: &Case, watchdog_seconds: f64) -> Result<ChaosRow, Error> {
    let ops = case.workload.ops()?;
    // Clean baseline: same configuration, no fault. Must succeed.
    let (baseline, _) = run_with_watchdog(&case.config(false), &ops, watchdog_seconds);
    let baseline = baseline.map_err(|e| {
        Error::SelfCheck(format!("{}: clean baseline failed: {e}", case.id()))
    })?;
    let (faulted, attempts) = run_with_watchdog(&case.config(true), &ops, watchdog_seconds);
    let outcome = match (faulted, case.expect) {
        (Err(SimError::Invariant { cycle, rule, .. }), Expect::Invariant(want))
            if rule == want =>
        {
            Outcome::Detected { kind: format!("invariant `{rule}`"), cycle, attempts }
        }
        (Err(SimError::Wedged { cycle, .. }), Expect::Wedged) => {
            Outcome::Detected { kind: "wedged".to_owned(), cycle, attempts }
        }
        (Ok(stats), _) if stats == baseline => Outcome::NotTriggered,
        (Ok(stats), _) => Outcome::LeakedStats {
            baseline_cycles: baseline.cycles,
            observed_cycles: stats.cycles,
        },
        (Err(e), _) => Outcome::Unexpected(e.to_string()),
    };
    Ok(ChaosRow {
        fault: case.fault.name(),
        workload: case.workload.name(),
        engine: case.engine.name(),
        level: level_name(case.level),
        outcome,
    })
}

/// Runs the full campaign on the parallel cell runner.
///
/// Infrastructure failures (a panicking cell) land in
/// [`ChaosReport::broken_cells`]; classification failures land in the
/// row outcomes. Callers decide the exit code from
/// [`ChaosReport::passed`].
#[must_use]
pub fn run(jobs: usize, watchdog_seconds: f64) -> ChaosReport {
    let cases = matrix();
    let cells: Vec<Cell<ChaosRow>> = cases
        .into_iter()
        .map(|case| {
            Cell::new(case.id(), move || {
                let row = run_case(&case, watchdog_seconds)?;
                Ok((row, CellCost::default()))
            })
        })
        .collect();
    // The per-attempt hard watchdog is armed inside each cell (with
    // retries), so no runner-level budget here.
    let (rows, metrics) = runner::run_cells_isolated(jobs, cells, None);
    let broken_cells = metrics
        .iter()
        .filter(|m| m.status != CellStatus::Ok)
        .map(|m| {
            format!("{} {}: {}", m.id, m.status.name(), m.status.message().unwrap_or("unknown"))
        })
        .collect();
    ChaosReport { rows: rows.into_iter().flatten().collect(), broken_cells }
}

/// Renders the campaign report (deterministic: matrix order, and
/// detection cycles are simulation-deterministic).
#[must_use]
pub fn render(report: &ChaosReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Chaos fault-injection campaign (fault x workload x engine x check level)\n"
    );
    let _ = writeln!(
        out,
        "{:<24} {:<9} {:<7} {:<7} outcome",
        "fault", "workload", "engine", "check"
    );
    for row in &report.rows {
        let _ = writeln!(
            out,
            "{:<24} {:<9} {:<7} {:<7} {}",
            row.fault, row.workload, row.engine, row.level, row.outcome
        );
    }
    for broken in &report.broken_cells {
        let _ = writeln!(out, "BROKEN CELL: {broken}");
    }
    let _ = writeln!(
        out,
        "\ncampaign: {}/{} faults detected as structured errors; {} leaked into stats; {} broken cells",
        report.detected(),
        report.rows.len(),
        report.leaked(),
        report.broken_cells.len()
    );
    let _ = writeln!(
        out,
        "chaos: {}",
        if report.passed() { "PASS (100% detected, 0% leaked)" } else { "FAIL" }
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_every_fault_both_engines() {
        let cases = matrix();
        let faults: std::collections::BTreeSet<&str> =
            cases.iter().map(|c| c.fault.name()).collect();
        assert_eq!(faults.len(), 8, "all eight faults campaign: {faults:?}");
        for engine in [Engine::Ticked, Engine::Event] {
            for fault in &faults {
                assert!(
                    cases.iter().any(|c| c.fault.name() == *fault && c.engine == engine),
                    "{fault} missing on {}",
                    engine.name()
                );
            }
        }
    }

    #[test]
    fn every_case_detects_its_fault() {
        // The full campaign, serially (cells are cheap): 100% detected,
        // 0% leaked is the contract `repro chaos` enforces in CI.
        let report = run(1, DEFAULT_WATCHDOG_SECONDS);
        for row in &report.rows {
            assert!(
                row.outcome.detected(),
                "{}/{}/{}/{}: {}",
                row.fault,
                row.workload,
                row.engine,
                row.level,
                row.outcome
            );
        }
        assert!(report.passed());
        assert_eq!(report.leaked(), 0);
        let rendered = render(&report);
        assert!(rendered.contains("PASS (100% detected, 0% leaked)"), "{rendered}");
    }

    #[test]
    fn a_leaking_outcome_is_classified_not_masked() {
        // An accounting fault with the checker OFF completes with
        // perturbed statistics — exactly the silent poisoning the
        // campaign exists to catch. Classify (don't run) such a case to
        // pin the LeakedStats path.
        let case = Case {
            fault: FaultInjection::LeakOperandBuffer { cycle: 0 },
            workload: Workload::PingPong,
            engine: Engine::Ticked,
            level: CheckLevel::Off,
            expect: Expect::Invariant("otb-accounting"),
        };
        let row = run_case(&case, DEFAULT_WATCHDOG_SECONDS).unwrap();
        assert!(
            matches!(row.outcome, Outcome::LeakedStats { .. } | Outcome::NotTriggered),
            "unchecked leak must classify as leaked/not-triggered, got {}",
            row.outcome
        );
    }
}
