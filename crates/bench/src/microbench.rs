//! `repro bench` — the ticked-vs-event engine microbenchmark.
//!
//! Simulates the six Table 2 workloads (dual-cluster machine, local
//! scheduler — the paper's headline configuration) under both
//! simulation engines and reports wall-clock throughput side by side.
//! Each (workload, engine) pair runs three times on the calling thread
//! and keeps the fastest wall time, so scheduler noise and cold caches
//! cannot manufacture a regression; the engines' statistics are also
//! cross-checked for equality on every run, making the benchmark a
//! differential test that happens to be timed.
//!
//! The rendered report ends with a machine-parseable summary line —
//!
//! ```text
//! engine-bench: event/ticked = 4.83x (ticked 2.3M cyc/s, event 11.1M cyc/s)
//! ```
//!
//! — which `scripts/ci.sh` greps to enforce the event engine's
//! throughput floor. `repro bench` deliberately does not write
//! `BENCH_repro.json`: it measures the engine, not the experiment
//! suite.

use std::time::Instant;

use mcl_core::{Engine, Processor, ProcessorConfig};
use mcl_sched::SchedulerKind;
use mcl_trace::PackedTrace;
use mcl_workloads::Benchmark;

use crate::{Error, TraceRequest, TraceStore};

/// Timing of one workload under both engines.
#[derive(Debug, Clone)]
pub struct BenchRow {
    /// Workload name.
    pub name: &'static str,
    /// Simulated cycles of one run (identical for both engines by
    /// construction — divergence is an error).
    pub cycles: u64,
    /// Fastest-of-three wall seconds under the ticked engine.
    pub ticked_seconds: f64,
    /// Fastest-of-three wall seconds under the event engine.
    pub event_seconds: f64,
    /// Simulated cycles the event engine covered by fast-forward jumps.
    pub skipped_cycles: u64,
    /// Fast-forward jumps the event engine took.
    pub jumps: u64,
}

impl BenchRow {
    /// Cycles per second under the ticked engine.
    #[must_use]
    pub fn ticked_cps(&self) -> f64 {
        per_second(self.cycles, self.ticked_seconds)
    }

    /// Cycles per second under the event engine.
    #[must_use]
    pub fn event_cps(&self) -> f64 {
        per_second(self.cycles, self.event_seconds)
    }
}

fn per_second(cycles: u64, seconds: f64) -> f64 {
    if seconds > 0.0 {
        cycles as f64 / seconds
    } else {
        0.0
    }
}

/// Runs one engine over a trace `reps` times serially and returns the
/// statistics of the last run, its fast-forward counters, and the
/// fastest wall time.
fn time_engine(
    cfg: &ProcessorConfig,
    engine: Engine,
    trace: &PackedTrace,
    reps: u32,
) -> Result<(mcl_core::SimStats, mcl_core::FastForward, f64), Error> {
    let cfg = cfg.clone().with_engine(engine);
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let start = Instant::now();
        let result = Processor::new(cfg.clone()).run_packed(trace).map_err(Error::Sim)?;
        best = best.min(start.elapsed().as_secs_f64());
        last = Some((result.stats, result.ff));
    }
    let (stats, ff) = last.expect("at least one rep");
    Ok((stats, ff, best))
}

/// Benchmarks both engines over the six Table 2 workloads at
/// `divisor`-scaled sizes. Single-threaded by design: every simulation
/// runs on the calling thread, so the ratio compares engines, not
/// schedulers.
///
/// # Errors
///
/// Trace-building or simulation failures surface as the store's
/// errors; an engine divergence (identical trace, different
/// statistics) surfaces as [`Error::SelfCheck`].
pub fn run(divisor: u32) -> Result<Vec<BenchRow>, Error> {
    let store = TraceStore::new();
    let cfg = ProcessorConfig::dual_cluster_8way();
    let mut rows = Vec::new();
    for bench in Benchmark::ALL {
        let scale = bench.scaled(divisor);
        let req = TraceRequest::new(bench, scale, SchedulerKind::Local);
        let (trace, _) = store.trace(&req)?;
        let (ticked_stats, _, ticked_seconds) = time_engine(&cfg, Engine::Ticked, &trace, 3)?;
        let (event_stats, ff, event_seconds) = time_engine(&cfg, Engine::Event, &trace, 3)?;
        if ticked_stats != event_stats {
            return Err(Error::SelfCheck(format!(
                "engine-bench: {bench} diverged — ticked {} cycles, event {} cycles",
                ticked_stats.cycles, event_stats.cycles
            )));
        }
        rows.push(BenchRow {
            name: bench.name(),
            cycles: event_stats.cycles,
            ticked_seconds,
            event_seconds,
            skipped_cycles: ff.skipped_cycles,
            jumps: ff.jumps,
        });
    }
    Ok(rows)
}

fn format_cps(cps: f64) -> String {
    if cps >= 1e6 {
        format!("{:.1}M", cps / 1e6)
    } else {
        format!("{:.0}k", cps / 1e3)
    }
}

/// Renders the comparison table plus the parseable summary line.
#[must_use]
pub fn render(rows: &[BenchRow]) -> String {
    let mut out = String::new();
    out.push_str("Engine microbenchmark (dual-cluster, local scheduler; min of 3)\n\n");
    out.push_str(&format!(
        "{:<10} {:>12} {:>12} {:>12} {:>8} {:>12} {:>8}\n",
        "benchmark", "cycles", "ticked c/s", "event c/s", "speedup", "skipped", "jumps"
    ));
    let mut total_cycles = 0u64;
    let mut total_ticked = 0.0f64;
    let mut total_event = 0.0f64;
    for r in rows {
        let speedup = if r.event_seconds > 0.0 { r.ticked_seconds / r.event_seconds } else { 0.0 };
        out.push_str(&format!(
            "{:<10} {:>12} {:>12} {:>12} {:>7.2}x {:>12} {:>8}\n",
            r.name,
            r.cycles,
            format_cps(r.ticked_cps()),
            format_cps(r.event_cps()),
            speedup,
            r.skipped_cycles,
            r.jumps,
        ));
        total_cycles += r.cycles;
        total_ticked += r.ticked_seconds;
        total_event += r.event_seconds;
    }
    let ticked_cps = per_second(total_cycles, total_ticked);
    let event_cps = per_second(total_cycles, total_event);
    let ratio = if event_cps > 0.0 && ticked_cps > 0.0 { event_cps / ticked_cps } else { 0.0 };
    out.push_str(&format!(
        "\nengine-bench: event/ticked = {:.2}x (ticked {} cyc/s, event {} cyc/s)\n",
        ratio,
        format_cps(ticked_cps),
        format_cps(event_cps),
    ));
    // The skip totals are deterministic (they depend only on the traces
    // and the fast-forward rules, never on wall time), so CI can pin a
    // hard floor on them even on noisy machines.
    let total_skipped: u64 = rows.iter().map(|r| r.skipped_cycles).sum();
    let pct = if total_cycles > 0 {
        100.0 * total_skipped as f64 / total_cycles as f64
    } else {
        0.0
    };
    out.push_str(&format!(
        "engine-bench: skipped = {total_skipped}/{total_cycles} cycles ({pct:.1}%)\n",
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_rows_cover_every_workload_and_agree() {
        let rows = run(256).expect("runs");
        assert_eq!(rows.len(), Benchmark::ALL.len());
        for r in &rows {
            assert!(r.cycles > 0, "{}: simulated nothing", r.name);
            assert!(r.skipped_cycles < r.cycles, "{}: skipped too much", r.name);
        }
        let rendered = render(&rows);
        assert!(rendered.contains("engine-bench: event/ticked = "));
        assert!(rendered.contains("engine-bench: skipped = "));
        assert!(rendered.contains("compress"));
    }
}
