//! `repro bench` — the ticked-vs-event engine microbenchmark.
//!
//! Simulates the six Table 2 workloads (dual-cluster machine, local
//! scheduler — the paper's headline configuration) under both
//! simulation engines and reports wall-clock throughput side by side.
//! Each (workload, engine) pair runs three times on the calling thread
//! and keeps the fastest wall time, so scheduler noise and cold caches
//! cannot manufacture a regression; the engines' statistics are also
//! cross-checked for equality on every run, making the benchmark a
//! differential test that happens to be timed.
//!
//! With `--shards K` (K > 1) each workload is additionally timed under
//! the sharded runner ([`Processor::run_sharded`], event engine): the
//! trace is split into K time windows simulated in parallel after a
//! functional warmup, and the report gains a serial-vs-sharded column
//! plus warmup-overhead and divergence figures.
//!
//! The rendered report ends with machine-parseable summary lines —
//!
//! ```text
//! engine-bench: event/ticked = 4.83x (ticked 2.3M cyc/s, event 11.1M cyc/s)
//! engine-bench: sharded/event = 2.31x at 4 shards (warmup 0.012s, max divergence 0.0041)
//! engine-bench: history = {"schema":9,...}
//! ```
//!
//! — which `scripts/ci.sh` greps to enforce the event engine's
//! throughput floor, to gate the sharded path, and to append the
//! `history` JSON object to `BENCH_repro.history.jsonl` via
//! `repro history-append` (which validates every candidate line with
//! [`validate_history_line`] before it lands). `repro bench`
//! deliberately does not write `BENCH_repro.json`: it measures the
//! engine, not the experiment suite.

use std::time::Instant;

use mcl_core::{Engine, Processor, ProcessorConfig, ShardOptions};
use mcl_sched::SchedulerKind;
use mcl_trace::PackedTrace;
use mcl_workloads::Benchmark;

use crate::{Error, TraceRequest, TraceStore};

/// Timing of one workload under both engines.
#[derive(Debug, Clone)]
pub struct BenchRow {
    /// Workload name.
    pub name: &'static str,
    /// Simulated cycles of one run (identical for both engines by
    /// construction — divergence is an error).
    pub cycles: u64,
    /// Fastest-of-three wall seconds under the ticked engine.
    pub ticked_seconds: f64,
    /// Fastest-of-three wall seconds under the event engine.
    pub event_seconds: f64,
    /// Simulated cycles the event engine covered by fast-forward jumps.
    pub skipped_cycles: u64,
    /// Fast-forward jumps the event engine took.
    pub jumps: u64,
    /// Fastest-of-three wall seconds under the sharded runner (event
    /// engine); `None` when the benchmark ran with one shard.
    pub sharded_seconds: Option<f64>,
    /// Time windows the sharded runner actually used (0 when serial).
    pub shard_windows: usize,
    /// Reported divergence bound of the sharded run.
    pub shard_divergence: f64,
    /// Wall seconds the sharded run spent in functional warmup
    /// (summed over workers, from the timed rep).
    pub warmup_seconds: f64,
    /// Telescoped host nanoseconds of one profiled event-engine run
    /// (sum of the hostprof phase buckets; see
    /// [`mcl_core::obs::hostprof`]).
    pub profile_total_ns: u64,
    /// Live (actually stepped) cycles of that profiled run.
    pub profile_live_cycles: u64,
}

impl BenchRow {
    /// Cycles per second under the ticked engine.
    #[must_use]
    pub fn ticked_cps(&self) -> f64 {
        per_second(self.cycles, self.ticked_seconds)
    }

    /// Cycles per second under the event engine.
    #[must_use]
    pub fn event_cps(&self) -> f64 {
        per_second(self.cycles, self.event_seconds)
    }
}

fn per_second(cycles: u64, seconds: f64) -> f64 {
    if seconds > 0.0 {
        cycles as f64 / seconds
    } else {
        0.0
    }
}

/// Runs one engine over a trace `reps` times serially and returns the
/// statistics of the last run, its fast-forward counters, and the
/// fastest wall time.
fn time_engine(
    cfg: &ProcessorConfig,
    engine: Engine,
    trace: &PackedTrace,
    reps: u32,
) -> Result<(mcl_core::SimStats, mcl_core::FastForward, f64), Error> {
    let cfg = cfg.clone().with_engine(engine);
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let start = Instant::now();
        let result = Processor::new(cfg.clone()).run_packed(trace).map_err(Error::Sim)?;
        best = best.min(start.elapsed().as_secs_f64());
        last = Some((result.stats, result.ff));
    }
    let (stats, ff) = last.expect("at least one rep");
    Ok((stats, ff, best))
}

/// Runs the sharded runner over a trace `reps` times and returns the
/// statistics and shard report of the last run plus the fastest wall
/// time.
fn time_sharded(
    cfg: &ProcessorConfig,
    trace: &PackedTrace,
    shards: usize,
    reps: u32,
) -> Result<(mcl_core::SimStats, mcl_core::ShardReport, f64), Error> {
    let cfg = cfg.clone().with_engine(Engine::Event);
    let proc = Processor::new(cfg);
    let opts = ShardOptions::new(shards);
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let start = Instant::now();
        let (result, report) = proc.run_sharded(trace, &opts).map_err(Error::Sim)?;
        best = best.min(start.elapsed().as_secs_f64());
        last = Some((result.stats, report));
    }
    let (stats, report) = last.expect("at least one rep");
    Ok((stats, report, best))
}

/// Benchmarks both engines over the six Table 2 workloads at
/// `divisor`-scaled sizes, plus (with `shards > 1`) the sharded runner
/// on top of the event engine. Serial timings are single-threaded by
/// design — every simulation runs on the calling thread, so the
/// engine ratio compares engines, not schedulers; only the sharded
/// column uses worker threads, because parallelism is the thing it
/// measures.
///
/// # Errors
///
/// Trace-building or simulation failures surface as the store's
/// errors; an engine divergence (identical trace, different
/// statistics) or a sharded run that breaks an exactness guarantee
/// (retired counts, stall identity) surfaces as [`Error::SelfCheck`].
pub fn run(divisor: u32, shards: usize) -> Result<Vec<BenchRow>, Error> {
    let store = TraceStore::new();
    let cfg = ProcessorConfig::dual_cluster_8way();
    let mut rows = Vec::new();
    for bench in Benchmark::ALL {
        let scale = bench.scaled(divisor);
        let req = TraceRequest::new(bench, scale, SchedulerKind::Local);
        let (trace, _) = store.trace(&req)?;
        let (ticked_stats, _, ticked_seconds) = time_engine(&cfg, Engine::Ticked, &trace, 3)?;
        let (event_stats, ff, event_seconds) = time_engine(&cfg, Engine::Event, &trace, 3)?;
        if ticked_stats != event_stats {
            return Err(Error::SelfCheck(format!(
                "engine-bench: {bench} diverged — ticked {} cycles, event {} cycles",
                ticked_stats.cycles, event_stats.cycles
            )));
        }
        // One host-profiled companion run per workload (event engine,
        // real fast-forward path) feeds the `profile_ns_per_cycle`
        // history metric — and doubles as a differential check that
        // profiling never perturbs the machine.
        let (profiled, prof_report) = Processor::new(cfg.clone().with_engine(Engine::Event))
            .run_packed_profiled(&trace)
            .map_err(Error::Sim)?;
        if profiled.stats != event_stats {
            return Err(Error::SelfCheck(format!(
                "engine-bench: {bench} profiled run diverged — {} vs {} cycles",
                profiled.stats.cycles, event_stats.cycles
            )));
        }
        prof_report
            .check_identity()
            .map_err(|detail| Error::SelfCheck(format!("engine-bench: {bench}: {detail}")))?;
        let mut row = BenchRow {
            name: bench.name(),
            cycles: event_stats.cycles,
            ticked_seconds,
            event_seconds,
            skipped_cycles: ff.skipped_cycles,
            jumps: ff.jumps,
            sharded_seconds: None,
            shard_windows: 0,
            shard_divergence: 0.0,
            warmup_seconds: 0.0,
            profile_total_ns: prof_report.total_ns(),
            profile_live_cycles: prof_report.live_cycles,
        };
        if shards > 1 {
            let (sharded_stats, report, sharded_seconds) =
                time_sharded(&cfg, &trace, shards, 3)?;
            if sharded_stats.retired != event_stats.retired {
                return Err(Error::SelfCheck(format!(
                    "engine-bench: {bench} sharded run retired {} instructions, serial {}",
                    sharded_stats.retired, event_stats.retired
                )));
            }
            sharded_stats.check_stall_identity().map_err(|detail| {
                Error::SelfCheck(format!("engine-bench: {bench} sharded run unbalanced: {detail}"))
            })?;
            row.sharded_seconds = Some(sharded_seconds);
            row.shard_windows = report.windows;
            row.shard_divergence = report.divergence;
            row.warmup_seconds = report.warmup_seconds;
        }
        rows.push(row);
    }
    Ok(rows)
}

fn format_cps(cps: f64) -> String {
    if cps >= 1e6 {
        format!("{:.1}M", cps / 1e6)
    } else {
        format!("{:.0}k", cps / 1e3)
    }
}

/// Renders the comparison table plus the parseable summary lines
/// (engine ratio, skip totals, sharded ratio when `shards > 1`, and
/// the schema-versioned `history` JSON object CI appends to
/// `BENCH_repro.history.jsonl`).
#[must_use]
pub fn render(rows: &[BenchRow], divisor: u32, shards: usize) -> String {
    let sharded = shards > 1 && rows.iter().any(|r| r.sharded_seconds.is_some());
    let mut out = String::new();
    out.push_str("Engine microbenchmark (dual-cluster, local scheduler; min of 3)\n\n");
    if sharded {
        out.push_str(&format!(
            "{:<10} {:>12} {:>12} {:>12} {:>8} {:>12} {:>8} {:>12} {:>8}\n",
            "benchmark",
            "cycles",
            "ticked c/s",
            "event c/s",
            "speedup",
            "skipped",
            "jumps",
            "sharded c/s",
            "shard-x"
        ));
    } else {
        out.push_str(&format!(
            "{:<10} {:>12} {:>12} {:>12} {:>8} {:>12} {:>8}\n",
            "benchmark", "cycles", "ticked c/s", "event c/s", "speedup", "skipped", "jumps"
        ));
    }
    let mut total_cycles = 0u64;
    let mut total_ticked = 0.0f64;
    let mut total_event = 0.0f64;
    let mut total_sharded = 0.0f64;
    let mut total_warmup = 0.0f64;
    let mut max_divergence = 0.0f64;
    for r in rows {
        let speedup = if r.event_seconds > 0.0 { r.ticked_seconds / r.event_seconds } else { 0.0 };
        out.push_str(&format!(
            "{:<10} {:>12} {:>12} {:>12} {:>7.2}x {:>12} {:>8}",
            r.name,
            r.cycles,
            format_cps(r.ticked_cps()),
            format_cps(r.event_cps()),
            speedup,
            r.skipped_cycles,
            r.jumps,
        ));
        if sharded {
            let secs = r.sharded_seconds.unwrap_or(r.event_seconds);
            let shard_x = if secs > 0.0 { r.event_seconds / secs } else { 0.0 };
            out.push_str(&format!(
                " {:>12} {:>7.2}x",
                format_cps(per_second(r.cycles, secs)),
                shard_x
            ));
            total_sharded += secs;
            total_warmup += r.warmup_seconds;
            max_divergence = max_divergence.max(r.shard_divergence);
        }
        out.push('\n');
        total_cycles += r.cycles;
        total_ticked += r.ticked_seconds;
        total_event += r.event_seconds;
    }
    let ticked_cps = per_second(total_cycles, total_ticked);
    let event_cps = per_second(total_cycles, total_event);
    let ratio = if event_cps > 0.0 && ticked_cps > 0.0 { event_cps / ticked_cps } else { 0.0 };
    out.push_str(&format!(
        "\nengine-bench: event/ticked = {:.2}x (ticked {} cyc/s, event {} cyc/s)\n",
        ratio,
        format_cps(ticked_cps),
        format_cps(event_cps),
    ));
    // The skip totals are deterministic (they depend only on the traces
    // and the fast-forward rules, never on wall time), so CI can pin a
    // hard floor on them even on noisy machines.
    let total_skipped: u64 = rows.iter().map(|r| r.skipped_cycles).sum();
    let pct = if total_cycles > 0 {
        100.0 * total_skipped as f64 / total_cycles as f64
    } else {
        0.0
    };
    out.push_str(&format!(
        "engine-bench: skipped = {total_skipped}/{total_cycles} cycles ({pct:.1}%)\n",
    ));
    let mut sharded_cps = 0.0f64;
    let mut shard_ratio = 0.0f64;
    if sharded {
        sharded_cps = per_second(total_cycles, total_sharded);
        shard_ratio = if total_sharded > 0.0 { total_event / total_sharded } else { 0.0 };
        out.push_str(&format!(
            "engine-bench: sharded/event = {shard_ratio:.2}x at {shards} shards \
             (warmup {total_warmup:.3}s, max divergence {max_divergence:.4})\n",
        ));
    }
    // Single-line JSON summary for BENCH_repro.history.jsonl. Same
    // schema version as BENCH_repro.json; each `scripts/ci.sh` bench
    // run appends exactly one object. Schema 9 renamed `skipped_pct` to
    // `skip_pct` and added `profile_ns_per_cycle` (the host-profiled
    // companions' aggregate ns per live cycle) — `repro trend` aliases
    // the old name when reading mixed-version history.
    let total_prof_ns: u64 = rows.iter().map(|r| r.profile_total_ns).sum();
    let total_prof_live: u64 = rows.iter().map(|r| r.profile_live_cycles).sum();
    let profile_ns_per_cycle =
        if total_prof_live > 0 { total_prof_ns as f64 / total_prof_live as f64 } else { 0.0 };
    let unix_seconds = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    out.push_str(&format!(
        "engine-bench: history = {{\"schema\":{HISTORY_SCHEMA_VERSION},\
         \"unix_seconds\":{unix_seconds},\
         \"divisor\":{divisor},\"shards\":{shards},\"cycles\":{total_cycles},\
         \"ticked_cps\":{ticked_cps:.0},\"event_cps\":{event_cps:.0},\
         \"sharded_cps\":{sharded_cps:.0},\"event_over_ticked\":{ratio:.3},\
         \"sharded_over_event\":{shard_ratio:.3},\"skip_pct\":{pct:.1},\
         \"warmup_seconds\":{total_warmup:.4},\"max_divergence\":{max_divergence:.5},\
         \"profile_ns_per_cycle\":{profile_ns_per_cycle:.1}}}\n",
    ));
    out
}

/// The history schema version `repro bench` emits and
/// `repro history-append` requires (kept in lockstep with
/// [`crate::runner::REPORT_SCHEMA_VERSION`]). Version 9 renamed
/// `skipped_pct` to `skip_pct` and added `profile_ns_per_cycle`;
/// `repro trend` ([`crate::trend`]) upgrades older lines on read.
pub const HISTORY_SCHEMA_VERSION: u64 = 9;

/// Keys every history line must carry.
const HISTORY_REQUIRED_KEYS: &[&str] =
    &["schema", "unix_seconds", "divisor", "shards", "cycles", "ticked_cps", "event_cps"];

/// The verdict of [`validate_history_line`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HistoryVerdict {
    /// The line is well-formed, schema-current, and new: append it.
    Append,
    /// The line must be skipped (with a warning); the payload says why
    /// ("malformed: ...", "schema mismatch: ...", "duplicate of line N").
    Skip(String),
}

/// Validates one candidate line against the existing history file
/// content before it is appended to `BENCH_repro.history.jsonl`.
///
/// CI used to append the grepped summary line blindly; a malformed grep
/// (or a rerun of the same report) would poison the history for every
/// downstream consumer. The candidate must parse as a JSON object,
/// carry every required key, declare `"schema"` equal to
/// [`HISTORY_SCHEMA_VERSION`], and not duplicate an existing line
/// byte-for-byte. Malformed *existing* lines never block an append —
/// they are the reader's problem and are reported by the caller.
#[must_use]
pub fn validate_history_line(existing: &str, candidate: &str) -> HistoryVerdict {
    let candidate = candidate.trim();
    let parsed = match crate::json::Json::parse(candidate) {
        Ok(v) => v,
        Err(e) => return HistoryVerdict::Skip(format!("malformed: {e}")),
    };
    for key in HISTORY_REQUIRED_KEYS {
        if parsed.get(key).is_none() {
            return HistoryVerdict::Skip(format!("malformed: missing key `{key}`"));
        }
    }
    match parsed.get("schema").and_then(crate::json::Json::as_u64) {
        Some(HISTORY_SCHEMA_VERSION) => {}
        Some(v) => {
            return HistoryVerdict::Skip(format!(
                "schema mismatch: line declares {v}, current is {HISTORY_SCHEMA_VERSION}"
            ));
        }
        None => return HistoryVerdict::Skip("malformed: `schema` is not an integer".to_owned()),
    }
    for (i, line) in existing.lines().enumerate() {
        if line.trim() == candidate {
            return HistoryVerdict::Skip(format!("duplicate of line {}", i + 1));
        }
    }
    HistoryVerdict::Append
}

/// Checks one parsed history line beyond key presence: `schema` must be
/// an integer and every other required key numeric. Returns the first
/// problem, or `None` for a clean line.
fn history_line_problem(v: &crate::json::Json) -> Option<String> {
    for key in HISTORY_REQUIRED_KEYS {
        if v.get(key).is_none() {
            return Some(format!("missing required key `{key}`"));
        }
    }
    if v.get("schema").and_then(crate::json::Json::as_u64).is_none() {
        return Some("`schema` is not an integer".to_owned());
    }
    for key in HISTORY_REQUIRED_KEYS.iter().filter(|&&k| k != "schema") {
        if v.get(key).and_then(crate::json::Json::as_f64).is_none() {
            return Some(format!("`{key}` is not numeric"));
        }
    }
    None
}

/// Existing history lines that do not validate (reported as warnings by
/// `repro history-append`, each with its 1-based line number; they
/// never block an append). A line is malformed when it fails to parse,
/// misses a required key, or — value typing, not just presence —
/// declares a non-integer `schema` or a non-numeric required metric.
#[must_use]
pub fn malformed_history_lines(existing: &str) -> Vec<(usize, String)> {
    existing
        .lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .filter_map(|(i, line)| match crate::json::Json::parse(line.trim()) {
            Ok(v) => history_line_problem(&v).map(|why| (i + 1, why)),
            Err(e) => Some((i + 1, e)),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_rows_cover_every_workload_and_agree() {
        let rows = run(256, 1).expect("runs");
        assert_eq!(rows.len(), Benchmark::ALL.len());
        for r in &rows {
            assert!(r.cycles > 0, "{}: simulated nothing", r.name);
            assert!(r.skipped_cycles < r.cycles, "{}: skipped too much", r.name);
            assert!(r.sharded_seconds.is_none(), "{}: sharded at 1 shard", r.name);
        }
        for r in &rows {
            assert!(r.profile_total_ns > 0, "{}: profiled nothing", r.name);
            assert!(r.profile_live_cycles > 0, "{}: no live cycles profiled", r.name);
            assert!(r.profile_live_cycles <= r.cycles, "{}: too many live cycles", r.name);
        }
        let rendered = render(&rows, 256, 1);
        assert!(rendered.contains("engine-bench: event/ticked = "));
        assert!(rendered.contains("engine-bench: skipped = "));
        assert!(rendered.contains("engine-bench: history = {\"schema\":9,"));
        assert!(rendered.contains("\"skip_pct\":"), "{rendered}");
        assert!(rendered.contains("\"profile_ns_per_cycle\":"), "{rendered}");
        assert!(!rendered.contains("\"skipped_pct\":"), "v9 renamed the field");
        assert!(!rendered.contains("engine-bench: sharded/event"));
        assert!(rendered.contains("compress"));
    }

    fn history_line(schema: u64, unix: u64) -> String {
        format!(
            "{{\"schema\":{schema},\"unix_seconds\":{unix},\"divisor\":64,\"shards\":1,\
             \"cycles\":1000,\"ticked_cps\":100,\"event_cps\":500}}"
        )
    }

    #[test]
    fn history_validation_gates_the_append() {
        let good = history_line(HISTORY_SCHEMA_VERSION, 10);
        assert_eq!(validate_history_line("", &good), HistoryVerdict::Append);
        // A rendered report line validates against its own schema.
        let rows = run(256, 1).expect("runs");
        let rendered = render(&rows, 256, 1);
        let emitted = rendered
            .lines()
            .find_map(|l| l.strip_prefix("engine-bench: history = "))
            .expect("history line rendered");
        assert_eq!(validate_history_line(&good, emitted), HistoryVerdict::Append);

        match validate_history_line("", "not json at all") {
            HistoryVerdict::Skip(why) => assert!(why.starts_with("malformed:"), "{why}"),
            HistoryVerdict::Append => panic!("malformed line appended"),
        }
        match validate_history_line("", "{\"schema\":8}") {
            HistoryVerdict::Skip(why) => assert!(why.contains("missing key"), "{why}"),
            HistoryVerdict::Append => panic!("incomplete line appended"),
        }
        match validate_history_line("", &history_line(7, 10)) {
            HistoryVerdict::Skip(why) => assert!(why.contains("schema mismatch"), "{why}"),
            HistoryVerdict::Append => panic!("stale schema appended"),
        }
        let existing = format!("{}\n{good}\n", history_line(HISTORY_SCHEMA_VERSION, 5));
        match validate_history_line(&existing, &good) {
            HistoryVerdict::Skip(why) => assert_eq!(why, "duplicate of line 2"),
            HistoryVerdict::Append => panic!("duplicate appended"),
        }
        // A different timestamp is a different run, not a duplicate.
        assert_eq!(
            validate_history_line(&existing, &history_line(HISTORY_SCHEMA_VERSION, 11)),
            HistoryVerdict::Append
        );
    }

    #[test]
    fn malformed_existing_lines_are_reported_not_fatal() {
        let existing = format!("garbage\n{}\n{{\"schema\":9}}\n", history_line(9, 5));
        let bad = malformed_history_lines(&existing);
        assert_eq!(bad.len(), 2);
        assert_eq!(bad[0].0, 1, "line numbers are 1-based");
        assert_eq!(bad[1].0, 3, "reporting keeps going past the first problem");
        assert_eq!(bad[1].1, "missing required key `unix_seconds`");
        // ...and they do not block a fresh append.
        assert_eq!(
            validate_history_line(&existing, &history_line(HISTORY_SCHEMA_VERSION, 12)),
            HistoryVerdict::Append
        );
    }

    #[test]
    fn malformed_detection_checks_value_types_not_just_presence() {
        // `schema` as a string and a non-numeric metric both count as
        // malformed even though every required key is present.
        let stringly = "{\"schema\":\"9\",\"unix_seconds\":10,\"divisor\":64,\"shards\":1,\
                        \"cycles\":1000,\"ticked_cps\":100,\"event_cps\":500}";
        let nonnum = "{\"schema\":9,\"unix_seconds\":10,\"divisor\":64,\"shards\":1,\
                      \"cycles\":\"lots\",\"ticked_cps\":100,\"event_cps\":500}";
        let existing = format!("{stringly}\n{}\n{nonnum}\n", history_line(9, 5));
        let bad = malformed_history_lines(&existing);
        assert_eq!(bad.len(), 2, "{bad:?}");
        assert_eq!(bad[0], (1, "`schema` is not an integer".to_owned()));
        assert_eq!(bad[1], (3, "`cycles` is not numeric".to_owned()));
    }

    #[test]
    fn sharded_rows_report_the_parallel_column() {
        let rows = run(64, 4).expect("runs");
        for r in &rows {
            // Traces at this scale may still be too short to shard;
            // the exactness checks inside run() are the real assertion.
            assert!(r.shard_divergence >= 0.0, "{}: negative divergence", r.name);
        }
        let rendered = render(&rows, 64, 4);
        assert!(rendered.contains("engine-bench: sharded/event = "));
        assert!(rendered.contains("\"shards\":4"));
    }
}
