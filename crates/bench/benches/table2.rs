//! Criterion bench for the Table 2 experiment: times the cycle-level
//! simulation of each benchmark's trace on the single- and dual-cluster
//! machines, and the scheduling pipeline that produces the binaries.
//!
//! The *simulated* results (the paper's numbers) are printed by
//! `cargo run --release -p mcl-bench --bin repro -- table2`; this bench
//! measures the reproduction's own wall-clock cost per configuration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mcl_bench::schedule_and_trace;
use mcl_core::{Processor, ProcessorConfig};
use mcl_isa::assign::RegisterAssignment;
use mcl_sched::{SchedulePipeline, SchedulerKind};
use mcl_workloads::Benchmark;

/// Reduced scale so a criterion run stays in seconds per benchmark.
fn scale(bench: Benchmark) -> u32 {
    (bench.default_scale() / 20).max(1)
}

fn bench_simulation(c: &mut Criterion) {
    let assign = RegisterAssignment::even_odd_with_default_globals(2);
    let mut group = c.benchmark_group("table2/simulate");
    for bench in Benchmark::ALL {
        let il = bench.build(scale(bench));
        let native = schedule_and_trace(&il, SchedulerKind::Naive, &assign, None).unwrap();
        let local = schedule_and_trace(&il, SchedulerKind::Local, &assign, None).unwrap();
        group.throughput(Throughput::Elements(native.len() as u64));

        group.bench_with_input(
            BenchmarkId::new("single-8way", bench.name()),
            &native,
            |b, trace| {
                b.iter(|| {
                    Processor::new(ProcessorConfig::single_cluster_8way())
                        .run_trace(trace)
                        .unwrap()
                        .stats
                        .cycles
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("dual-none", bench.name()),
            &native,
            |b, trace| {
                b.iter(|| {
                    Processor::new(ProcessorConfig::dual_cluster_8way())
                        .run_trace(trace)
                        .unwrap()
                        .stats
                        .cycles
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("dual-local", bench.name()),
            &local,
            |b, trace| {
                b.iter(|| {
                    Processor::new(ProcessorConfig::dual_cluster_8way())
                        .run_trace(trace)
                        .unwrap()
                        .stats
                        .cycles
                });
            },
        );
    }
    group.finish();
}

fn bench_scheduling(c: &mut Criterion) {
    let assign = RegisterAssignment::even_odd_with_default_globals(2);
    let mut group = c.benchmark_group("table2/schedule");
    for bench in Benchmark::ALL {
        let il = bench.build(scale(bench));
        for kind in [SchedulerKind::Naive, SchedulerKind::Local] {
            group.bench_with_input(
                BenchmarkId::new(format!("{kind:?}"), bench.name()),
                &il,
                |b, il| {
                    b.iter(|| SchedulePipeline::new(kind, &assign).run(il).unwrap());
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_simulation, bench_scheduling
}
criterion_main!(benches);
