//! Criterion benches for the substrates: cache, branch predictors, the
//! trace-generating VM, and the register-allocation pipeline stages.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mcl_bpred::{Bimodal, BranchPredictor, Gshare, McFarling};
use mcl_mem::{Cache, CacheConfig};
use mcl_trace::Vm;
use mcl_workloads::{microkernels, Benchmark, HostLcg};

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("mem/cache");
    group.throughput(Throughput::Elements(10_000));

    group.bench_function("sequential-hits", |b| {
        b.iter(|| {
            let mut cache = Cache::new(CacheConfig::paper_l1());
            for now in 0..10_000u64 {
                cache.access((now % 512) * 8, now, false);
            }
            cache.stats().hits
        });
    });

    group.bench_function("streaming-misses", |b| {
        b.iter(|| {
            let mut cache = Cache::new(CacheConfig::paper_l1());
            for now in 0..10_000u64 {
                cache.access(now * 32, now, false);
            }
            cache.stats().misses
        });
    });

    group.bench_function("random-mixed", |b| {
        b.iter(|| {
            let mut cache = Cache::new(CacheConfig::paper_l1());
            let mut lcg = HostLcg::new(7);
            for now in 0..10_000u64 {
                cache.access(lcg.below(1 << 20) * 8, now, now % 3 == 0);
            }
            cache.stats().miss_rate()
        });
    });
    group.finish();
}

fn bench_predictors(c: &mut Criterion) {
    let mut group = c.benchmark_group("bpred");
    group.throughput(Throughput::Elements(100_000));
    // A realistic mixture: biased, alternating, and noisy branches.
    let mut lcg = HostLcg::new(99);
    let stream: Vec<(u64, bool)> = (0..100_000u64)
        .map(|i| {
            let pc = 0x1000 + (i % 64) * 4;
            let taken = match i % 64 {
                0..=20 => true,
                21..=40 => i % 2 == 0,
                _ => lcg.below(100) < 30,
            };
            (pc, taken)
        })
        .collect();

    group.bench_function("bimodal", |b| {
        b.iter(|| {
            let mut p = Bimodal::new(4096);
            let mut correct = 0u64;
            for &(pc, taken) in &stream {
                if p.predict(pc) == taken {
                    correct += 1;
                }
                p.update(pc, taken);
            }
            correct
        });
    });
    group.bench_function("gshare", |b| {
        b.iter(|| {
            let mut p = Gshare::new(4096);
            let mut correct = 0u64;
            for &(pc, taken) in &stream {
                if p.predict(pc) == taken {
                    correct += 1;
                }
                p.update(pc, taken);
            }
            correct
        });
    });
    group.bench_function("mcfarling", |b| {
        b.iter(|| {
            let mut p = McFarling::new(4096);
            let mut correct = 0u64;
            for &(pc, taken) in &stream {
                if p.predict(pc) == taken {
                    correct += 1;
                }
                p.update(pc, taken);
            }
            correct
        });
    });
    group.finish();
}

fn bench_vm(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace/vm");
    for bench in [Benchmark::Compress, Benchmark::Su2cor] {
        let il = bench.build((bench.default_scale() / 20).max(1));
        group.bench_with_input(BenchmarkId::new("run", bench.name()), &il, |b, il| {
            b.iter(|| {
                let mut vm = Vm::new(il);
                vm.run_to_end().unwrap()
            });
        });
    }
    let chain = microkernels::dependent_chain(10_000);
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("straight-line", |b| {
        b.iter(|| {
            let mut vm = Vm::new(&chain);
            vm.run_to_end().unwrap()
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_cache, bench_predictors, bench_vm
}
criterion_main!(benches);
