//! Criterion benches for the figure reproductions and ablation sweeps:
//! scenario timelines (Figures 2–5), the Figure 6 partitioning
//! walkthrough, and one point of each ablation.

use criterion::{criterion_group, criterion_main, Criterion};
use mcl_bench::{ablate, figure6, scenarios, TraceStore};
use mcl_workloads::Benchmark;

fn bench_scenarios(c: &mut Criterion) {
    c.bench_function("figures/scenarios-2-to-5", |b| {
        b.iter(|| scenarios::run_all().unwrap().len());
    });
}

fn bench_figure6(c: &mut Criterion) {
    c.bench_function("figures/figure6-partition", |b| {
        b.iter(|| {
            let fig = figure6::build();
            figure6::partition(&fig).assignment_order.len()
        });
    });
}

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate");
    group.sample_size(10);
    // A fresh store per iteration keeps the sweep's trace build inside
    // the measured work, as before the shared store existed.
    group.bench_function("buffers-compress", |b| {
        b.iter(|| {
            ablate::buffers(&TraceStore::new(), Benchmark::Compress, 400, &[4, 8])
                .unwrap()
                .0
                .len()
        });
    });
    group.bench_function("dq-compress", |b| {
        b.iter(|| {
            ablate::dq_single(&TraceStore::new(), Benchmark::Compress, 400, &[64, 128])
                .unwrap()
                .0
                .len()
        });
    });
    group.bench_function("width4-gcc1", |b| {
        b.iter(|| ablate::width4(&TraceStore::new(), Benchmark::Gcc1, 400).unwrap().0);
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_scenarios, bench_figure6, bench_ablations
}
criterion_main!(benches);
