//! Developer timing harness for the simulator's live-cycle hot path.
//!
//! Runs a couple of contrasting workloads (`doduc`: almost every cycle
//! live; `ora`: heavily fast-forwarded) many times in-process and
//! reports the minimum wall time per engine, so per-change deltas are
//! visible even on noisy machines. Not part of the repro suite — the
//! authoritative numbers come from `repro bench`.
//!
//! ```text
//! cargo run --release -p mcl-bench --example hotloop [reps]
//! ```

use std::time::Instant;

use mcl_bench::{TraceRequest, TraceStore};
use mcl_core::{Engine, Processor, ProcessorConfig};
use mcl_sched::SchedulerKind;
use mcl_workloads::Benchmark;

fn main() {
    let reps: u32 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(10);
    let store = TraceStore::new();
    for bench in [Benchmark::Doduc, Benchmark::Ora, Benchmark::Compress] {
        let req = TraceRequest::new(bench, bench.scaled(1), SchedulerKind::Local);
        let (trace, _) = store.trace(&req).expect("trace builds");
        for engine in [Engine::Ticked, Engine::Event] {
            let cfg = ProcessorConfig::dual_cluster_8way().with_engine(engine);
            let mut proc = Processor::new(cfg);
            let mut best = f64::INFINITY;
            let mut cycles = 0;
            for _ in 0..reps {
                let start = Instant::now();
                let r = proc.run_packed(&trace).expect("runs");
                best = best.min(start.elapsed().as_secs_f64());
                cycles = r.stats.cycles;
            }
            println!(
                "{:<10} {:?}: {} cycles, min {:.4}s, {:.2}M cyc/s",
                bench.name(),
                engine,
                cycles,
                best,
                cycles as f64 / best / 1e6
            );
        }
    }
}
