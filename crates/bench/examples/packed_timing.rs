//! A/B harness for the two trace representations: runs the same
//! benchmark trace through `Processor::run_trace` (the 72-byte
//! `TraceOp` slice) and `Processor::run_packed` (the 24-byte packed
//! form), asserts the statistics are identical, and prints the wall
//! time of each.
//!
//! ```text
//! cargo run --release -p mcl-bench --example packed_timing
//! ```

use std::time::Instant;

use mcl_core::{Processor, ProcessorConfig};
use mcl_isa::assign::RegisterAssignment;
use mcl_sched::SchedulerKind;
use mcl_workloads::Benchmark;

fn main() {
    let bench = Benchmark::Compress;
    let il = bench.build(bench.default_scale());
    let assign = RegisterAssignment::even_odd_with_default_globals(2);
    let trace =
        mcl_bench::schedule_and_trace(&il, SchedulerKind::Naive, &assign, None).unwrap();
    let packed = mcl_trace::PackedTrace::from_ops(&trace);
    let cfg = ProcessorConfig::single_cluster_8way();

    for _ in 0..3 {
        let t = Instant::now();
        let a = Processor::new(cfg.clone()).run_trace(&trace).unwrap();
        let slice_s = t.elapsed().as_secs_f64();
        let t = Instant::now();
        let b = Processor::new(cfg.clone()).run_packed(&packed).unwrap();
        let packed_s = t.elapsed().as_secs_f64();
        assert_eq!(a.stats, b.stats);
        println!("slice {slice_s:.4}s  packed {packed_s:.4}s  ratio {:.2}", packed_s / slice_s);
    }
}
