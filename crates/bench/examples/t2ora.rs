//! Developer profiling harness: the `table2/ora` cell, looped, so a
//! sampling profiler sees enough of the exact acceptance workload.
//!
//! ```text
//! cargo run --release -p mcl-bench --example t2ora [reps]
//! ```

use std::time::Instant;

use mcl_bench::{run_all_configs_with, TraceRequest, TraceStore};
use mcl_core::{Processor, ProcessorConfig};
use mcl_sched::SchedulerKind;
use mcl_workloads::Benchmark;

fn main() {
    let reps: u32 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(10);
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        // Fresh store each rep: the store caches whole sims, and the
        // point here is to re-run them (trace build rides along).
        let store = TraceStore::new();
        let start = Instant::now();
        let ((single, dual_none, dual_local), _) =
            run_all_configs_with(&store, Benchmark::Ora, Benchmark::Ora.scaled(1))
                .expect("cell runs");
        best = best.min(start.elapsed().as_secs_f64());
        std::hint::black_box((single.cycles, dual_none.cycles, dual_local.cycles));
    }
    println!("table2/ora cell: min {best:.4}s over {reps} reps");
    // Split: trace/schedule build vs each sim.
    let mut t_trace = f64::INFINITY;
    let mut t_sim = [f64::INFINITY; 3];
    for _ in 0..reps {
        let store = TraceStore::new();
        let native = TraceRequest::new(Benchmark::Ora, Benchmark::Ora.scaled(1), SchedulerKind::Naive);
        let local = TraceRequest::new(Benchmark::Ora, Benchmark::Ora.scaled(1), SchedulerKind::Local);
        let start = Instant::now();
        let (nt, _) = store.trace(&native).expect("trace");
        let (lt, _) = store.trace(&local).expect("trace");
        t_trace = t_trace.min(start.elapsed().as_secs_f64());
        let cfgs = [
            ProcessorConfig::single_cluster_8way(),
            ProcessorConfig::dual_cluster_8way(),
            ProcessorConfig::dual_cluster_8way(),
        ];
        for (i, cfg) in cfgs.into_iter().enumerate() {
            let trace = if i == 2 { &lt } else { &nt };
            let mut proc = Processor::new(cfg);
            let start = Instant::now();
            let r = proc.run_packed(trace).expect("runs");
            t_sim[i] = t_sim[i].min(start.elapsed().as_secs_f64());
            std::hint::black_box(r.stats.cycles);
        }
    }
    println!(
        "split: trace+sched {t_trace:.4}s single {:.4}s dual/none {:.4}s dual/local {:.4}s",
        t_sim[0], t_sim[1], t_sim[2]
    );
    let store = TraceStore::new();
    let ((single, dual_none, dual_local), _) =
        run_all_configs_with(&store, Benchmark::Ora, Benchmark::Ora.scaled(1)).expect("cell");
    for (name, s) in [("single", &single), ("dual/none", &dual_none), ("dual/local", &dual_local)] {
        println!(
            "{name:>10}: cycles {} retired {} dispatch_cycles {} drain {} stall_dq {} stall_regs {} stall_icache {} stall_branch {} stall_replay {}",
            s.cycles, s.retired, s.dispatch_cycles, s.drain_cycles, s.stall_dq, s.stall_regs,
            s.stall_icache, s.stall_branch, s.stall_replay
        );
    }
}
