//! Ticked-vs-event engine differential: the event-driven engine's
//! dead-cycle fast-forward is an execution strategy, not a model change,
//! so for any program both engines must produce byte-identical
//! [`SimStats`] and — with a [`CritPathProbe`] attached — identical
//! critical-path attributions.
//!
//! Programs are randomized IL (deterministic [`mcl_testutil::Rng`]
//! seeds, so failures reproduce exactly): counted loops with int/fp ALU
//! traffic across both clusters' registers, loads and stores for data
//! cache misses, and back-edge branches for mispredictions, run on the
//! single-cluster preset, the dual-cluster preset, and a tiny-buffer
//! dual machine that forces replay exceptions.

use mcl_core::{CheckLevel, CritPathProbe, Engine, Processor, ProcessorConfig, SimStats};
use mcl_isa::ArchReg;
use mcl_testutil::Rng;
use mcl_trace::{vm::trace_program, PackedTrace, Program, ProgramBuilder};

/// Machine presets the differential runs on. The tiny-buffer dual
/// machine forces transfer-buffer replays through both engines.
fn presets() -> Vec<(&'static str, ProcessorConfig)> {
    let mut tiny = ProcessorConfig::dual_cluster_8way();
    tiny.operand_buffer = 1;
    tiny.result_buffer = 1;
    vec![
        ("single", ProcessorConfig::single_cluster_8way()),
        ("dual", ProcessorConfig::dual_cluster_8way()),
        ("dual-tiny-buffers", tiny),
    ]
}

/// A random but valid program: a counted loop whose body mixes integer
/// and floating-point ALU ops over registers of both clusters with
/// loads and stores over a small memory window, followed by a random
/// straightline tail. Loop exits mispredict, cold lines miss, and long
/// dependence chains leave plenty of dead cycles to skip.
fn random_program(rng: &mut Rng) -> Program<ArchReg> {
    let mut b = ProgramBuilder::<ArchReg>::new("engine-diff");
    // Avoid the architecturally special registers: GP/SP (29/30) and
    // the hardwired zeros (31). r0 is the loop counter, r1 the memory
    // base pointer.
    let int = |rng: &mut Rng| ArchReg::int(rng.range(2, 29) as u8);
    let fp = |rng: &mut Rng| ArchReg::fp(rng.range(0, 31) as u8);
    for slot in 0..16u64 {
        b.mem_init(0x4000 + 8 * slot, rng.next_u64() >> 8);
    }
    for i in 2..8 {
        b.lda(ArchReg::int(i), rng.range_i64(-1000, 1000));
    }
    b.lda(ArchReg::int(0), rng.range_i64(2, 9));
    b.lda(ArchReg::int(1), 0x4000);

    let body = b.new_block("body");
    let tail = b.new_block("tail");
    b.switch_to(body);
    let body_ops = rng.range(4, 24);
    emit_random_ops(&mut b, rng, body_ops, &int, &fp);
    b.subq_imm(ArchReg::int(0), ArchReg::int(0), 1);
    b.bne(ArchReg::int(0), body);
    b.switch_to(tail);
    let tail_ops = rng.range(2, 16);
    emit_random_ops(&mut b, rng, tail_ops, &int, &fp);
    b.finish().expect("generated programs are structurally valid")
}

fn emit_random_ops(
    b: &mut ProgramBuilder<ArchReg>,
    rng: &mut Rng,
    count: usize,
    int: &impl Fn(&mut Rng) -> ArchReg,
    fp: &impl Fn(&mut Rng) -> ArchReg,
) {
    let base = ArchReg::int(1);
    for _ in 0..count {
        match rng.below(8) {
            0 => {
                let (d, a, s) = (int(rng), int(rng), int(rng));
                b.addq(d, a, s);
            }
            1 => {
                let (d, a) = (int(rng), int(rng));
                let imm = rng.range_i64(-128, 128);
                b.addq_imm(d, a, imm);
            }
            2 => {
                let (d, a, s) = (int(rng), int(rng), int(rng));
                b.mulq(d, a, s);
            }
            3 => {
                let (d, a, s) = (fp(rng), fp(rng), fp(rng));
                b.addt(d, a, s);
            }
            4 => {
                let (d, a, s) = (fp(rng), fp(rng), fp(rng));
                b.mult(d, a, s);
            }
            5 => {
                let d = int(rng);
                let offset = 8 * rng.range_i64(0, 16);
                b.ldq(d, base, offset);
            }
            6 => {
                let v = int(rng);
                let offset = 8 * rng.range_i64(0, 16);
                b.stq(base, offset, v);
            }
            _ => {
                let (d, a) = (fp(rng), fp(rng));
                b.sqrtt(d, a);
            }
        }
    }
}

fn run(cfg: &ProcessorConfig, engine: Engine, trace: &PackedTrace) -> mcl_core::SimResult {
    Processor::new(cfg.clone().with_engine(engine)).run_packed(trace).expect("runs")
}

#[test]
fn engines_agree_on_random_programs() {
    let presets = presets();
    let mut total_skipped = 0u64;
    let mut total_jumps = 0u64;
    for seed in 0..24u64 {
        let mut rng = Rng::new(seed);
        let program = random_program(&mut rng);
        let (trace, _) = trace_program(&program).expect("valid program");
        let packed = PackedTrace::from_ops(&trace);
        for (name, cfg) in &presets {
            let ticked = run(cfg, Engine::Ticked, &packed);
            let event = run(cfg, Engine::Event, &packed);
            assert_eq!(
                ticked.stats, event.stats,
                "seed {seed} preset {name}: engines diverged"
            );
            assert_eq!(
                ticked.ff,
                mcl_core::FastForward::default(),
                "seed {seed} preset {name}: ticked engine must not fast-forward"
            );
            assert!(
                event.ff.skipped_cycles < event.stats.cycles,
                "seed {seed} preset {name}: skipped more cycles than were simulated"
            );
            total_skipped += event.ff.skipped_cycles;
            total_jumps += event.ff.jumps;
        }
    }
    // The suite as a whole must exercise the fast-forward path, or the
    // differential proves nothing about it.
    assert!(
        total_jumps > 0 && total_skipped > 0,
        "no random program ever fast-forwarded (skipped={total_skipped}, jumps={total_jumps})"
    );
}

#[test]
fn engines_agree_under_the_cycle_level_checker() {
    // CheckLevel::Cycle pins the event engine to single-stepping (the
    // checker audits every cycle), so this differential confirms the
    // engine knob changes nothing when fast-forward is gated off.
    let presets = presets();
    for seed in 0..6u64 {
        let mut rng = Rng::new(seed);
        let program = random_program(&mut rng);
        let (trace, _) = trace_program(&program).expect("valid program");
        let packed = PackedTrace::from_ops(&trace);
        for (name, cfg) in &presets {
            let checked = cfg.clone().with_check_level(CheckLevel::Cycle);
            let ticked = run(&checked, Engine::Ticked, &packed);
            let event = run(&checked, Engine::Event, &packed);
            assert_eq!(
                ticked.stats, event.stats,
                "seed {seed} preset {name}: engines diverged under the checker"
            );
            assert_eq!(
                event.ff,
                mcl_core::FastForward::default(),
                "seed {seed} preset {name}: cycle-level checking must disable fast-forward"
            );
        }
    }
}

#[test]
fn critpath_attribution_is_engine_invariant() {
    // An attached probe forces single-stepping in both engines
    // (fast-forward would skip the per-cycle hook points), so the
    // instrumented runs must agree with each other and with the
    // unprobed stats, and the critical-path attributions must match
    // exactly.
    let presets = presets();
    for seed in 0..6u64 {
        let mut rng = Rng::new(seed);
        let program = random_program(&mut rng);
        let (trace, _) = trace_program(&program).expect("valid program");
        let packed = PackedTrace::from_ops(&trace);
        for (name, cfg) in &presets {
            let mut attributions = Vec::new();
            let mut stats: Vec<SimStats> = Vec::new();
            for engine in [Engine::Ticked, Engine::Event] {
                let unprobed = run(cfg, engine, &packed);
                let mut probe = CritPathProbe::new();
                let observed = Processor::new(cfg.clone().with_engine(engine))
                    .run_packed_observed(&packed, &mut probe)
                    .expect("runs");
                assert_eq!(
                    observed.stats, unprobed.stats,
                    "seed {seed} preset {name} {engine:?}: probe perturbed the run"
                );
                assert_eq!(
                    observed.ff,
                    mcl_core::FastForward::default(),
                    "seed {seed} preset {name} {engine:?}: probes must disable fast-forward"
                );
                let attr = probe.attribution(observed.stats.cycles);
                attr.check_identity(observed.stats.cycles)
                    .unwrap_or_else(|e| panic!("seed {seed} preset {name} {engine:?}: {e}"));
                attributions.push(attr);
                stats.push(observed.stats);
            }
            assert_eq!(
                stats[0], stats[1],
                "seed {seed} preset {name}: probed engines diverged"
            );
            assert_eq!(
                attributions[0], attributions[1],
                "seed {seed} preset {name}: critical-path attributions diverged"
            );
        }
    }
}
