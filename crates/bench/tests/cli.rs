//! Command-line contract tests for the `repro` binary: malformed flags
//! must fail fast with a usage error before any simulation starts, and
//! the `pipetrace` subcommand must produce exports that its own
//! validator (`repro obs-validate`) accepts.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn repro(dir: &Path, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .current_dir(dir)
        .output()
        .expect("repro binary runs")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mcl-cli-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn sample_interval_rejects_zero_and_garbage() {
    let dir = temp_dir("sample-interval");
    for bad in ["0", "abc", "-1", "1.5"] {
        let out = repro(&dir, &["table2", "64", "--sample-interval", bad]);
        assert!(!out.status.success(), "--sample-interval {bad} must fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("invalid --sample-interval"),
            "--sample-interval {bad}: {stderr}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn range_flag_rejects_malformed_values() {
    let dir = temp_dir("range");
    for bad in ["abc", "5", "9..3", "4..4", "a..b"] {
        let out = repro(&dir, &["pipetrace", "64", "--range", bad]);
        assert!(!out.status.success(), "--range {bad} must fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("--range"), "--range {bad}: {stderr}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pipetrace_exports_pass_obs_validate() {
    let dir = temp_dir("pipetrace");
    let out_dir = dir.join("exports");
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["pipetrace", "64", "--out"])
        .arg(&out_dir)
        .env("MCL_ONLY", "compress")
        .current_dir(&dir)
        .output()
        .expect("repro binary runs");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "pipetrace run failed: {stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("compress: "), "{stdout}");
    assert!(out_dir.join("compress.konata").is_file());
    assert!(out_dir.join("compress.pipetrace.json").is_file());

    let validate = Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("obs-validate")
        .arg(&out_dir)
        .current_dir(&dir)
        .output()
        .expect("repro binary runs");
    let vout = String::from_utf8_lossy(&validate.stdout);
    assert!(
        validate.status.success(),
        "obs-validate failed: {}",
        String::from_utf8_lossy(&validate.stderr)
    );
    assert!(vout.contains("1 pipetrace export(s)"), "{vout}");
    assert!(vout.contains("1 Konata trace(s)"), "{vout}");
    let _ = std::fs::remove_dir_all(&dir);
}
