//! Sharded-vs-serial differential: intra-run time-window sharding is an
//! execution strategy, not a model change, so for any program the
//! merged [`SimStats`] must match the serial run — byte-identical at
//! `shards = 1`, and at higher shard counts exact on every summed
//! counter with cycle counts inside the reported divergence bound (or
//! an automatic serial fallback, which is again byte-identical).
//!
//! Mirrors `engine_differential.rs`: randomized IL programs from
//! deterministic [`mcl_testutil::Rng`] seeds, run on the single-cluster
//! preset, the dual-cluster preset, and a tiny-buffer dual machine that
//! forces replay exceptions. The loops here are much longer — a window
//! plan only engages past `2 × MIN_WINDOW_OPS` dynamic ops.

use mcl_core::{shard::MIN_WINDOW_OPS, Processor, ProcessorConfig, ShardOptions};
use mcl_isa::ArchReg;
use mcl_testutil::Rng;
use mcl_trace::{vm::trace_program, PackedTrace, Program, ProgramBuilder};

/// Machine presets the differential runs on. The tiny-buffer dual
/// machine forces transfer-buffer replays through the window workers.
fn presets() -> Vec<(&'static str, ProcessorConfig)> {
    let mut tiny = ProcessorConfig::dual_cluster_8way();
    tiny.operand_buffer = 1;
    tiny.result_buffer = 1;
    vec![
        ("single", ProcessorConfig::single_cluster_8way()),
        ("dual", ProcessorConfig::dual_cluster_8way()),
        ("dual-tiny-buffers", tiny),
    ]
}

/// A random but valid *long* program: a counted loop whose body mixes
/// integer and floating-point ALU ops over registers of both clusters
/// with loads and stores over a small memory window. The iteration
/// count is chosen so the dynamic trace clears four minimum windows,
/// which is what makes `--shards 4` actually plan four windows.
fn random_long_program(rng: &mut Rng) -> Program<ArchReg> {
    let mut b = ProgramBuilder::<ArchReg>::new("shard-diff");
    let int = |rng: &mut Rng| ArchReg::int(rng.range(2, 29) as u8);
    let fp = |rng: &mut Rng| ArchReg::fp(rng.range(0, 31) as u8);
    for slot in 0..16u64 {
        b.mem_init(0x4000 + 8 * slot, rng.next_u64() >> 8);
    }
    for i in 2..8 {
        b.lda(ArchReg::int(i), rng.range_i64(-1000, 1000));
    }
    let body_ops = rng.range(6, 20);
    let per_iter = body_ops as i64 + 2; // body + decrement + branch
    let iters = (4 * MIN_WINDOW_OPS as i64) / per_iter + 64;
    b.lda(ArchReg::int(0), iters);
    b.lda(ArchReg::int(1), 0x4000);

    let body = b.new_block("body");
    b.switch_to(body);
    emit_random_ops(&mut b, rng, body_ops, &int, &fp);
    b.subq_imm(ArchReg::int(0), ArchReg::int(0), 1);
    b.bne(ArchReg::int(0), body);
    b.finish().expect("generated programs are structurally valid")
}

fn emit_random_ops(
    b: &mut ProgramBuilder<ArchReg>,
    rng: &mut Rng,
    count: usize,
    int: &impl Fn(&mut Rng) -> ArchReg,
    fp: &impl Fn(&mut Rng) -> ArchReg,
) {
    let base = ArchReg::int(1);
    for _ in 0..count {
        match rng.below(10) {
            0 | 1 => {
                let (d, a, s) = (int(rng), int(rng), int(rng));
                b.addq(d, a, s);
            }
            2 | 3 => {
                let (d, a) = (int(rng), int(rng));
                let imm = rng.range_i64(-128, 128);
                b.addq_imm(d, a, imm);
            }
            4 => {
                let (d, a, s) = (int(rng), int(rng), int(rng));
                b.mulq(d, a, s);
            }
            5 => {
                let (d, a, s) = (fp(rng), fp(rng), fp(rng));
                b.addt(d, a, s);
            }
            6 => {
                let (d, a, s) = (fp(rng), fp(rng), fp(rng));
                b.mult(d, a, s);
            }
            7 => {
                let d = int(rng);
                let offset = 8 * rng.range_i64(0, 16);
                b.ldq(d, base, offset);
            }
            8 => {
                let v = int(rng);
                let offset = 8 * rng.range_i64(0, 16);
                b.stq(base, offset, v);
            }
            _ => {
                let (d, a) = (fp(rng), fp(rng));
                b.sqrtt(d, a);
            }
        }
    }
}

fn packed(seed: u64) -> PackedTrace {
    let mut rng = Rng::new(seed);
    let program = random_long_program(&mut rng);
    let (trace, _) = trace_program(&program).expect("valid program");
    PackedTrace::from_ops(&trace)
}

#[test]
fn sharded_runs_match_serial_on_random_programs() {
    let presets = presets();
    let mut parallel_windows_seen = 0u32;
    for seed in 0..3u64 {
        let trace = packed(seed);
        assert!(
            trace.len() >= 4 * MIN_WINDOW_OPS,
            "seed {seed}: trace too short to plan four windows ({} ops)",
            trace.len()
        );
        for (name, cfg) in &presets {
            let mut proc = Processor::new(cfg.clone());
            let serial = proc.run_packed(&trace).expect("serial runs");
            for shards in [1usize, 2, 4] {
                let (sharded, report) = proc
                    .run_sharded(&trace, &ShardOptions::new(shards))
                    .expect("sharded runs");
                if shards == 1 {
                    assert_eq!(report.windows, 1);
                    assert_eq!(report.serial_reason, Some("shards=1"));
                }
                if report.windows == 1 || report.fell_back {
                    // Serial path (requested, or fallback): bit-exact.
                    assert_eq!(
                        sharded.stats, serial.stats,
                        "seed {seed} preset {name} shards {shards}: serial path diverged"
                    );
                    continue;
                }
                parallel_windows_seen += 1;
                assert_eq!(report.windows, shards, "seed {seed} preset {name}");
                // Every summed counter is exact under the merge;
                // retirement is the paper-facing one.
                assert_eq!(
                    sharded.stats.retired, serial.stats.retired,
                    "seed {seed} preset {name} shards {shards}: retirement drifted"
                );
                sharded
                    .stats
                    .check_stall_identity()
                    .unwrap_or_else(|e| panic!("seed {seed} preset {name} shards {shards}: {e}"));
                // Cycles agree within the reported boundary bound.
                let (s, p) = (serial.stats.cycles as f64, sharded.stats.cycles as f64);
                let err = (s - p).abs() / s;
                assert!(
                    err <= report.divergence + 1e-9,
                    "seed {seed} preset {name} shards {shards}: serial {s} vs sharded {p} \
                     (err {err:.6} > reported bound {:.6})",
                    report.divergence
                );
                assert!(
                    report.divergence <= 0.02,
                    "seed {seed} preset {name} shards {shards}: bound blew up: {report:?}"
                );
                assert_eq!(report.window_cycles.len(), shards);
                assert!(report.warmup_ops > 0, "non-first windows must have warmed up");
            }
        }
    }
    // The suite must actually exercise the parallel merge path, or the
    // differential proves nothing about it.
    assert!(
        parallel_windows_seen > 0,
        "every configuration fell back to serial; the merge path went untested"
    );
}
