//! Determinism regression for the experiment driver: the same
//! (workload, configuration) cell must produce identical statistics
//! when run twice serially, when served from a warm trace store, and
//! when run through the parallel runner, regardless of the job count.

use std::sync::Arc;

use mcl_bench::runner::{run_cells, Cell};
use mcl_bench::{table2, Table2Row, TraceStore};
use mcl_workloads::Benchmark;

/// A scale small enough for tests but large enough to exercise
/// replays, mispredictions, and cross-cluster traffic.
fn small_scale(b: Benchmark) -> u32 {
    (b.default_scale() / 64).max(1)
}

fn assert_rows_equal(a: &Table2Row, b: &Table2Row, context: &str) {
    assert_eq!(a.name, b.name, "{context}");
    assert_eq!(a.single_cycles, b.single_cycles, "{context}: {}", a.name);
    assert_eq!(a.dual_none_cycles, b.dual_none_cycles, "{context}: {}", a.name);
    assert_eq!(a.dual_local_cycles, b.dual_local_cycles, "{context}: {}", a.name);
    assert_eq!(a.stats, b.stats, "{context}: full stats of {}", a.name);
}

#[test]
fn same_cell_twice_serially_is_identical() {
    let bench = Benchmark::ALL[0];
    let a = table2::table2_row(bench, small_scale(bench)).expect("runs");
    let b = table2::table2_row(bench, small_scale(bench)).expect("runs");
    assert_rows_equal(&a, &b, "two serial runs");
}

#[test]
fn store_cached_rows_match_fresh_rows() {
    // A warm store must serve bit-identical statistics: run every row
    // once against a fresh store each time (all misses), then again
    // against one shared store (first pass seeds it, second pass is all
    // hits).
    let shared = TraceStore::new();
    for bench in Benchmark::ALL {
        let scale = small_scale(bench);
        let fresh = table2::table2_row(bench, scale).expect("runs");
        let (seeded, _) = table2::table2_row_with(&shared, bench, scale).expect("runs");
        let (served, _) = table2::table2_row_with(&shared, bench, scale).expect("runs");
        assert_rows_equal(&seeded, &fresh, "store miss vs fresh store");
        assert_rows_equal(&served, &fresh, "store hit vs fresh store");
    }
    let counters = shared.counters();
    assert!(counters.sim_hits > 0, "second pass must hit the sim cache");
}

#[test]
fn parallel_runner_matches_serial_execution() {
    // Reference: every benchmark's row computed directly, in order.
    let reference: Vec<Table2Row> = Benchmark::ALL
        .iter()
        .map(|&b| table2::table2_row(b, small_scale(b)).expect("runs"))
        .collect();

    let make_cells = |store: &Arc<TraceStore>| -> Vec<Cell<Table2Row>> {
        Benchmark::ALL
            .iter()
            .map(|&b| {
                let store = Arc::clone(store);
                Cell::new(format!("table2/{b}"), move || {
                    table2::table2_row_with(&store, b, small_scale(b))
                })
            })
            .collect()
    };

    for jobs in [1, 4] {
        // Each job count gets its own store, mirroring one `repro`
        // invocation; under 4 jobs the workers race to build and share
        // traces, which must not change any result.
        let store = Arc::new(TraceStore::new());
        let (rows, metrics) = run_cells(jobs, make_cells(&store)).expect("runs");
        assert_eq!(rows.len(), reference.len());
        for (got, want) in rows.iter().zip(&reference) {
            assert_rows_equal(got, want, &format!("runner with {jobs} jobs"));
        }
        // Metrics come back in submission order too.
        let ids: Vec<String> =
            metrics.iter().map(|m| m.id.clone()).collect();
        let want_ids: Vec<String> =
            Benchmark::ALL.iter().map(|b| format!("table2/{b}")).collect();
        assert_eq!(ids, want_ids);
    }
}
