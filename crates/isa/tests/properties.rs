//! Property tests for the ISA layer: issue budgets never exceed their
//! rules, cluster sets behave like sets, and assignments are total.
//!
//! Cases are generated with the dependency-free [`mcl_testutil::Rng`]
//! (the build has no registry access, so `proptest` is unavailable);
//! seeds are fixed, so every run checks the same cases.

use mcl_isa::{
    assign::{RegAssignment, RegisterAssignment},
    ArchReg, ClusterId, ClusterSet, InstrClass, IssueRules, Opcode,
};
use mcl_testutil::{check_cases, Rng};

fn any_class(rng: &mut Rng) -> InstrClass {
    *rng.pick(&InstrClass::ALL)
}

#[test]
fn issue_budget_never_exceeds_any_limit() {
    check_cases(128, |rng| {
        let classes = rng.vec_in(0, 40, any_class);
        for rules in [IssueRules::single_cluster_8way(), IssueRules::dual_cluster_4way()] {
            let mut budget = rules.budget();
            let mut taken_total = 0u32;
            let mut taken_by_group = [0u32; 4]; // int, fp, mem, control
            for class in &classes {
                if budget.try_take(*class) {
                    taken_total += 1;
                    let g = match class {
                        InstrClass::IntMul | InstrClass::IntAlu => 0,
                        InstrClass::FpDiv | InstrClass::FpOther => 1,
                        InstrClass::Load | InstrClass::Store => 2,
                        InstrClass::ControlFlow => 3,
                    };
                    taken_by_group[g] += 1;
                }
            }
            assert!(taken_total <= rules.total);
            assert!(taken_by_group[0] <= rules.int_all);
            assert!(taken_by_group[1] <= rules.fp_all);
            assert!(taken_by_group[2] <= rules.mem);
            assert!(taken_by_group[3] <= rules.control);
            assert_eq!(budget.taken(), taken_total);
        }
    });
}

#[test]
fn can_take_is_consistent_with_try_take() {
    check_cases(128, |rng| {
        let classes = rng.vec_in(0, 40, any_class);
        let rules = IssueRules::dual_cluster_4way();
        let mut budget = rules.budget();
        for class in classes {
            let could = budget.can_take(class);
            let did = budget.try_take(class);
            assert_eq!(could, did);
        }
    });
}

#[test]
fn cluster_set_behaves_like_a_set() {
    check_cases(128, |rng| {
        let ids = rng.vec_in(0, 16, |r| r.below(8) as u8);
        let mut set = ClusterSet::empty();
        let mut reference = std::collections::BTreeSet::new();
        for id in ids {
            set.insert(ClusterId::new(id));
            reference.insert(id);
        }
        assert_eq!(set.len(), reference.len());
        for id in 0..8u8 {
            assert_eq!(set.contains(ClusterId::new(id)), reference.contains(&id));
        }
        let collected: Vec<u8> = set.iter().map(|c| c.index() as u8).collect();
        let expected: Vec<u8> = reference.into_iter().collect();
        assert_eq!(collected, expected);
    });
}

#[test]
fn even_odd_assignment_is_total_and_consistent() {
    for clusters in 1u8..=4 {
        let a = RegisterAssignment::even_odd_with_default_globals(clusters);
        assert_eq!(a.clusters(), clusters);
        for reg in ArchReg::all() {
            let assignment = a.assignment_of(reg);
            match assignment {
                RegAssignment::Local(c) => {
                    assert!(c.index() < usize::from(clusters), "{reg} -> {c}");
                    assert_eq!(a.clusters_of(reg).single(), Some(c));
                }
                RegAssignment::Global => {
                    assert_eq!(a.clusters_of(reg).len(), usize::from(clusters));
                }
            }
        }
        // Locals + globals partition the 64 registers.
        let locals: usize =
            (0..clusters).map(|c| a.local_registers_of(ClusterId::new(c)).count()).sum();
        let globals = a.global_registers().count();
        assert_eq!(locals + globals + 2, 64, "2 hardwired zeros");
    }
}

#[test]
fn latency_table_is_positive_for_all_opcodes() {
    let lat = mcl_isa::Latencies::table1();
    for &op in Opcode::all() {
        assert!(lat.of(op) >= 1, "{op}");
    }
}
