//! Property tests for the ISA layer: issue budgets never exceed their
//! rules, cluster sets behave like sets, and assignments are total.

use mcl_isa::{
    assign::{RegAssignment, RegisterAssignment},
    ArchReg, ClusterId, ClusterSet, InstrClass, IssueRules, Opcode,
};
use proptest::prelude::*;

fn any_class() -> impl Strategy<Value = InstrClass> {
    prop::sample::select(InstrClass::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn issue_budget_never_exceeds_any_limit(
        classes in prop::collection::vec(any_class(), 0..40)
    ) {
        for rules in [IssueRules::single_cluster_8way(), IssueRules::dual_cluster_4way()] {
            let mut budget = rules.budget();
            let mut taken_total = 0u32;
            let mut taken_by_group = [0u32; 4]; // int, fp, mem, control
            for class in &classes {
                if budget.try_take(*class) {
                    taken_total += 1;
                    let g = match class {
                        InstrClass::IntMul | InstrClass::IntAlu => 0,
                        InstrClass::FpDiv | InstrClass::FpOther => 1,
                        InstrClass::Load | InstrClass::Store => 2,
                        InstrClass::ControlFlow => 3,
                    };
                    taken_by_group[g] += 1;
                }
            }
            prop_assert!(taken_total <= rules.total);
            prop_assert!(taken_by_group[0] <= rules.int_all);
            prop_assert!(taken_by_group[1] <= rules.fp_all);
            prop_assert!(taken_by_group[2] <= rules.mem);
            prop_assert!(taken_by_group[3] <= rules.control);
            prop_assert_eq!(budget.taken(), taken_total);
        }
    }

    #[test]
    fn can_take_is_consistent_with_try_take(
        classes in prop::collection::vec(any_class(), 0..40)
    ) {
        let rules = IssueRules::dual_cluster_4way();
        let mut budget = rules.budget();
        for class in classes {
            let could = budget.can_take(class);
            let did = budget.try_take(class);
            prop_assert_eq!(could, did);
        }
    }

    #[test]
    fn cluster_set_behaves_like_a_set(ids in prop::collection::vec(0u8..8, 0..16)) {
        let mut set = ClusterSet::empty();
        let mut reference = std::collections::BTreeSet::new();
        for id in ids {
            set.insert(ClusterId::new(id));
            reference.insert(id);
        }
        prop_assert_eq!(set.len(), reference.len());
        for id in 0..8u8 {
            prop_assert_eq!(set.contains(ClusterId::new(id)), reference.contains(&id));
        }
        let collected: Vec<u8> = set.iter().map(|c| c.index() as u8).collect();
        let expected: Vec<u8> = reference.into_iter().collect();
        prop_assert_eq!(collected, expected);
    }

    #[test]
    fn even_odd_assignment_is_total_and_consistent(clusters in 1u8..=4) {
        let a = RegisterAssignment::even_odd_with_default_globals(clusters);
        prop_assert_eq!(a.clusters(), clusters);
        for reg in ArchReg::all() {
            let assignment = a.assignment_of(reg);
            match assignment {
                RegAssignment::Local(c) => {
                    prop_assert!(c.index() < usize::from(clusters), "{reg} -> {c}");
                    prop_assert_eq!(a.clusters_of(reg).single(), Some(c));
                }
                RegAssignment::Global => {
                    prop_assert_eq!(a.clusters_of(reg).len(), usize::from(clusters));
                }
            }
        }
        // Locals + globals partition the 64 registers.
        let locals: usize = (0..clusters)
            .map(|c| a.local_registers_of(ClusterId::new(c)).count())
            .sum();
        let globals = a.global_registers().count();
        prop_assert_eq!(locals + globals + 2, 64, "2 hardwired zeros");
    }

    #[test]
    fn latency_table_is_positive_for_all_opcodes(_x in 0..1i32) {
        let lat = mcl_isa::Latencies::table1();
        for &op in Opcode::all() {
            prop_assert!(lat.of(op) >= 1, "{op}");
        }
    }
}
