//! Architectural registers.
//!
//! The simulated instruction set follows the DEC Alpha register
//! conventions that the paper's evaluation assumes: 32 integer registers
//! (`r0`–`r31`) and 32 floating-point registers (`f0`–`f31`), with
//! `r31` and `f31` hardwired to zero, `r30` serving as the stack pointer
//! and `r29` as the global pointer.

use std::fmt;


/// Number of architectural registers per bank.
pub const REGS_PER_BANK: u8 = 32;

/// A register bank: integer or floating point.
///
/// The multicluster architecture gives each cluster one register file per
/// bank (Figure 1 of the paper), and issue rules are expressed per bank
/// (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RegBank {
    /// The integer register file (`r0`–`r31`).
    Int,
    /// The floating-point register file (`f0`–`f31`).
    Fp,
}

impl RegBank {
    /// Both banks, in a fixed order — convenient for iterating over
    /// per-bank resources.
    pub const ALL: [RegBank; 2] = [RegBank::Int, RegBank::Fp];

    /// The single-letter prefix used in assembly notation (`r` or `f`).
    #[must_use]
    pub fn prefix(self) -> char {
        match self {
            RegBank::Int => 'r',
            RegBank::Fp => 'f',
        }
    }
}

impl fmt::Display for RegBank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegBank::Int => f.write_str("int"),
            RegBank::Fp => f.write_str("fp"),
        }
    }
}

/// An architectural register: a bank plus an index in `0..32`.
///
/// `ArchReg` is the name space instructions use; the simulator renames
/// these to per-cluster physical registers at distribution time
/// (Section 2.1 of the paper).
///
/// # Example
///
/// ```
/// use mcl_isa::{ArchReg, RegBank};
///
/// let r4 = ArchReg::int(4);
/// assert_eq!(r4.bank(), RegBank::Int);
/// assert_eq!(r4.index(), 4);
/// assert_eq!(r4.to_string(), "r4");
/// assert!(ArchReg::ZERO.is_zero());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArchReg {
    bank: RegBank,
    index: u8,
}

impl ArchReg {
    /// The integer zero register `r31`: reads as zero, writes are discarded.
    pub const ZERO: ArchReg = ArchReg { bank: RegBank::Int, index: 31 };
    /// The floating-point zero register `f31`.
    pub const FZERO: ArchReg = ArchReg { bank: RegBank::Fp, index: 31 };
    /// The stack pointer `r30` (a global-register candidate in the paper).
    pub const SP: ArchReg = ArchReg { bank: RegBank::Int, index: 30 };
    /// The global pointer `r29` (a global-register candidate in the paper).
    pub const GP: ArchReg = ArchReg { bank: RegBank::Int, index: 29 };

    /// Creates an integer register `r<index>`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[must_use]
    pub fn int(index: u8) -> ArchReg {
        ArchReg::new(RegBank::Int, index)
    }

    /// Creates a floating-point register `f<index>`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[must_use]
    pub fn fp(index: u8) -> ArchReg {
        ArchReg::new(RegBank::Fp, index)
    }

    /// Creates a register in the given bank.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[must_use]
    pub fn new(bank: RegBank, index: u8) -> ArchReg {
        assert!(index < REGS_PER_BANK, "register index {index} out of range");
        ArchReg { bank, index }
    }

    /// The bank this register belongs to.
    #[must_use]
    pub fn bank(self) -> RegBank {
        self.bank
    }

    /// The index within the bank, in `0..32`.
    #[must_use]
    pub fn index(self) -> u8 {
        self.index
    }

    /// Whether this is one of the hardwired zero registers (`r31`/`f31`).
    ///
    /// Zero registers never participate in renaming, dependence tracking,
    /// or cluster assignment: they are readable from every cluster for
    /// free and writes to them are discarded.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.index == 31
    }

    /// A dense index in `0..64` over both banks, useful for table lookups.
    #[must_use]
    pub fn dense_index(self) -> usize {
        match self.bank {
            RegBank::Int => usize::from(self.index),
            RegBank::Fp => usize::from(self.index) + usize::from(REGS_PER_BANK),
        }
    }

    /// The inverse of [`ArchReg::dense_index`].
    ///
    /// # Panics
    ///
    /// Panics if `index >= 64`.
    #[must_use]
    pub fn from_dense_index(index: usize) -> ArchReg {
        let per_bank = usize::from(REGS_PER_BANK);
        if index < per_bank {
            ArchReg { bank: RegBank::Int, index: index as u8 }
        } else {
            assert!(index < 2 * per_bank, "dense index {index} out of range");
            ArchReg { bank: RegBank::Fp, index: (index - per_bank) as u8 }
        }
    }

    /// Iterates over every architectural register in both banks.
    pub fn all() -> impl Iterator<Item = ArchReg> {
        RegBank::ALL
            .into_iter()
            .flat_map(|bank| (0..REGS_PER_BANK).map(move |index| ArchReg { bank, index }))
    }
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.bank.prefix(), self.index)
    }
}

impl fmt::Debug for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ArchReg({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conventions_match_alpha() {
        assert_eq!(ArchReg::ZERO, ArchReg::int(31));
        assert_eq!(ArchReg::FZERO, ArchReg::fp(31));
        assert_eq!(ArchReg::SP, ArchReg::int(30));
        assert_eq!(ArchReg::GP, ArchReg::int(29));
        assert!(ArchReg::ZERO.is_zero());
        assert!(ArchReg::FZERO.is_zero());
        assert!(!ArchReg::SP.is_zero());
    }

    #[test]
    fn display_uses_bank_prefix() {
        assert_eq!(ArchReg::int(0).to_string(), "r0");
        assert_eq!(ArchReg::fp(17).to_string(), "f17");
    }

    #[test]
    fn dense_index_is_a_bijection() {
        let mut seen = [false; 64];
        for reg in ArchReg::all() {
            let idx = reg.dense_index();
            assert!(!seen[idx], "dense index {idx} repeated");
            seen[idx] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn dense_index_round_trips() {
        for reg in ArchReg::all() {
            assert_eq!(ArchReg::from_dense_index(reg.dense_index()), reg);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_dense_index_rejects_out_of_range() {
        let _ = ArchReg::from_dense_index(64);
    }

    #[test]
    fn all_yields_64_registers() {
        assert_eq!(ArchReg::all().count(), 64);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        let _ = ArchReg::int(32);
    }

    #[test]
    fn ordering_groups_by_bank() {
        assert!(ArchReg::int(31) < ArchReg::fp(0));
        assert!(ArchReg::int(3) < ArchReg::int(4));
    }
}
