//! Cluster identity.

use std::fmt;


/// Identifies one cluster of a multicluster processor.
///
/// The paper discusses the architecture "in terms of a multicluster
/// processor with two clusters"; this reproduction follows suit but keeps
/// the identifier open-ended so configurations with more clusters can be
/// explored.
///
/// # Example
///
/// ```
/// use mcl_isa::ClusterId;
///
/// let c0 = ClusterId::new(0);
/// assert_eq!(c0.to_string(), "C0");
/// assert_eq!(c0.other(), ClusterId::new(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClusterId(u8);

impl ClusterId {
    /// Cluster 0 (called `C1` in the paper's figures).
    pub const C0: ClusterId = ClusterId(0);
    /// Cluster 1 (called `C2` in the paper's figures).
    pub const C1: ClusterId = ClusterId(1);

    /// Creates a cluster identifier.
    #[must_use]
    pub fn new(index: u8) -> ClusterId {
        ClusterId(index)
    }

    /// The numeric index of the cluster.
    #[must_use]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }

    /// The other cluster of a dual-cluster processor.
    ///
    /// Meaningful only for two-cluster configurations; maps `0 ↔ 1`.
    #[must_use]
    pub fn other(self) -> ClusterId {
        ClusterId(self.0 ^ 1)
    }

    /// Iterates over the first `n` cluster identifiers.
    pub fn first_n(n: u8) -> impl Iterator<Item = ClusterId> {
        (0..n).map(ClusterId)
    }
}

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

impl From<ClusterId> for usize {
    fn from(id: ClusterId) -> usize {
        id.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn other_is_an_involution() {
        assert_eq!(ClusterId::C0.other(), ClusterId::C1);
        assert_eq!(ClusterId::C1.other(), ClusterId::C0);
        assert_eq!(ClusterId::C0.other().other(), ClusterId::C0);
    }

    #[test]
    fn first_n_counts() {
        let ids: Vec<_> = ClusterId::first_n(3).collect();
        assert_eq!(ids, vec![ClusterId::new(0), ClusterId::new(1), ClusterId::new(2)]);
    }

    #[test]
    fn display_matches_figure_convention() {
        assert_eq!(ClusterId::C0.to_string(), "C0");
        assert_eq!(ClusterId::C1.to_string(), "C1");
    }
}
