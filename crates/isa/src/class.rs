//! Instruction classes — the columns of Table 1.

use std::fmt;


use crate::reg::RegBank;

/// The instruction classes over which Table 1 of the paper expresses
/// per-cycle issue limits and functional-unit latencies.
///
/// Loads and stores are distinct classes here (they have different
/// destination behaviour) but share the combined "loads & stores" issue
/// limit of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstrClass {
    /// Integer multiply (6-cycle latency, fully pipelined).
    IntMul,
    /// All other integer operations (1-cycle latency).
    IntAlu,
    /// Floating-point divide and square root (8/16-cycle latency,
    /// **not** pipelined).
    FpDiv,
    /// All other floating-point operations (3-cycle latency).
    FpOther,
    /// Loads (1-cycle latency plus a single load-delay slot).
    Load,
    /// Stores (no register result).
    Store,
    /// Control flow (1-cycle latency).
    ControlFlow,
}

impl InstrClass {
    /// Every class, in Table 1 column order.
    pub const ALL: [InstrClass; 7] = [
        InstrClass::IntMul,
        InstrClass::IntAlu,
        InstrClass::FpDiv,
        InstrClass::FpOther,
        InstrClass::Load,
        InstrClass::Store,
        InstrClass::ControlFlow,
    ];

    /// Whether the class executes on integer datapath resources.
    #[must_use]
    pub fn is_integer(self) -> bool {
        matches!(self, InstrClass::IntMul | InstrClass::IntAlu)
    }

    /// Whether the class executes on floating-point datapath resources.
    #[must_use]
    pub fn is_fp(self) -> bool {
        matches!(self, InstrClass::FpDiv | InstrClass::FpOther)
    }

    /// Whether the class accesses the data cache.
    #[must_use]
    pub fn is_mem(self) -> bool {
        matches!(self, InstrClass::Load | InstrClass::Store)
    }

    /// The issue-slot bank a *slave copy* forwarding an operand of this
    /// bank occupies: the paper notes a slave copy "must read the value
    /// ... from the integer register file, and to do so requires access to
    /// a read port", i.e. forwarding an integer operand consumes an
    /// integer issue slot (and an fp operand an fp slot).
    #[must_use]
    pub fn for_operand_bank(bank: RegBank) -> InstrClass {
        match bank {
            RegBank::Int => InstrClass::IntAlu,
            RegBank::Fp => InstrClass::FpOther,
        }
    }
}

impl fmt::Display for InstrClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            InstrClass::IntMul => "int-mul",
            InstrClass::IntAlu => "int-alu",
            InstrClass::FpDiv => "fp-div",
            InstrClass::FpOther => "fp-other",
            InstrClass::Load => "load",
            InstrClass::Store => "store",
            InstrClass::ControlFlow => "control-flow",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_are_disjoint() {
        for class in InstrClass::ALL {
            let kinds =
                [class.is_integer(), class.is_fp(), class.is_mem(), class == InstrClass::ControlFlow];
            assert_eq!(kinds.iter().filter(|&&k| k).count(), 1, "{class} in several groups");
        }
    }

    #[test]
    fn operand_bank_slot_mapping() {
        assert_eq!(InstrClass::for_operand_bank(RegBank::Int), InstrClass::IntAlu);
        assert_eq!(InstrClass::for_operand_bank(RegBank::Fp), InstrClass::FpOther);
    }
}
