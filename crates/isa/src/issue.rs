//! Issue rules and functional-unit latencies (Table 1 of the paper).
//!
//! Table 1 gives, for the single-cluster (8-way) processor and for each
//! cluster of the dual-cluster processor (4-way per cluster):
//!
//! | | all | int (all) | fp (all) | loads & stores | control flow |
//! |---|---|---|---|---|---|
//! | single | 8 | 8 | 4 | 4 | 4 |
//! | dual, per cluster | 4 | 4 | 2 | 2 | 2 |
//!
//! and the functional-unit latencies: integer multiply 6, integer other 1,
//! fp divide 8/16 (not pipelined), fp other 3, loads & stores 1 (with a
//! single load-delay slot), control flow 1. All units except the divider
//! are fully pipelined.


use crate::class::InstrClass;
use crate::op::Opcode;

/// Per-cycle instruction-issue limits for one cluster (or for the whole
/// single-cluster processor), as in the first two rows of Table 1.
///
/// # Example
///
/// ```
/// use mcl_isa::{IssueRules, InstrClass};
///
/// let single = IssueRules::single_cluster_8way();
/// assert_eq!(single.total, 8);
/// assert_eq!(single.class_limit(InstrClass::FpDiv), 4);
///
/// let dual = IssueRules::dual_cluster_4way();
/// assert_eq!(dual.total, 4);
/// assert_eq!(dual.class_limit(InstrClass::Load), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssueRules {
    /// Maximum instructions issued per cycle, all classes combined.
    pub total: u32,
    /// Maximum integer instructions (multiply + other) per cycle.
    pub int_all: u32,
    /// Maximum floating-point instructions (divide + other) per cycle.
    pub fp_all: u32,
    /// Maximum loads-plus-stores per cycle.
    pub mem: u32,
    /// Maximum control-flow instructions per cycle.
    pub control: u32,
}

impl IssueRules {
    /// The single-cluster, eight-way issue processor of Table 1 row 1.
    #[must_use]
    pub fn single_cluster_8way() -> IssueRules {
        IssueRules { total: 8, int_all: 8, fp_all: 4, mem: 4, control: 4 }
    }

    /// One cluster of the dual-cluster processor of Table 1 row 2.
    #[must_use]
    pub fn dual_cluster_4way() -> IssueRules {
        IssueRules { total: 4, int_all: 4, fp_all: 2, mem: 2, control: 2 }
    }

    /// The four-way single-cluster processor (the paper also evaluated
    /// four-way issue; limits are the eight-way limits halved).
    #[must_use]
    pub fn single_cluster_4way() -> IssueRules {
        IssueRules { total: 4, int_all: 4, fp_all: 2, mem: 2, control: 2 }
    }

    /// One cluster of a dual-cluster processor built from the four-way
    /// configuration (two-way issue per cluster).
    #[must_use]
    pub fn dual_cluster_2way() -> IssueRules {
        IssueRules { total: 2, int_all: 2, fp_all: 1, mem: 1, control: 1 }
    }

    /// The per-cycle limit that applies to `class` (the class's column
    /// group in Table 1), not counting the overall `total` limit.
    #[must_use]
    pub fn class_limit(&self, class: InstrClass) -> u32 {
        match class {
            InstrClass::IntMul | InstrClass::IntAlu => self.int_all,
            InstrClass::FpDiv | InstrClass::FpOther => self.fp_all,
            InstrClass::Load | InstrClass::Store => self.mem,
            InstrClass::ControlFlow => self.control,
        }
    }

    /// Starts a fresh per-cycle issue budget governed by these rules.
    #[must_use]
    pub fn budget(&self) -> IssueBudget {
        IssueBudget { rules: *self, total: 0, int_all: 0, fp_all: 0, mem: 0, control: 0 }
    }
}

/// Tracks how many issue slots of each kind have been consumed this cycle.
///
/// Obtain one per cluster per cycle from [`IssueRules::budget`], then call
/// [`IssueBudget::try_take`] for each candidate instruction in age order.
///
/// # Example
///
/// ```
/// use mcl_isa::{IssueRules, InstrClass};
///
/// let rules = IssueRules::dual_cluster_4way();
/// let mut budget = rules.budget();
/// assert!(budget.try_take(InstrClass::FpOther));
/// assert!(budget.try_take(InstrClass::FpDiv));
/// // fp_all = 2 in the dual configuration, so a third fp op must wait.
/// assert!(!budget.try_take(InstrClass::FpOther));
/// assert!(budget.try_take(InstrClass::IntAlu));
/// ```
#[derive(Debug, Clone)]
pub struct IssueBudget {
    rules: IssueRules,
    total: u32,
    int_all: u32,
    fp_all: u32,
    mem: u32,
    control: u32,
}

impl IssueBudget {
    /// Whether an instruction of `class` could issue without exceeding any
    /// limit, without consuming the slot.
    #[must_use]
    pub fn can_take(&self, class: InstrClass) -> bool {
        if self.total >= self.rules.total {
            return false;
        }
        let (used, limit) = self.class_usage(class);
        used < limit
    }

    /// Consumes an issue slot for `class`; returns whether the slot was
    /// available.
    pub fn try_take(&mut self, class: InstrClass) -> bool {
        if !self.can_take(class) {
            return false;
        }
        self.total += 1;
        match class {
            InstrClass::IntMul | InstrClass::IntAlu => self.int_all += 1,
            InstrClass::FpDiv | InstrClass::FpOther => self.fp_all += 1,
            InstrClass::Load | InstrClass::Store => self.mem += 1,
            InstrClass::ControlFlow => self.control += 1,
        }
        true
    }

    /// Whether the all-classes total has been exhausted.
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        self.total >= self.rules.total
    }

    /// Instructions issued so far this cycle.
    #[must_use]
    pub fn taken(&self) -> u32 {
        self.total
    }

    fn class_usage(&self, class: InstrClass) -> (u32, u32) {
        match class {
            InstrClass::IntMul | InstrClass::IntAlu => (self.int_all, self.rules.int_all),
            InstrClass::FpDiv | InstrClass::FpOther => (self.fp_all, self.rules.fp_all),
            InstrClass::Load | InstrClass::Store => (self.mem, self.rules.mem),
            InstrClass::ControlFlow => (self.control, self.rules.control),
        }
    }
}

/// Functional-unit latencies (Table 1 row 3), in cycles.
///
/// All units are fully pipelined except the floating-point divider, whose
/// occupancy the simulator models separately. The load latency given here
/// is the cache-hit latency *including* the single load-delay slot, i.e.
/// a dependent instruction can issue two cycles after the load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Latencies {
    /// Integer multiply (Table 1: 6).
    pub int_mul: u32,
    /// Other integer operations (Table 1: 1).
    pub int_alu: u32,
    /// Other floating-point operations (Table 1: 3).
    pub fp_other: u32,
    /// Load-to-use latency on a cache hit: 1-cycle unit latency plus the
    /// single load-delay slot of Table 1.
    pub load_hit: u32,
    /// Store occupancy (no register result is produced).
    pub store: u32,
    /// Control flow (Table 1: 1).
    pub control: u32,
}

impl Latencies {
    /// The Table 1 latencies.
    #[must_use]
    pub fn table1() -> Latencies {
        Latencies { int_mul: 6, int_alu: 1, fp_other: 3, load_hit: 2, store: 1, control: 1 }
    }

    /// The execution latency of `op`, excluding memory-system time beyond
    /// a cache hit (the simulator adds miss time from the memory model).
    ///
    /// Divide-class latencies come from the opcode's [`crate::DivWidth`].
    #[must_use]
    pub fn of(&self, op: Opcode) -> u32 {
        match op.class() {
            InstrClass::IntMul => self.int_mul,
            InstrClass::IntAlu => self.int_alu,
            InstrClass::FpDiv => op.div_width().expect("divide-class opcode has a width").latency(),
            InstrClass::FpOther => self.fp_other,
            InstrClass::Load => self.load_hit,
            InstrClass::Store => self.store,
            InstrClass::ControlFlow => self.control,
        }
    }
}

impl Default for Latencies {
    fn default() -> Latencies {
        Latencies::table1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_single_cluster_limits() {
        let r = IssueRules::single_cluster_8way();
        assert_eq!((r.total, r.int_all, r.fp_all, r.mem, r.control), (8, 8, 4, 4, 4));
    }

    #[test]
    fn table1_dual_cluster_limits_are_halved() {
        let single = IssueRules::single_cluster_8way();
        let dual = IssueRules::dual_cluster_4way();
        assert_eq!(dual.total * 2, single.total);
        assert_eq!(dual.int_all * 2, single.int_all);
        assert_eq!(dual.fp_all * 2, single.fp_all);
        assert_eq!(dual.mem * 2, single.mem);
        assert_eq!(dual.control * 2, single.control);
    }

    #[test]
    fn budget_enforces_total_limit() {
        let rules = IssueRules::single_cluster_8way();
        let mut b = rules.budget();
        for _ in 0..8 {
            assert!(b.try_take(InstrClass::IntAlu));
        }
        assert!(b.is_exhausted());
        assert!(!b.try_take(InstrClass::IntAlu));
        assert!(!b.try_take(InstrClass::ControlFlow));
        assert_eq!(b.taken(), 8);
    }

    #[test]
    fn budget_enforces_class_limits_independently() {
        let rules = IssueRules::single_cluster_8way();
        let mut b = rules.budget();
        // 4 memory ops exhaust the mem group but not the total.
        for _ in 0..4 {
            assert!(b.try_take(InstrClass::Load));
        }
        assert!(!b.try_take(InstrClass::Store));
        assert!(b.try_take(InstrClass::IntAlu));
    }

    #[test]
    fn loads_and_stores_share_a_limit() {
        let rules = IssueRules::dual_cluster_4way();
        let mut b = rules.budget();
        assert!(b.try_take(InstrClass::Load));
        assert!(b.try_take(InstrClass::Store));
        assert!(!b.try_take(InstrClass::Load));
    }

    #[test]
    fn mul_and_alu_share_the_integer_limit() {
        let rules = IssueRules::dual_cluster_4way();
        let mut b = rules.budget();
        assert!(b.try_take(InstrClass::IntMul));
        assert!(b.try_take(InstrClass::IntAlu));
        assert!(b.try_take(InstrClass::IntMul));
        assert!(b.try_take(InstrClass::IntAlu));
        assert!(!b.try_take(InstrClass::IntMul));
    }

    #[test]
    fn table1_latencies() {
        let lat = Latencies::table1();
        assert_eq!(lat.of(Opcode::Mulq), 6);
        assert_eq!(lat.of(Opcode::Addq), 1);
        assert_eq!(lat.of(Opcode::Divs), 8);
        assert_eq!(lat.of(Opcode::Divt), 16);
        assert_eq!(lat.of(Opcode::Sqrtt), 16);
        assert_eq!(lat.of(Opcode::Addt), 3);
        assert_eq!(lat.of(Opcode::Ldq), 2, "hit latency includes the load-delay slot");
        assert_eq!(lat.of(Opcode::Br), 1);
    }
}
