//! The opcode set.
//!
//! The paper's simulator modelled "a RISC, superscalar processor whose
//! instruction set is based on the DEC Alpha instruction set". This module
//! defines the Alpha-flavoured subset used by the reproduction. It is
//! large enough to express the synthetic SPEC92-shaped workloads with real
//! data and control dependences, yet small enough to keep the
//! trace-generation virtual machine simple.
//!
//! Every opcode knows its [`InstrClass`] (the Table 1 column it issues
//! under) and the register banks of its operands; the functional
//! *semantics* are implemented by the VM in `mcl-trace`.

use std::fmt;


use crate::class::InstrClass;
use crate::reg::RegBank;

/// Operand width of a floating-point divide or square root.
///
/// Table 1: the divider "is not pipelined and has an eight-cycle latency
/// for 32-bit divides, and a 16-cycle latency for 64-bit divides".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DivWidth {
    /// 32-bit (single-precision): 8-cycle divider occupancy.
    W32,
    /// 64-bit (double-precision): 16-cycle divider occupancy.
    W64,
}

impl DivWidth {
    /// The divider latency in cycles for this width (Table 1).
    #[must_use]
    pub fn latency(self) -> u32 {
        match self {
            DivWidth::W32 => 8,
            DivWidth::W64 => 16,
        }
    }
}

/// An operation of the simulated instruction set.
///
/// Grouped by Table 1 instruction class:
///
/// - integer multiply: [`Opcode::Mulq`]
/// - integer other: arithmetic, logic, shifts, compares, immediates
/// - floating-point divide: [`Opcode::Divs`], [`Opcode::Divt`],
///   [`Opcode::Sqrts`], [`Opcode::Sqrtt`] (square root shares the
///   unpipelined divider)
/// - floating-point other: add/sub/mul/compares/converts
/// - loads & stores: [`Opcode::Ldq`], [`Opcode::Stq`], [`Opcode::Ldt`],
///   [`Opcode::Stt`]
/// - control flow: branches, jumps, call/return
///
/// # Example
///
/// ```
/// use mcl_isa::{Opcode, InstrClass, RegBank};
///
/// assert_eq!(Opcode::Addq.class(), InstrClass::IntAlu);
/// assert_eq!(Opcode::Divt.class(), InstrClass::FpDiv);
/// assert_eq!(Opcode::Ldt.dest_bank(), Some(RegBank::Fp));
/// assert!(Opcode::Bne.is_conditional_branch());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    // --- integer multiply ---
    /// Integer multiply: `dest = src0 * src1`.
    Mulq,

    // --- integer other ---
    /// Integer add: `dest = src0 + src1 (+ imm)`.
    Addq,
    /// Integer subtract: `dest = src0 - src1 (- imm)`.
    Subq,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive or.
    Xor,
    /// Shift left logical by `src1 (+ imm)` bits.
    Sll,
    /// Shift right logical.
    Srl,
    /// Shift right arithmetic.
    Sra,
    /// Signed compare equal: `dest = (src0 == src1) as u64`.
    Cmpeq,
    /// Signed compare less-than.
    Cmplt,
    /// Signed compare less-or-equal.
    Cmple,
    /// Unsigned compare less-than.
    Cmpult,
    /// Load address / load immediate: `dest = src0 + imm`
    /// (with `src0 = r31` this is a plain load-immediate).
    Lda,

    // --- floating-point divide class (unpipelined divider) ---
    /// Single-precision divide.
    Divs,
    /// Double-precision divide.
    Divt,
    /// Single-precision square root (occupies the divider).
    Sqrts,
    /// Double-precision square root (occupies the divider).
    Sqrtt,

    // --- floating-point other ---
    /// Floating-point add.
    Addt,
    /// Floating-point subtract.
    Subt,
    /// Floating-point multiply.
    Mult,
    /// Floating-point compare equal, producing an *integer* predicate.
    Cmpteq,
    /// Floating-point compare less-than, producing an *integer* predicate.
    Cmptlt,
    /// Convert integer (in an integer register) to floating point.
    Cvtqt,
    /// Convert floating point to integer (truncating).
    Cvttq,
    /// Floating-point register move / copy.
    Fmov,

    // --- loads & stores ---
    /// Load 64-bit integer: `dest = mem[src0 + imm]`.
    Ldq,
    /// Store 64-bit integer: `mem[src0 + imm] = src1`.
    Stq,
    /// Load floating point: `dest(fp) = mem[src0 + imm]`.
    Ldt,
    /// Store floating point: `mem[src0 + imm] = src1(fp)`.
    Stt,

    // --- control flow ---
    /// Unconditional branch.
    Br,
    /// Branch if `src0 == 0`.
    Beq,
    /// Branch if `src0 != 0`.
    Bne,
    /// Branch if `src0 < 0` (signed).
    Blt,
    /// Branch if `src0 >= 0` (signed).
    Bge,
    /// Indirect jump through `src0` (assumed 100 % predictable, like all
    /// non-conditional control flow in the paper's model).
    Jmp,
    /// Subroutine call (writes the return address to `dest`).
    Jsr,
    /// Subroutine return (jump through `src0`).
    Ret,
}

impl Opcode {
    /// The Table 1 instruction class this opcode issues under.
    #[must_use]
    pub fn class(self) -> InstrClass {
        use Opcode::*;
        match self {
            Mulq => InstrClass::IntMul,
            Addq | Subq | And | Or | Xor | Sll | Srl | Sra | Cmpeq | Cmplt | Cmple | Cmpult
            | Lda => InstrClass::IntAlu,
            Divs | Divt | Sqrts | Sqrtt => InstrClass::FpDiv,
            Addt | Subt | Mult | Cmpteq | Cmptlt | Cvtqt | Cvttq | Fmov => InstrClass::FpOther,
            Ldq | Ldt => InstrClass::Load,
            Stq | Stt => InstrClass::Store,
            Br | Beq | Bne | Blt | Bge | Jmp | Jsr | Ret => InstrClass::ControlFlow,
        }
    }

    /// The register bank of the destination, if the opcode writes one.
    ///
    /// Stores, branches and jumps produce no register result. Note that
    /// floating-point compares and [`Opcode::Cvttq`] write *integer*
    /// predicates/results.
    #[must_use]
    pub fn dest_bank(self) -> Option<RegBank> {
        use Opcode::*;
        match self {
            Mulq | Addq | Subq | And | Or | Xor | Sll | Srl | Sra | Cmpeq | Cmplt | Cmple
            | Cmpult | Lda | Ldq | Cmpteq | Cmptlt | Cvttq | Jsr => Some(RegBank::Int),
            Divs | Divt | Sqrts | Sqrtt | Addt | Subt | Mult | Cvtqt | Fmov | Ldt => {
                Some(RegBank::Fp)
            }
            Stq | Stt | Br | Beq | Bne | Blt | Bge | Jmp | Ret => None,
        }
    }

    /// The register banks of the (up to two) register sources.
    ///
    /// `None` entries mean the slot is unused. The address operand of a
    /// load/store is always source 0 (integer); the stored value of a
    /// store is source 1.
    #[must_use]
    pub fn src_banks(self) -> [Option<RegBank>; 2] {
        use Opcode::*;
        let int = Some(RegBank::Int);
        let fp = Some(RegBank::Fp);
        match self {
            Mulq | Addq | Subq | And | Or | Xor | Sll | Srl | Sra | Cmpeq | Cmplt | Cmple
            | Cmpult => [int, int],
            Lda => [int, None],
            Divs | Divt | Addt | Subt | Mult | Cmpteq | Cmptlt => [fp, fp],
            Sqrts | Sqrtt | Fmov | Cvttq => [fp, None],
            Cvtqt => [int, None],
            Ldq | Ldt => [int, None],
            Stq => [int, int],
            Stt => [int, fp],
            Br => [None, None],
            Beq | Bne | Blt | Bge => [int, None],
            Jmp | Ret => [int, None],
            Jsr => [None, None],
        }
    }

    /// Whether this is a conditional branch — the only control flow the
    /// branch predictor must predict (the paper assumes "all other control
    /// flow instructions ... 100% predictable").
    #[must_use]
    pub fn is_conditional_branch(self) -> bool {
        matches!(self, Opcode::Beq | Opcode::Bne | Opcode::Blt | Opcode::Bge)
    }

    /// Whether this opcode transfers control (ends a basic block).
    #[must_use]
    pub fn is_control_flow(self) -> bool {
        self.class() == InstrClass::ControlFlow
    }

    /// Whether this opcode reads or writes memory.
    #[must_use]
    pub fn is_mem(self) -> bool {
        matches!(self.class(), InstrClass::Load | InstrClass::Store)
    }

    /// For divide-class opcodes, the operand width (which selects the
    /// divider latency); `None` otherwise.
    #[must_use]
    pub fn div_width(self) -> Option<DivWidth> {
        match self {
            Opcode::Divs | Opcode::Sqrts => Some(DivWidth::W32),
            Opcode::Divt | Opcode::Sqrtt => Some(DivWidth::W64),
            _ => None,
        }
    }

    /// The assembly mnemonic.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        use Opcode::*;
        match self {
            Mulq => "mulq",
            Addq => "addq",
            Subq => "subq",
            And => "and",
            Or => "or",
            Xor => "xor",
            Sll => "sll",
            Srl => "srl",
            Sra => "sra",
            Cmpeq => "cmpeq",
            Cmplt => "cmplt",
            Cmple => "cmple",
            Cmpult => "cmpult",
            Lda => "lda",
            Divs => "divs",
            Divt => "divt",
            Sqrts => "sqrts",
            Sqrtt => "sqrtt",
            Addt => "addt",
            Subt => "subt",
            Mult => "mult",
            Cmpteq => "cmpteq",
            Cmptlt => "cmptlt",
            Cvtqt => "cvtqt",
            Cvttq => "cvttq",
            Fmov => "fmov",
            Ldq => "ldq",
            Stq => "stq",
            Ldt => "ldt",
            Stt => "stt",
            Br => "br",
            Beq => "beq",
            Bne => "bne",
            Blt => "blt",
            Bge => "bge",
            Jmp => "jmp",
            Jsr => "jsr",
            Ret => "ret",
        }
    }

    /// Every opcode, for exhaustive tests and fuzzing.
    #[must_use]
    pub fn all() -> &'static [Opcode] {
        use Opcode::*;
        &[
            Mulq, Addq, Subq, And, Or, Xor, Sll, Srl, Sra, Cmpeq, Cmplt, Cmple, Cmpult, Lda,
            Divs, Divt, Sqrts, Sqrtt, Addt, Subt, Mult, Cmpteq, Cmptlt, Cvtqt, Cvttq, Fmov, Ldq,
            Stq, Ldt, Stt, Br, Beq, Bne, Blt, Bge, Jmp, Jsr, Ret,
        ]
    }

    /// A compact byte encoding of the opcode (its declaration index),
    /// used by packed trace records. Inverse of [`Opcode::from_code`].
    #[must_use]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Decodes an opcode byte produced by [`Opcode::code`]; `None` for
    /// out-of-range bytes.
    #[must_use]
    pub fn from_code(code: u8) -> Option<Opcode> {
        Opcode::all().get(usize::from(code)).copied()
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_opcode_has_a_consistent_class() {
        for &op in Opcode::all() {
            // Memory opcodes are exactly the Load/Store classes.
            assert_eq!(op.is_mem(), matches!(op.class(), InstrClass::Load | InstrClass::Store));
            // Control-flow opcodes never write memory.
            if op.is_control_flow() {
                assert!(!op.is_mem());
            }
        }
    }

    #[test]
    fn divide_class_and_width_agree() {
        for &op in Opcode::all() {
            assert_eq!(op.div_width().is_some(), op.class() == InstrClass::FpDiv);
        }
        assert_eq!(Opcode::Divs.div_width().unwrap().latency(), 8);
        assert_eq!(Opcode::Divt.div_width().unwrap().latency(), 16);
    }

    #[test]
    fn conditional_branches_are_control_flow() {
        for &op in Opcode::all() {
            if op.is_conditional_branch() {
                assert!(op.is_control_flow());
            }
        }
        assert!(!Opcode::Br.is_conditional_branch());
        assert!(!Opcode::Jmp.is_conditional_branch());
    }

    #[test]
    fn stores_have_no_destination() {
        assert_eq!(Opcode::Stq.dest_bank(), None);
        assert_eq!(Opcode::Stt.dest_bank(), None);
        assert_eq!(Opcode::Ldq.dest_bank(), Some(RegBank::Int));
        assert_eq!(Opcode::Ldt.dest_bank(), Some(RegBank::Fp));
    }

    #[test]
    fn fp_compares_produce_integer_predicates() {
        assert_eq!(Opcode::Cmpteq.dest_bank(), Some(RegBank::Int));
        assert_eq!(Opcode::Cmptlt.dest_bank(), Some(RegBank::Int));
        assert_eq!(Opcode::Cmpteq.src_banks(), [Some(RegBank::Fp), Some(RegBank::Fp)]);
    }

    #[test]
    fn byte_codes_round_trip() {
        for (i, &op) in Opcode::all().iter().enumerate() {
            assert_eq!(usize::from(op.code()), i);
            assert_eq!(Opcode::from_code(op.code()), Some(op));
        }
        assert_eq!(Opcode::from_code(Opcode::all().len() as u8), None);
        assert_eq!(Opcode::from_code(u8::MAX), None);
    }

    #[test]
    fn mnemonics_are_unique() {
        let mut names: Vec<_> = Opcode::all().iter().map(|op| op.mnemonic()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }
}
