//! Architectural-register-to-cluster assignment.
//!
//! In the multicluster architecture "each cluster is assigned a subset of
//! the architectural registers" (Section 1). A *local* register is
//! assigned to exactly one cluster; a *global* register is assigned to
//! every cluster, with one physical register per cluster maintaining its
//! value. The assignment drives instruction distribution: an instruction
//! executes on the cluster(s) owning the registers it names.
//!
//! The paper's evaluation uses a static even/odd assignment ("the
//! even-numbered architectural registers were assigned to cluster 0 and
//! the odd-numbered registers to cluster 1", Section 4) with the stack
//! and global pointers designated global.

use std::fmt;


use crate::cluster::ClusterId;
use crate::reg::ArchReg;

/// A small set of clusters, e.g. the clusters an instruction is
/// distributed to.
///
/// # Example
///
/// ```
/// use mcl_isa::{ClusterSet, ClusterId};
///
/// let mut set = ClusterSet::empty();
/// set.insert(ClusterId::C0);
/// assert_eq!(set.single(), Some(ClusterId::C0));
/// set.insert(ClusterId::C1);
/// assert_eq!(set.len(), 2);
/// assert_eq!(set.single(), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ClusterSet(u8);

impl ClusterSet {
    /// The empty set.
    #[must_use]
    pub fn empty() -> ClusterSet {
        ClusterSet(0)
    }

    /// The set containing only `cluster`.
    #[must_use]
    pub fn only(cluster: ClusterId) -> ClusterSet {
        let mut set = ClusterSet::empty();
        set.insert(cluster);
        set
    }

    /// The set containing the first `n` clusters.
    #[must_use]
    pub fn first_n(n: u8) -> ClusterSet {
        assert!(n <= 8, "at most 8 clusters supported");
        ClusterSet(if n == 8 { u8::MAX } else { (1u8 << n) - 1 })
    }

    /// Adds `cluster` to the set.
    pub fn insert(&mut self, cluster: ClusterId) {
        assert!(cluster.index() < 8, "at most 8 clusters supported");
        self.0 |= 1 << cluster.index();
    }

    /// Whether `cluster` is in the set.
    #[must_use]
    pub fn contains(self, cluster: ClusterId) -> bool {
        cluster.index() < 8 && self.0 & (1 << cluster.index()) != 0
    }

    /// The number of clusters in the set.
    #[must_use]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// If the set holds exactly one cluster, that cluster.
    #[must_use]
    pub fn single(self) -> Option<ClusterId> {
        if self.0.count_ones() == 1 {
            Some(ClusterId::new(self.0.trailing_zeros() as u8))
        } else {
            None
        }
    }

    /// The union of two sets.
    #[must_use]
    pub fn union(self, other: ClusterSet) -> ClusterSet {
        ClusterSet(self.0 | other.0)
    }

    /// Iterates over the clusters in the set, in index order.
    pub fn iter(self) -> impl Iterator<Item = ClusterId> {
        (0..8).filter(move |&i| self.0 & (1 << i) != 0).map(ClusterId::new)
    }
}

impl fmt::Display for ClusterSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, c) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<ClusterId> for ClusterSet {
    fn from_iter<I: IntoIterator<Item = ClusterId>>(iter: I) -> ClusterSet {
        let mut set = ClusterSet::empty();
        for c in iter {
            set.insert(c);
        }
        set
    }
}

/// The assignment of one architectural register: local to a cluster, or
/// global (assigned to every cluster).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegAssignment {
    /// Assigned to exactly one cluster; one physical register maintains
    /// its value.
    Local(ClusterId),
    /// Assigned to every cluster; each cluster maintains a copy in its own
    /// physical register file (writes update all copies).
    Global,
}

impl RegAssignment {
    /// Whether the register is global.
    #[must_use]
    pub fn is_global(self) -> bool {
        matches!(self, RegAssignment::Global)
    }

    /// The owning cluster of a local register.
    #[must_use]
    pub fn local_cluster(self) -> Option<ClusterId> {
        match self {
            RegAssignment::Local(c) => Some(c),
            RegAssignment::Global => None,
        }
    }
}

/// The full architectural-register-to-cluster assignment of a processor
/// configuration.
///
/// The hardwired zero registers (`r31`/`f31`) are always treated as
/// global: their constant value is available in every cluster for free,
/// so they never force dual distribution and never consume a physical
/// register.
///
/// # Example
///
/// ```
/// use mcl_isa::{ArchReg, ClusterId, assign::RegisterAssignment};
///
/// let a = RegisterAssignment::even_odd_with_default_globals(2);
/// assert_eq!(a.assignment_of(ArchReg::int(4)).local_cluster(), Some(ClusterId::C0));
/// assert_eq!(a.assignment_of(ArchReg::int(5)).local_cluster(), Some(ClusterId::C1));
/// assert!(a.assignment_of(ArchReg::SP).is_global());
/// assert!(a.assignment_of(ArchReg::ZERO).is_global());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterAssignment {
    clusters: u8,
    table: Vec<RegAssignment>,
}

impl RegisterAssignment {
    /// Every register local to the sole cluster of a single-cluster
    /// (non-partitioned) processor.
    #[must_use]
    pub fn single_cluster() -> RegisterAssignment {
        let table = ArchReg::all()
            .map(|reg| {
                if reg.is_zero() {
                    RegAssignment::Global
                } else {
                    RegAssignment::Local(ClusterId::C0)
                }
            })
            .collect();
        RegisterAssignment { clusters: 1, table }
    }

    /// The paper's evaluated assignment: even-numbered registers to
    /// cluster 0, odd-numbered to cluster 1 (generalised to `clusters`
    /// clusters by `index % clusters`), with the stack pointer (`r30`) and
    /// global pointer (`r29`) designated global.
    ///
    /// # Panics
    ///
    /// Panics if `clusters` is zero or greater than 8.
    #[must_use]
    pub fn even_odd_with_default_globals(clusters: u8) -> RegisterAssignment {
        RegisterAssignment::even_odd_with_globals(clusters, &[ArchReg::SP, ArchReg::GP])
    }

    /// Like [`RegisterAssignment::even_odd_with_default_globals`] but with
    /// an explicit set of global registers.
    ///
    /// # Panics
    ///
    /// Panics if `clusters` is zero or greater than 8.
    #[must_use]
    pub fn even_odd_with_globals(clusters: u8, globals: &[ArchReg]) -> RegisterAssignment {
        assert!((1..=8).contains(&clusters), "cluster count must be in 1..=8");
        let table = ArchReg::all()
            .map(|reg| {
                if reg.is_zero() || globals.contains(&reg) {
                    RegAssignment::Global
                } else {
                    RegAssignment::Local(ClusterId::new(reg.index() % clusters))
                }
            })
            .collect();
        RegisterAssignment { clusters, table }
    }

    /// Builds an assignment from an explicit per-register table.
    ///
    /// The zero registers are forced global regardless of the provided
    /// function's answer.
    ///
    /// # Panics
    ///
    /// Panics if `clusters` is zero or greater than 8, or if the function
    /// maps a register to a cluster outside `0..clusters`.
    #[must_use]
    pub fn from_fn(
        clusters: u8,
        mut assignment: impl FnMut(ArchReg) -> RegAssignment,
    ) -> RegisterAssignment {
        assert!((1..=8).contains(&clusters), "cluster count must be in 1..=8");
        let table = ArchReg::all()
            .map(|reg| {
                if reg.is_zero() {
                    return RegAssignment::Global;
                }
                let a = assignment(reg);
                if let RegAssignment::Local(c) = a {
                    assert!(
                        c.index() < usize::from(clusters),
                        "register {reg} assigned to nonexistent {c}"
                    );
                }
                a
            })
            .collect();
        RegisterAssignment { clusters, table }
    }

    /// The number of clusters this assignment targets.
    #[must_use]
    pub fn clusters(&self) -> u8 {
        self.clusters
    }

    /// The assignment of `reg`.
    #[must_use]
    pub fn assignment_of(&self, reg: ArchReg) -> RegAssignment {
        self.table[reg.dense_index()]
    }

    /// The set of clusters that hold a copy of `reg`.
    #[must_use]
    pub fn clusters_of(&self, reg: ArchReg) -> ClusterSet {
        match self.assignment_of(reg) {
            RegAssignment::Local(c) => ClusterSet::only(c),
            RegAssignment::Global => ClusterSet::first_n(self.clusters),
        }
    }

    /// The local (non-global, non-zero) registers assigned to `cluster`,
    /// in index order. These are the colours available to the register
    /// allocator for live ranges partitioned onto `cluster`.
    pub fn local_registers_of(&self, cluster: ClusterId) -> impl Iterator<Item = ArchReg> + '_ {
        ArchReg::all()
            .filter(move |&reg| self.assignment_of(reg) == RegAssignment::Local(cluster))
    }

    /// The global registers (excluding the hardwired zeros), in index
    /// order.
    pub fn global_registers(&self) -> impl Iterator<Item = ArchReg> + '_ {
        ArchReg::all().filter(|&reg| !reg.is_zero() && self.assignment_of(reg).is_global())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::RegBank;

    #[test]
    fn single_cluster_everything_is_cluster0() {
        let a = RegisterAssignment::single_cluster();
        assert_eq!(a.clusters(), 1);
        for reg in ArchReg::all() {
            if reg.is_zero() {
                assert!(a.assignment_of(reg).is_global());
            } else {
                assert_eq!(a.assignment_of(reg).local_cluster(), Some(ClusterId::C0));
            }
        }
    }

    #[test]
    fn even_odd_splits_by_parity() {
        let a = RegisterAssignment::even_odd_with_default_globals(2);
        for reg in ArchReg::all() {
            if reg.is_zero() || reg == ArchReg::SP || reg == ArchReg::GP {
                assert!(a.assignment_of(reg).is_global(), "{reg} should be global");
            } else {
                let expect = ClusterId::new(reg.index() % 2);
                assert_eq!(a.assignment_of(reg).local_cluster(), Some(expect), "{reg}");
            }
        }
    }

    #[test]
    fn local_registers_partition_the_file() {
        let a = RegisterAssignment::even_odd_with_default_globals(2);
        let c0: Vec<_> = a.local_registers_of(ClusterId::C0).collect();
        let c1: Vec<_> = a.local_registers_of(ClusterId::C1).collect();
        let globals: Vec<_> = a.global_registers().collect();
        // 64 registers total, 2 hardwired zeros, SP and GP global.
        assert_eq!(c0.len() + c1.len() + globals.len(), 62);
        assert_eq!(globals, vec![ArchReg::GP, ArchReg::SP]);
        for reg in &c0 {
            assert!(!c1.contains(reg));
        }
    }

    #[test]
    fn clusters_of_global_register_is_all_clusters() {
        let a = RegisterAssignment::even_odd_with_default_globals(2);
        let set = a.clusters_of(ArchReg::SP);
        assert_eq!(set.len(), 2);
        assert!(set.contains(ClusterId::C0) && set.contains(ClusterId::C1));
    }

    #[test]
    fn from_fn_respects_custom_table_but_forces_zero_global() {
        let a = RegisterAssignment::from_fn(2, |reg| {
            if reg.bank() == RegBank::Fp {
                RegAssignment::Local(ClusterId::C1)
            } else {
                RegAssignment::Local(ClusterId::C0)
            }
        });
        assert_eq!(a.assignment_of(ArchReg::int(3)).local_cluster(), Some(ClusterId::C0));
        assert_eq!(a.assignment_of(ArchReg::fp(3)).local_cluster(), Some(ClusterId::C1));
        assert!(a.assignment_of(ArchReg::ZERO).is_global());
        assert!(a.assignment_of(ArchReg::FZERO).is_global());
    }

    #[test]
    #[should_panic(expected = "nonexistent")]
    fn from_fn_rejects_out_of_range_cluster() {
        let _ = RegisterAssignment::from_fn(2, |_| RegAssignment::Local(ClusterId::new(5)));
    }

    #[test]
    fn cluster_set_operations() {
        let set = ClusterSet::first_n(2);
        assert_eq!(set.len(), 2);
        assert!(!ClusterSet::empty().contains(ClusterId::C0));
        assert!(ClusterSet::only(ClusterId::C1).contains(ClusterId::C1));
        let union = ClusterSet::only(ClusterId::C0).union(ClusterSet::only(ClusterId::C1));
        assert_eq!(union, set);
        let collected: ClusterSet = [ClusterId::C0, ClusterId::C1].into_iter().collect();
        assert_eq!(collected, set);
    }
}
