//! Alpha-flavoured RISC instruction-set model for the multicluster
//! architecture reproduction.
//!
//! This crate is the lowest layer of the workspace. It defines the
//! vocabulary shared by every other crate:
//!
//! - [`reg`] — architectural registers ([`ArchReg`]) and register banks
//!   ([`RegBank`]), following the DEC Alpha conventions the paper assumes
//!   (32 integer + 32 floating-point registers, `r31`/`f31` hardwired to
//!   zero, `r30` the stack pointer, `r29` the global pointer).
//! - [`op`] — the opcode set ([`Opcode`]) with full functional semantics
//!   (used by the trace-generation virtual machine in `mcl-trace`).
//! - [`class`] — instruction classes ([`InstrClass`]) matching the columns
//!   of Table 1 of the paper.
//! - [`issue`] — per-cycle issue rules ([`issue::IssueRules`]) and
//!   functional-unit latencies ([`issue::Latencies`]) reproducing Table 1.
//! - [`assign`] — the architectural-register-to-cluster assignment
//!   ([`assign::RegisterAssignment`]), the basis of instruction
//!   distribution in the multicluster architecture (Section 2.1).
//! - [`cluster`] — the [`ClusterId`] newtype.
//!
//! # Example
//!
//! ```
//! use mcl_isa::{ArchReg, Opcode, InstrClass, assign::RegisterAssignment};
//!
//! // The evaluated configuration assigns even registers to cluster 0 and
//! // odd registers to cluster 1, with the stack and global pointers global.
//! let assign = RegisterAssignment::even_odd_with_default_globals(2);
//! assert!(assign.assignment_of(ArchReg::SP).is_global());
//! assert_eq!(Opcode::Mulq.class(), InstrClass::IntMul);
//! ```

pub mod assign;
pub mod class;
pub mod cluster;
pub mod issue;
pub mod op;
pub mod reg;

pub use assign::{ClusterSet, RegAssignment, RegisterAssignment};
pub use class::InstrClass;
pub use cluster::ClusterId;
pub use issue::{IssueRules, Latencies};
pub use op::{DivWidth, Opcode};
pub use reg::{ArchReg, RegBank};
