//! Deterministic pseudo-random generation for the test suites.
//!
//! The repository builds with no registry access, so the property tests
//! cannot use `proptest` or `rand`. [`Rng`] is a small splitmix64
//! generator with the handful of helpers the suites need; every test
//! fixes its seeds, so failures reproduce exactly.

/// A splitmix64 pseudo-random generator (Steele, Lea & Flood 2014).
///
/// Statistically strong enough for test-case generation, one `u64` of
/// state, and fully deterministic for a given seed.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15) }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        // Multiply-shift range reduction (Lemire); bias is negligible
        // for test-case generation.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// A uniform `usize` in `[lo, hi)`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + self.below((hi - lo) as u64) as usize
    }

    /// A uniform `i64` in `[lo, hi)`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi.wrapping_sub(lo) as u64) as i64
    }

    /// A fair coin flip.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A vector of `len` values drawn from `f`.
    pub fn vec<T>(&mut self, len: usize, mut f: impl FnMut(&mut Rng) -> T) -> Vec<T> {
        (0..len).map(|_| f(self)).collect()
    }

    /// A vector whose length is drawn from `[min_len, max_len)`.
    pub fn vec_in<T>(
        &mut self,
        min_len: usize,
        max_len: usize,
        f: impl FnMut(&mut Rng) -> T,
    ) -> Vec<T> {
        let len = self.range(min_len, max_len);
        self.vec(len, f)
    }

    /// One element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.range(0, items.len())]
    }
}

/// Runs `body` once per seed in `0..cases`, labelling panics with the
/// failing seed so a failure reproduces directly.
pub fn check_cases(cases: u64, body: impl Fn(&mut Rng)) {
    for seed in 0..cases {
        let mut rng = Rng::new(seed);
        body(&mut rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = Rng::new(7);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn range_covers_both_ends_eventually() {
        let mut rng = Rng::new(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.range(0, 4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
