//! Microarchitectural timing checks: Table 1 latencies and issue limits
//! as observed end to end through the simulator.

use mcl_core::{EventKind, Processor, ProcessorConfig};
use mcl_isa::ArchReg;
use mcl_trace::ProgramBuilder;

fn events_of(
    program: &mcl_trace::Program<ArchReg>,
    cfg: ProcessorConfig,
) -> mcl_core::EventLog {
    Processor::new(cfg.with_events())
        .run_program(program)
        .expect("simulates")
        .events
        .expect("events recorded")
}

fn issue_cycle(events: &mcl_core::EventLog, seq: u64) -> u64 {
    events
        .for_seq(seq)
        .find(|e| e.kind == EventKind::MasterIssued)
        .map(|e| e.cycle)
        .unwrap_or_else(|| panic!("instruction #{seq} never issued"))
}

#[test]
fn dependent_alu_ops_issue_back_to_back() {
    let mut b = ProgramBuilder::<ArchReg>::new("alu-chain");
    let r = ArchReg::int(2);
    b.lda(r, 1);
    b.addq_imm(r, r, 1);
    b.addq_imm(r, r, 1);
    let p = b.finish().unwrap();
    let ev = events_of(&p, ProcessorConfig::single_cluster_8way());
    assert_eq!(issue_cycle(&ev, 1) + 1, issue_cycle(&ev, 2), "1-cycle ALU bypass");
}

#[test]
fn integer_multiply_takes_six_cycles() {
    let mut b = ProgramBuilder::<ArchReg>::new("mul");
    let r = ArchReg::int(2);
    let d = ArchReg::int(4);
    b.lda(r, 3);
    b.mulq(d, r, r);
    b.addq_imm(d, d, 1); // dependent on the multiply
    let p = b.finish().unwrap();
    let ev = events_of(&p, ProcessorConfig::single_cluster_8way());
    assert_eq!(issue_cycle(&ev, 1) + 6, issue_cycle(&ev, 2));
}

#[test]
fn load_delay_slot_costs_an_extra_cycle() {
    // A dependent use of a load issues two cycles after it (1-cycle unit
    // latency + the single load-delay slot), once the line is warm.
    let mut b = ProgramBuilder::<ArchReg>::new("load-use");
    let base = ArchReg::int(2);
    let v = ArchReg::int(4);
    let d = ArchReg::int(6);
    b.lda(base, 0x4000);
    b.lda(v, 9);
    b.stq(base, 0, v); // warm the line
    for _ in 0..10 {
        b.addq_imm(v, v, 0) // spacing so the fill completes
    }
    b.ldq(d, base, 0);
    b.addq_imm(d, d, 1);
    let p = b.finish().unwrap();
    let ev = events_of(&p, ProcessorConfig::single_cluster_8way());
    let load_seq = 13;
    let use_seq = 14;
    assert_eq!(issue_cycle(&ev, load_seq) + 2, issue_cycle(&ev, use_seq));
}

#[test]
fn fp_divide_serialises_on_one_divider() {
    // Two independent divides on a machine with a single divider: the
    // second cannot start until the first's 16 cycles elapse.
    let mut b = ProgramBuilder::<ArchReg>::new("div2");
    let f0 = ArchReg::fp(0);
    let f2 = ArchReg::fp(2);
    let f4 = ArchReg::fp(4);
    let f6 = ArchReg::fp(6);
    let ti = ArchReg::int(2);
    b.lda(ti, 3);
    b.cvtqt(f0, ti);
    b.cvtqt(f2, ti);
    b.divt(f4, f0, f2);
    b.divt(f6, f2, f0);
    let p = b.finish().unwrap();
    let mut cfg = ProcessorConfig::single_cluster_8way();
    cfg.fp_dividers = 1;
    let ev = events_of(&p, cfg);
    let first = issue_cycle(&ev, 3).min(issue_cycle(&ev, 4));
    let second = issue_cycle(&ev, 3).max(issue_cycle(&ev, 4));
    assert!(second >= first + 16, "divider is unpipelined: {first} vs {second}");

    // With two dividers they overlap.
    let mut cfg2 = ProcessorConfig::single_cluster_8way();
    cfg2.fp_dividers = 2;
    let ev2 = events_of(&p, cfg2);
    let a = issue_cycle(&ev2, 3);
    let b2 = issue_cycle(&ev2, 4);
    assert!(a.abs_diff(b2) < 16, "two dividers overlap: {a} vs {b2}");
}

#[test]
fn issue_width_limits_are_respected_cycle_by_cycle() {
    // 32 independent adds on one cluster cannot issue faster than the
    // per-cluster width.
    let mut b = ProgramBuilder::<ArchReg>::new("width");
    for i in 0..8u8 {
        b.lda(ArchReg::int(i * 2), i64::from(i));
    }
    for _ in 0..4 {
        for i in 0..8u8 {
            let r = ArchReg::int(i * 2);
            b.addq_imm(r, r, 1);
        }
    }
    let p = b.finish().unwrap();
    let ev = events_of(&p, ProcessorConfig::dual_cluster_8way());
    // Count issues per (cycle, cluster).
    use std::collections::HashMap;
    let mut per: HashMap<(u64, usize), u32> = HashMap::new();
    for e in ev.events() {
        if matches!(e.kind, EventKind::MasterIssued | EventKind::SlaveIssued) {
            let cluster = e.cluster.expect("issue has a cluster").index();
            *per.entry((e.cycle, cluster)).or_default() += 1;
        }
    }
    for ((cycle, cluster), count) in per {
        assert!(count <= 4, "cluster {cluster} issued {count} at cycle {cycle}");
    }
}

#[test]
fn retire_width_limits_are_respected() {
    let mut b = ProgramBuilder::<ArchReg>::new("retire");
    for i in 0..8u8 {
        b.lda(ArchReg::int(i * 2), 1);
    }
    for _ in 0..8 {
        for i in 0..8u8 {
            let r = ArchReg::int(i * 2);
            b.addq_imm(r, r, 1);
        }
    }
    let p = b.finish().unwrap();
    let ev = events_of(&p, ProcessorConfig::single_cluster_8way());
    use std::collections::HashMap;
    let mut per: HashMap<u64, u32> = HashMap::new();
    for e in ev.events() {
        if e.kind == EventKind::Retired {
            *per.entry(e.cycle).or_default() += 1;
        }
    }
    assert!(per.values().all(|&c| c <= 8), "retire width exceeded: {per:?}");
    assert_eq!(per.values().sum::<u32>(), 72);
}

#[test]
fn stores_do_not_block_retirement_on_misses() {
    // A store miss must not stall the pipeline behind it (non-blocking
    // stores, unlimited write bandwidth).
    let mut b = ProgramBuilder::<ArchReg>::new("store-miss");
    let base = ArchReg::int(2);
    let v = ArchReg::int(4);
    b.lda(base, 0x20_0000);
    b.lda(v, 5);
    b.stq(base, 0, v); // cold miss
    for _ in 0..20 {
        b.addq_imm(v, v, 1);
    }
    let p = b.finish().unwrap();
    let with_store = Processor::new(ProcessorConfig::single_cluster_8way())
        .run_program(&p)
        .unwrap();

    // The same program with the store replaced by an independent add.
    let mut b = ProgramBuilder::<ArchReg>::new("no-store");
    let scratch = ArchReg::int(6);
    b.lda(base, 0x20_0000);
    b.lda(v, 5);
    b.addq_imm(scratch, base, 0);
    for _ in 0..20 {
        b.addq_imm(v, v, 1);
    }
    let q = b.finish().unwrap();
    let without_store = Processor::new(ProcessorConfig::single_cluster_8way())
        .run_program(&q)
        .unwrap();

    // A non-blocking store's 16-cycle fill must not appear in the
    // critical path: the two runs differ by at most a couple of cycles.
    assert!(
        with_store.stats.cycles <= without_store.stats.cycles + 3,
        "store miss stalled the pipeline: {} vs {}",
        with_store.stats.cycles,
        without_store.stats.cycles
    );
}
