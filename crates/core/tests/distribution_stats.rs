//! Distribution and bookkeeping statistics checks through the public
//! API: scenario accounting, transfer counts, stall attribution, and
//! fetch-group behaviour.

use mcl_core::{Processor, ProcessorConfig};
use mcl_isa::ArchReg;
use mcl_trace::ProgramBuilder;

fn run(p: &mcl_trace::Program<ArchReg>, cfg: ProcessorConfig) -> mcl_core::SimStats {
    Processor::new(cfg).run_program(p).expect("simulates").stats
}

#[test]
fn scenario_counts_partition_the_dynamic_stream() {
    // A loop containing one instruction of each scenario shape.
    let mut b = ProgramBuilder::<ArchReg>::new("mix");
    let (e0, e2, o1, i) = (ArchReg::int(2), ArchReg::int(6), ArchReg::int(3), ArchReg::int(8));
    let body = b.new_block("body");
    b.lda(e0, 1);
    b.lda(o1, 2);
    b.lda(i, 50);
    b.switch_to(body);
    b.addq_imm(e2, e0, 1); // scenario 1 (all cluster 0)
    b.addq(e2, e0, o1); // scenario 2 (operand forward)
    b.addq(o1, e0, e2); // scenario 3 (result forward)
    b.addq(ArchReg::SP, e0, e2); // scenario 4 (global destination)
    b.addq(ArchReg::SP, e0, o1); // scenario 5 (forward + global)
    b.subq_imm(i, i, 1);
    b.bne(i, body);
    let p = b.finish().unwrap();
    let stats = run(&p, ProcessorConfig::dual_cluster_8way());

    // 50 iterations of each shape (plus entry/loop bookkeeping in
    // scenario 1).
    assert!(stats.scenario[0] >= 100, "{:?}", stats.scenario);
    assert_eq!(stats.scenario[1], 50, "{:?}", stats.scenario);
    assert_eq!(stats.scenario[2], 50, "{:?}", stats.scenario);
    assert_eq!(stats.scenario[3], 50, "{:?}", stats.scenario);
    assert_eq!(stats.scenario[4], 50, "{:?}", stats.scenario);
    assert_eq!(
        stats.scenario.iter().sum::<u64>(),
        stats.single_distributed + stats.dual_distributed
    );

    // Transfers: scenarios 2 and 5 forward operands; 3, 4, and 5
    // forward results.
    assert_eq!(stats.operands_forwarded, 100, "{:?}", stats);
    assert_eq!(stats.results_forwarded, 150, "{:?}", stats);
}

#[test]
fn per_cluster_dispatch_counts_include_both_copies() {
    let mut b = ProgramBuilder::<ArchReg>::new("copies");
    b.lda(ArchReg::int(2), 1);
    b.addq_imm(ArchReg::int(3), ArchReg::int(2), 1); // dual
    let p = b.finish().unwrap();
    let stats = run(&p, ProcessorConfig::dual_cluster_8way());
    assert_eq!(stats.per_cluster_dispatched.iter().sum::<u64>(), 3, "{stats:?}");
}

#[test]
fn dq_stalls_are_attributed_when_a_queue_fills() {
    // A long serial multiply chain on one cluster with a small dispatch
    // queue: issue drains one multiply per six cycles while fetch keeps
    // delivering, so the queue fills before the free list empties.
    let mut b = ProgramBuilder::<ArchReg>::new("dq-fill");
    let r = ArchReg::int(2);
    let body = b.new_block("body");
    let i = ArchReg::int(4);
    b.lda(r, 3);
    b.lda(i, 40);
    b.switch_to(body);
    for _ in 0..24 {
        b.mulq(r, r, r); // 6-cycle serial chain, all on cluster 0
    }
    b.subq_imm(i, i, 1);
    b.bne(i, body);
    let p = b.finish().unwrap();
    let mut cfg = ProcessorConfig::dual_cluster_8way();
    cfg.dq_entries = 16; // smaller than the ~47-entry free list
    let stats = run(&p, cfg);
    assert!(stats.stall_dq > 0, "queue should fill: {stats:?}");
}

#[test]
fn register_stalls_appear_when_the_free_list_empties() {
    // Every iteration starts with a missing load that blocks retirement
    // for 16 cycles while fetch keeps allocating destinations: the
    // in-flight demand exceeds one cluster's ~47 free registers.
    let mut b = ProgramBuilder::<ArchReg>::new("prf-fill");
    let base = ArchReg::int(2);
    let v = ArchReg::int(4);
    let dest = ArchReg::int(6);
    let i = ArchReg::int(8);
    let body = b.new_block("body");
    b.lda(base, 0x40_0000);
    b.lda(i, 200);
    b.switch_to(body);
    b.ldq(v, base, 0); // a fresh line every iteration: always misses
    for _ in 0..20 {
        b.addq_imm(dest, base, 1); // independent work behind the miss
    }
    b.addq_imm(base, base, 32);
    b.subq_imm(i, i, 1);
    b.bne(i, body);
    let p = b.finish().unwrap();
    let mut cfg = ProcessorConfig::dual_cluster_8way();
    cfg.dq_entries = 256; // make registers, not queue slots, the limit
    let stats = run(&p, cfg);
    assert!(stats.stall_regs > 0, "free list should empty: {stats:?}");
}

#[test]
fn fetch_group_ends_at_taken_branches_when_configured() {
    // A chain of tiny blocks linked by unconditional (taken) branches:
    // with fetch-stop-at-taken each cycle fetches one block; without it,
    // fetch runs through several blocks per cycle. The adds are
    // independent, so fetch (not execution) is the limit.
    let mut b = ProgramBuilder::<ArchReg>::new("br-chain");
    let base = ArchReg::int(2);
    b.lda(base, 7);
    let blocks: Vec<_> = (0..120).map(|k| b.new_block(&format!("b{k}"))).collect();
    b.br(blocks[0]);
    for (k, &blk) in blocks.iter().enumerate() {
        b.switch_to(blk);
        let dest = ArchReg::int(4 + 2 * ((k % 8) as u8));
        b.addq_imm(dest, base, k as i64);
        if k + 1 < blocks.len() {
            b.br(blocks[k + 1]);
        }
    }
    let p = b.finish().unwrap();

    let stop = run(&p, ProcessorConfig::single_cluster_8way());
    let mut cfg = ProcessorConfig::single_cluster_8way();
    cfg.fetch_stops_at_taken = false;
    let nostop = run(&p, cfg);
    assert!(
        nostop.cycles < stop.cycles,
        "unbounded fetch should win: {} vs {}",
        nostop.cycles,
        stop.cycles
    );
}

#[test]
fn global_register_reads_are_free_in_both_clusters() {
    // Loads off the global SP from both parities stay single-cluster.
    let mut b = ProgramBuilder::<ArchReg>::new("gp-reads");
    b.lda(ArchReg::SP, 0x8000); // scenario 4 write
    b.addq_imm(ArchReg::int(2), ArchReg::SP, 8); // cluster 0, single
    b.addq_imm(ArchReg::int(3), ArchReg::SP, 16); // cluster 1, single
    let p = b.finish().unwrap();
    let stats = run(&p, ProcessorConfig::dual_cluster_8way());
    assert_eq!(stats.dual_distributed, 1, "only the SP write: {stats:?}");
    assert_eq!(stats.single_distributed, 2);
}
