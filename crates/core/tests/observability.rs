//! Observability-layer integration tests: probes observe without
//! perturbing, the hook streams are self-consistent, and every run
//! satisfies the stall-accounting identity documented in `stats.rs`.

use mcl_core::config::ReassignmentPoint;
use mcl_core::obs::{ObsConfig, ObsProbe};
use mcl_core::{Processor, ProcessorConfig, SimResult};
use mcl_isa::assign::{RegAssignment, RegisterAssignment};
use mcl_isa::{ArchReg, ClusterId};
use mcl_trace::vm::trace_program;
use mcl_trace::{Layout, Program, ProgramBuilder};

/// A loop mixing cross-cluster dependences (forwarded operands and
/// results), loads, and a data-dependent branch the predictor gets
/// wrong now and then.
fn busy_program(rounds: u32) -> Program<ArchReg> {
    let mut b = ProgramBuilder::<ArchReg>::new("busy");
    let e0 = ArchReg::int(2); // even -> cluster 0
    let e2 = ArchReg::int(6);
    let o1 = ArchReg::int(3); // odd -> cluster 1
    let i = ArchReg::int(8);
    let body = b.new_block("body");
    let inc = b.new_block("inc");
    let skip = b.new_block("skip");
    b.lda(e0, 1);
    b.lda(o1, 2);
    b.lda(i, i64::from(rounds));
    b.switch_to(body);
    b.addq(e2, e0, o1); // operand forward
    b.addq(o1, e0, e2); // result forward
    b.ldq(e0, e2, 0); // load
    b.mulq(e2, e2, e2);
    b.blt(e2, skip); // data-dependent branch
    b.switch_to(inc);
    b.addq_imm(e0, e0, 1);
    b.switch_to(skip);
    b.subq_imm(i, i, 1);
    b.bne(i, body);
    b.finish().expect("valid program")
}

/// The replay-provoking program from the replay tests: a one-entry
/// operand buffer deadlocks and only a replay exception breaks it.
fn deadlock_program() -> Program<ArchReg> {
    let mut b = ProgramBuilder::<ArchReg>::new("otb-deadlock");
    let r3 = ArchReg::int(3);
    let r5 = ArchReg::int(5);
    let r4 = ArchReg::int(4);
    let r2 = ArchReg::int(2);
    let r6 = ArchReg::int(6);
    b.lda(r3, 7);
    b.lda(r4, 9);
    b.lda(r5, 3);
    b.mulq(r5, r5, r5);
    b.mulq(r5, r5, r5);
    b.mulq(r5, r5, r5);
    b.addq(r2, r4, r5);
    b.addq(r6, r2, r3);
    b.finish().expect("valid program")
}

/// Runs `program` twice on `cfg` — bare and with an [`ObsProbe`] — and
/// asserts byte-identical statistics before returning both the result
/// and the finished probe.
fn run_observed(program: &Program<ArchReg>, cfg: ProcessorConfig) -> (SimResult, ObsProbe) {
    let (trace, _profile) = trace_program(program).expect("traces");
    let bare = Processor::new(cfg.clone()).run_trace(&trace).expect("bare run");
    let mut probe = ObsProbe::new(ObsConfig { sample_interval: 64, ring_capacity: 256 });
    let observed = Processor::new(cfg)
        .run_trace_observed(&trace, &mut probe)
        .expect("observed run");
    assert_eq!(bare.stats, observed.stats, "probes must observe, never perturb");
    probe.finish();
    (observed, probe)
}

fn check_probe_consistency(result: &SimResult, probe: &ObsProbe) {
    let stats = &result.stats;
    stats.check_stall_identity().expect("stall identity");

    // The sampler's deltas cover the whole run.
    let samples = probe.samples();
    assert_eq!(samples.iter().map(|s| s.cycles).sum::<u64>(), stats.cycles);
    assert_eq!(samples.iter().map(|s| s.retired).sum::<u64>(), stats.retired);
    assert_eq!(
        samples.iter().map(|s| s.dispatched).sum::<u64>(),
        stats.single_distributed + stats.dual_distributed,
    );
    assert_eq!(samples.iter().map(|s| s.replays).sum::<u64>(), stats.replays);
    assert_eq!(
        samples.iter().map(|s| s.stalls.iter().sum::<u64>()).sum::<u64>(),
        stats.stall_cycles(),
    );
    assert_eq!(probe.last_cycle() + 1, stats.cycles);

    // Latency histograms: one retire latency per retired instruction;
    // dispatch->issue counts master issues of surviving incarnations.
    assert_eq!(probe.complete_to_retire().count(), stats.retired);
    assert!(probe.dispatch_to_issue().count() >= stats.retired);
    assert_eq!(probe.dispatch_to_issue().count(), probe.issue_to_complete().count());

    // The ring is bounded and retains the youngest tail.
    assert!(probe.ring().len() <= probe.ring().capacity());
}

#[test]
fn observed_single_cluster_run_matches_and_balances() {
    let program = busy_program(300);
    let (result, probe) = run_observed(&program, ProcessorConfig::single_cluster_8way());
    check_probe_consistency(&result, &probe);
    assert!(result.stats.mispredicts > 0, "branchy loop mispredicts: {:?}", result.stats);
}

#[test]
fn observed_dual_cluster_run_measures_transfers() {
    let program = busy_program(300);
    let (result, probe) = run_observed(&program, ProcessorConfig::dual_cluster_8way());
    check_probe_consistency(&result, &probe);
    assert!(result.stats.operands_forwarded > 0);
    assert!(result.stats.results_forwarded > 0);
    // Each transfer-buffer entry allocated by a surviving instruction
    // pairs an alloc with a release; residency is at least one cycle.
    assert!(probe.otb_residency().count() > 0, "operand residency measured");
    assert!(probe.rtb_residency().count() > 0, "result residency measured");
    assert!(probe.otb_residency().min().unwrap_or(0) >= 1);
    assert!(probe.rtb_residency().min().unwrap_or(0) >= 1);
    // Occupancy snapshots stay within configured capacities.
    let cfg = ProcessorConfig::dual_cluster_8way();
    for s in probe.samples() {
        for c in 0..2 {
            assert!(s.dq_used[c] <= cfg.dq_entries);
            assert!(s.otb_used[c] <= cfg.operand_buffer);
            assert!(s.rtb_used[c] <= cfg.result_buffer);
        }
    }
}

#[test]
fn observed_replay_run_stays_identical_and_balances() {
    let mut cfg = ProcessorConfig::dual_cluster_8way();
    cfg.operand_buffer = 1;
    cfg.result_buffer = 1;
    let program = deadlock_program();
    let (result, probe) = run_observed(&program, cfg);
    check_probe_consistency(&result, &probe);
    assert!(result.stats.replays >= 1, "{:?}", result.stats);
    assert!(result.stats.stall_replay > 0, "{:?}", result.stats);
}

#[test]
fn observed_reassignment_run_stays_identical_and_balances() {
    let mut b = ProgramBuilder::<ArchReg>::new("two-phase");
    let r2 = ArchReg::int(2);
    let r3 = ArchReg::int(3);
    let i = ArchReg::int(4);
    let body = b.new_block("body");
    b.lda(r2, 0);
    b.lda(r3, 1);
    b.lda(i, 60);
    b.switch_to(body);
    for _ in 0..4 {
        b.addq(r2, r2, r3);
        b.addq(r3, r3, r2);
    }
    b.subq_imm(i, i, 1);
    b.bne(i, body);
    let program = b.finish().expect("valid");

    let pinned = RegisterAssignment::from_fn(2, |reg| {
        if reg == ArchReg::SP || reg == ArchReg::GP {
            RegAssignment::Global
        } else if reg == ArchReg::int(3) {
            RegAssignment::Local(ClusterId::C0)
        } else {
            RegAssignment::Local(ClusterId::new(reg.index() % 2))
        }
    });
    let mut cfg = ProcessorConfig::dual_cluster_8way();
    cfg.reassignments =
        vec![ReassignmentPoint { trigger_pc: Layout::CODE_BASE + 3 * 4, assignment: pinned }];
    let (result, probe) = run_observed(&program, cfg);
    check_probe_consistency(&result, &probe);
    assert_eq!(result.stats.reassignments, 1);
    assert!(result.stats.stall_reassign > 0, "{:?}", result.stats);
}

#[test]
fn ring_tail_renders_through_pipeview() {
    let program = busy_program(50);
    let (_, probe) = run_observed(&program, ProcessorConfig::dual_cluster_8way());
    let (lo, hi) = probe.ring().seq_range().expect("events retained");
    let log = probe.ring().to_log();
    let opts = mcl_core::PipeViewOptions { first_seq: lo, last_seq: hi, max_cycles: 160 };
    let rendered = mcl_core::render_pipeline(&log, opts);
    assert!(!rendered.is_empty());
}
