//! Branch-squash / replay-path integration tests: a squash must drain
//! the window cleanly, release every transfer-buffer entry the squashed
//! instructions held, and re-execute without double-retiring.

use mcl_core::{Processor, ProcessorConfig};
use mcl_isa::ArchReg;
use mcl_trace::vm::trace_program;
use mcl_trace::{Program, ProgramBuilder};

/// Chains `instances` copies of the one-entry-buffer deadlock pattern,
/// serialised through the previous instance's result so each deadlock
/// (and its replay) happens in turn. Every replay must have released
/// the buffer entries of the squashed copies or the next instance
/// could never complete.
fn chained_deadlocks(instances: usize) -> Program<ArchReg> {
    let mut b = ProgramBuilder::<ArchReg>::new("otb-deadlock-chain");
    let r3 = ArchReg::int(3); // odd -> cluster 1 (fast forwarded operand)
    let r5 = ArchReg::int(5); // odd -> cluster 1 (slow forwarded operand)
    let r4 = ArchReg::int(4); // even -> cluster 0
    let r2 = ArchReg::int(2); // even -> cluster 0 (Y's result)
    let r6 = ArchReg::int(6); // even -> cluster 0 (X's result)
    b.lda(r6, 9);
    for _ in 0..instances {
        b.lda(r3, 7);
        b.addq_imm(r4, r6, 9); // serialise on the previous X result
        b.lda(r5, 3);
        b.mulq(r5, r5, r5);
        b.mulq(r5, r5, r5);
        b.mulq(r5, r5, r5);
        // Y: master on cluster 0, slave forwards the slow r5.
        b.addq(r2, r4, r5);
        // X: master reads Y's result, slave forwards the fast r3.
        b.addq(r6, r2, r3);
    }
    b.finish().expect("valid program")
}

fn tiny_buffer_config() -> ProcessorConfig {
    let mut cfg = ProcessorConfig::dual_cluster_8way();
    cfg.operand_buffer = 1;
    cfg.result_buffer = 1;
    cfg
}

#[test]
fn squash_releases_buffer_entries_for_reuse() {
    let program = chained_deadlocks(3);
    let result = Processor::new(tiny_buffer_config())
        .run_program(&program)
        .expect("every deadlock is broken by a replay");
    assert!(result.stats.replays >= 1, "stats: {:?}", result.stats);
    assert!(result.stats.replay_squashed >= 1);
    // 1 seed lda + 8 instructions per instance, each retired exactly
    // once: leaked buffer entries or double re-dispatch would show up
    // here (as a wedge or a wrong count).
    assert_eq!(result.stats.retired, 25);
}

#[test]
fn window_drain_and_redispatch_is_deterministic() {
    let program = chained_deadlocks(2);
    let a = Processor::new(tiny_buffer_config()).run_program(&program).expect("runs");
    let b = Processor::new(tiny_buffer_config()).run_program(&program).expect("runs");
    assert_eq!(a.stats, b.stats, "the replay path must be deterministic");
    assert_eq!(a.stats.retired, 17);
}

/// An unpredictable-branch loop under one-entry transfer buffers: the
/// replays regularly squash in-flight conditional branches, exercising
/// the pending-predictor-update filter on the live path. The run must
/// still retire the exact dynamic instruction stream.
#[test]
fn replays_with_inflight_branches_retire_the_exact_trace() {
    let mut b = ProgramBuilder::<ArchReg>::new("branchy-squash");
    let x = ArchReg::int(2); // even -> cluster 0
    let y = ArchReg::int(3); // odd -> cluster 1 (cross-cluster traffic)
    let bit = ArchReg::int(4);
    let i = ArchReg::int(6);
    let body = b.new_block("body");
    let skip = b.new_block("skip");
    let join = b.new_block("join");
    b.lda(x, 12345);
    b.lda(i, 60);
    b.switch_to(body);
    b.mulq_imm(x, x, 1103515245);
    b.addq_imm(x, x, 12345);
    b.addq_imm(y, x, 1); // forwarded cross-cluster operand
    b.addq(x, x, y);
    b.srl_imm(bit, x, 16);
    b.and_imm(bit, bit, 1);
    b.bne(bit, join);
    b.switch_to(skip);
    b.addq_imm(x, x, 7);
    b.switch_to(join);
    b.subq_imm(i, i, 1);
    b.bne(i, body);
    let program = b.finish().expect("valid program");

    let (trace, _) = trace_program(&program).expect("traces");
    let result = Processor::new(tiny_buffer_config()).run_program(&program).expect("runs");
    assert_eq!(result.stats.retired, trace.len() as u64);
    assert!(result.stats.branches >= 120, "stats: {:?}", result.stats);
    // Dispatch-time prediction recounts a squashed-and-refetched
    // branch, so the dynamic count is a floor, never a ceiling.
    assert!(result.stats.branches >= result.stats.mispredicts);
}
