//! Integration tests for the instruction-replay exception machinery
//! (Section 2.1: "an instruction-replay exception is required to avoid
//! issue deadlock").

use mcl_core::{Processor, ProcessorConfig};
use mcl_isa::ArchReg;
use mcl_trace::ProgramBuilder;

/// Builds a program that deadlocks a one-entry operand transfer buffer:
///
/// - `X`'s slave copy forwards an immediately-ready operand and takes the
///   only entry of cluster 0's operand buffer;
/// - `Y` (older) must forward a *slow* operand into the same buffer, but
///   the entry is held: `Y`'s slave is blocked;
/// - `X`'s master reads `Y`'s result, so it cannot issue and release the
///   entry — a cycle only a replay can break.
fn deadlock_program() -> mcl_trace::Program<ArchReg> {
    let mut b = ProgramBuilder::<ArchReg>::new("otb-deadlock");
    let r3 = ArchReg::int(3); // odd -> cluster 1 (X's forwarded operand, ready early)
    let r5 = ArchReg::int(5); // odd -> cluster 1 (Y's forwarded operand, ready late)
    let r4 = ArchReg::int(4); // even -> cluster 0
    let r2 = ArchReg::int(2); // even -> cluster 0 (Y's result)
    let r6 = ArchReg::int(6); // even -> cluster 0 (X's result)

    b.lda(r3, 7);
    b.lda(r4, 9);
    b.lda(r5, 3);
    // A long dependence chain delays r5 (three 6-cycle multiplies).
    b.mulq(r5, r5, r5);
    b.mulq(r5, r5, r5);
    b.mulq(r5, r5, r5);
    // Y: master on cluster 0, slave forwards r5 (slow).
    b.addq(r2, r4, r5);
    // X: master on cluster 0 reads Y's result, slave forwards r3 (fast).
    b.addq(r6, r2, r3);
    b.finish().expect("valid program")
}

#[test]
fn one_entry_buffer_deadlock_is_broken_by_replay() {
    let mut cfg = ProcessorConfig::dual_cluster_8way();
    cfg.operand_buffer = 1;
    cfg.result_buffer = 1;
    let program = deadlock_program();
    let result = Processor::new(cfg).run_program(&program).expect("replay breaks the deadlock");
    assert!(result.stats.replays >= 1, "expected a replay: {:?}", result.stats);
    assert!(result.stats.replay_squashed >= 1);
    // Everything still retires exactly once.
    assert_eq!(result.stats.retired, 8);
}

#[test]
fn ample_buffers_avoid_the_replay() {
    let cfg = ProcessorConfig::dual_cluster_8way(); // 8 entries
    let program = deadlock_program();
    let result = Processor::new(cfg).run_program(&program).expect("runs");
    assert_eq!(result.stats.replays, 0, "8 entries are plenty: {:?}", result.stats);
    assert_eq!(result.stats.retired, 8);
}

#[test]
fn replayed_runs_compute_the_same_architectural_result() {
    // The replay path must not lose or duplicate instructions: compare
    // the retired count and cycle determinism across buffer sizes.
    let program = deadlock_program();
    let mut cycles = Vec::new();
    for entries in [1u32, 2, 8] {
        let mut cfg = ProcessorConfig::dual_cluster_8way();
        cfg.operand_buffer = entries;
        cfg.result_buffer = entries;
        let result = Processor::new(cfg).run_program(&program).expect("runs");
        assert_eq!(result.stats.retired, 8, "{entries} entries");
        cycles.push(result.stats.cycles);
    }
    // More buffering never hurts.
    assert!(cycles[0] >= cycles[2], "cycles by entries: {cycles:?}");
}

#[test]
fn replay_penalty_is_charged() {
    let program = deadlock_program();
    let mut cheap = ProcessorConfig::dual_cluster_8way();
    cheap.operand_buffer = 1;
    cheap.result_buffer = 1;
    cheap.replay_penalty = 0;
    let mut dear = cheap.clone();
    dear.replay_penalty = 40;
    let fast = Processor::new(cheap).run_program(&program).unwrap();
    let slow = Processor::new(dear).run_program(&program).unwrap();
    assert!(fast.stats.replays >= 1 && slow.stats.replays >= 1);
    assert!(
        slow.stats.cycles > fast.stats.cycles,
        "penalty should cost cycles: {} vs {}",
        slow.stats.cycles,
        fast.stats.cycles
    );
}
