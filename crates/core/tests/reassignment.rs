//! Tests for dynamic register reassignment (Section 6): the hardware
//! mechanism that lets a compiler hint switch the
//! architectural-register-to-cluster assignment between program phases.

use mcl_core::config::ReassignmentPoint;
use mcl_core::{Processor, ProcessorConfig};
use mcl_isa::assign::{RegAssignment, RegisterAssignment};
use mcl_isa::{ArchReg, ClusterId};
use mcl_trace::{Layout, ProgramBuilder};

/// Phase 1: a tight dependence chain over r2/r3 (split under even/odd —
/// every instruction dual-distributes). Phase 2: the same chain over
/// r2/r4 (both on cluster 0 — single distribution).
///
/// A reassignment point before phase 1 that maps r2 *and* r3 to cluster
/// 0 removes all of phase 1's inter-cluster traffic.
fn two_phase_program(rounds: u32) -> mcl_trace::Program<ArchReg> {
    let mut b = ProgramBuilder::<ArchReg>::new("two-phase");
    let r2 = ArchReg::int(2);
    let r3 = ArchReg::int(3);
    let i = ArchReg::int(4);
    let body = b.new_block("body");
    b.lda(r2, 0);
    b.lda(r3, 1);
    b.lda(i, i64::from(rounds));
    b.switch_to(body);
    for _ in 0..4 {
        b.addq(r2, r2, r3);
        b.addq(r3, r3, r2);
    }
    b.subq_imm(i, i, 1);
    b.bne(i, body);
    b.finish().expect("valid")
}

/// An assignment like even/odd, except r3 joins r2 on cluster 0.
fn pinned_assignment() -> RegisterAssignment {
    RegisterAssignment::from_fn(2, |reg| {
        if reg == ArchReg::SP || reg == ArchReg::GP {
            RegAssignment::Global
        } else if reg == ArchReg::int(3) {
            RegAssignment::Local(ClusterId::C0)
        } else {
            RegAssignment::Local(ClusterId::new(reg.index() % 2))
        }
    })
}

#[test]
fn reassignment_removes_cross_cluster_traffic() {
    let program = two_phase_program(200);

    let static_run = Processor::new(ProcessorConfig::dual_cluster_8way())
        .run_program(&program)
        .expect("static runs");
    assert!(static_run.stats.dual_distributed >= 1600, "{:?}", static_run.stats);

    // Trigger at the program's first instruction: the whole run executes
    // under the pinned assignment.
    let mut cfg = ProcessorConfig::dual_cluster_8way();
    cfg.reassignments =
        vec![ReassignmentPoint { trigger_pc: Layout::CODE_BASE, assignment: pinned_assignment() }];
    let dynamic_run = Processor::new(cfg).run_program(&program).expect("dynamic runs");

    assert_eq!(dynamic_run.stats.reassignments, 1);
    assert_eq!(dynamic_run.stats.dual_distributed, 0, "{:?}", dynamic_run.stats);
    assert!(
        dynamic_run.stats.cycles < static_run.stats.cycles,
        "dynamic {} vs static {}",
        dynamic_run.stats.cycles,
        static_run.stats.cycles
    );
    assert_eq!(dynamic_run.stats.retired, static_run.stats.retired);
}

#[test]
fn mid_program_reassignment_drains_first() {
    let program = two_phase_program(100);
    // Trigger at the loop head: the entry block dispatches under the
    // static assignment, the loop under the pinned one.
    let trigger_pc = Layout::CODE_BASE + 3 * 4;
    let mut cfg = ProcessorConfig::dual_cluster_8way();
    cfg.reassignments =
        vec![ReassignmentPoint { trigger_pc, assignment: pinned_assignment() }];
    let result = Processor::new(cfg).run_program(&program).expect("runs");
    assert_eq!(result.stats.reassignments, 1);
    // The loop body runs entirely under the pinned assignment.
    assert_eq!(result.stats.dual_distributed, 0);
    assert!(result.stats.stall_reassign >= 32, "penalty charged: {:?}", result.stats);
    assert_eq!(result.stats.retired, 3 + 100 * 10);
}

#[test]
fn reassignment_penalty_is_configurable() {
    let program = two_phase_program(50);
    let run_with = |penalty: u64| {
        let mut cfg = ProcessorConfig::dual_cluster_8way();
        cfg.reassignment_penalty = penalty;
        cfg.reassignments = vec![ReassignmentPoint {
            trigger_pc: Layout::CODE_BASE + 3 * 4,
            assignment: pinned_assignment(),
        }];
        Processor::new(cfg).run_program(&program).expect("runs").stats.cycles
    };
    let cheap = run_with(0);
    let dear = run_with(200);
    assert!(dear > cheap + 150, "penalty should show up: {cheap} vs {dear}");
}

#[test]
fn untriggered_points_change_nothing() {
    let program = two_phase_program(50);
    let mut cfg = ProcessorConfig::dual_cluster_8way();
    cfg.reassignments = vec![ReassignmentPoint {
        trigger_pc: 0xDEAD_0000, // never fetched
        assignment: pinned_assignment(),
    }];
    let with = Processor::new(cfg).run_program(&program).expect("runs");
    let without = Processor::new(ProcessorConfig::dual_cluster_8way())
        .run_program(&program)
        .expect("runs");
    assert_eq!(with.stats, without.stats);
    assert_eq!(with.stats.reassignments, 0);
}
