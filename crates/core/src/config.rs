//! Processor configuration.

use mcl_bpred::PredictorConfig;
use mcl_isa::{assign::RegisterAssignment, IssueRules, Latencies};
use mcl_mem::CacheConfig;

use std::str::FromStr;
use std::sync::atomic::{AtomicU8, Ordering};

use crate::check::{self, CheckLevel, FaultInjection};

/// Which simulation loop drives the processor model.
///
/// Both engines run the same phase code against the same
/// [`TimeQ`](crate::timeq::TimeQ) event queues and produce byte-identical
/// [`SimStats`](crate::SimStats) and event logs; the event engine
/// additionally fast-forwards `now` across spans it can prove dead (no
/// cluster can dispatch, issue, or retire) straight to the next
/// scheduled event, charging the skipped cycles to the same stall
/// bucket the ticked loop would have. See `DESIGN.md` §12.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The legacy loop: advance one cycle at a time, always.
    Ticked,
    /// Skip dead cycles by jumping to the next scheduled event.
    #[default]
    Event,
}

impl Engine {
    /// Stable lower-case name (`ticked` / `event`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Engine::Ticked => "ticked",
            Engine::Event => "event",
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            Engine::Ticked => 0,
            Engine::Event => 1,
        }
    }

    fn from_u8(v: u8) -> Engine {
        match v {
            0 => Engine::Ticked,
            _ => Engine::Event,
        }
    }
}

impl FromStr for Engine {
    type Err = String;

    fn from_str(s: &str) -> Result<Engine, String> {
        match s {
            "ticked" => Ok(Engine::Ticked),
            "event" => Ok(Engine::Event),
            other => Err(format!("unknown engine '{other}' (expected ticked|event)")),
        }
    }
}

static GLOBAL_ENGINE: AtomicU8 = AtomicU8::new(1);

/// Sets the process-wide default engine picked up by the
/// [`ProcessorConfig`] presets (mirrors [`check::set_global_level`]).
pub fn set_global_engine(engine: Engine) {
    GLOBAL_ENGINE.store(engine.as_u8(), Ordering::Relaxed);
}

/// The process-wide default engine (defaults to [`Engine::Event`]).
#[must_use]
pub fn global_engine() -> Engine {
    Engine::from_u8(GLOBAL_ENGINE.load(Ordering::Relaxed))
}

/// Complete configuration of a simulated processor (single-cluster or
/// multicluster).
///
/// The two headline presets reproduce Section 4.1 of the paper:
///
/// - [`ProcessorConfig::single_cluster_8way`] — one cluster, 8-way issue,
///   128-entry dispatch queue, 128 + 128 physical registers;
/// - [`ProcessorConfig::dual_cluster_8way`] — two clusters, 4-way issue
///   each, 64-entry dispatch queues, 64 + 64 physical registers and
///   8-entry operand/result transfer buffers per cluster.
///
/// Both fetch up to 12 instructions per cycle, retire up to 8 per cycle,
/// share 64 KB two-way instruction and data caches with a 16-cycle
/// memory interface, and use the McFarling combining branch predictor.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessorConfig {
    /// Number of clusters (1 or 2).
    pub clusters: u8,
    /// Instructions fetched (and at most dispatched) per cycle.
    pub fetch_width: u32,
    /// Instructions retired per cycle, processor-wide.
    pub retire_width: u32,
    /// Dispatch-queue entries per cluster.
    pub dq_entries: u32,
    /// Physical integer registers per cluster.
    pub int_regs: u32,
    /// Physical floating-point registers per cluster.
    pub fp_regs: u32,
    /// Operand transfer buffer entries per cluster.
    pub operand_buffer: u32,
    /// Result transfer buffer entries per cluster.
    pub result_buffer: u32,
    /// Unpipelined floating-point divider units per cluster. The
    /// single-cluster machine carries the same total as the dual-cluster
    /// machine (two), keeping the comparison resource-equal, as the
    /// paper's "same number of resources" methodology requires.
    pub fp_dividers: u32,
    /// Per-cluster issue rules (Table 1).
    pub issue_rules: IssueRules,
    /// Functional-unit latencies (Table 1).
    pub latencies: Latencies,
    /// Instruction cache geometry.
    pub icache: CacheConfig,
    /// Data cache geometry.
    pub dcache: CacheConfig,
    /// Branch predictor.
    pub predictor: PredictorConfig,
    /// Whether a taken branch ends the cycle's fetch group.
    pub fetch_stops_at_taken: bool,
    /// Extra cycles charged to restart dispatch after an
    /// instruction-replay exception.
    pub replay_penalty: u64,
    /// Hard cap on simulated cycles (guards against simulator bugs).
    pub max_cycles: u64,
    /// Record a detailed event log (used for the Figure 2–5 timelines).
    pub record_events: bool,
    /// Dynamic architectural-register reassignment points (the Section 6
    /// "hardware mechanism ... to permit the dynamic reassignment of the
    /// architectural registers"). When dispatch first reaches a trigger
    /// PC, the machine drains its pipeline, pays
    /// [`ProcessorConfig::reassignment_penalty`] cycles to move register
    /// values between clusters, and continues under the new assignment.
    /// Each point triggers once, in trace order.
    pub reassignments: Vec<ReassignmentPoint>,
    /// Cycles charged for moving architectural state at a reassignment
    /// point (after the pipeline drain).
    pub reassignment_penalty: u64,
    /// How much architectural-invariant validation to perform while
    /// simulating (see [`crate::check`]). The presets default to the
    /// process-wide level set via [`check::set_global_level`] (normally
    /// [`CheckLevel::Off`]).
    pub check_level: CheckLevel,
    /// Consecutive zero-progress cycles (with nothing scheduled and no
    /// attributable transfer-buffer deadlock) tolerated before the
    /// simulator gives up with [`SimError::Wedged`](crate::SimError).
    pub wedge_threshold: u32,
    /// Deliberate resource-accounting faults to inject, for validating
    /// that the invariant checker catches real corruption (used by
    /// `repro selftest`; empty in normal runs).
    pub faults: Vec<FaultInjection>,
    /// Which simulation loop to use (see [`Engine`]). The presets
    /// default to the process-wide engine set via
    /// [`set_global_engine`] (normally [`Engine::Event`]).
    pub engine: Engine,
}

/// One compiler-directed reassignment of the architectural registers
/// (Section 6: "the compiler could provide the hardware with hints to
/// indicate when the reassignment could be made, and to directly specify
/// the architectural-register-to-cluster assignment").
#[derive(Debug, Clone, PartialEq)]
pub struct ReassignmentPoint {
    /// The instruction address whose first dispatch triggers the switch.
    pub trigger_pc: u64,
    /// The assignment to switch to.
    pub assignment: RegisterAssignment,
}

impl ProcessorConfig {
    /// The paper's single-cluster, eight-way issue processor
    /// (Section 4.1).
    #[must_use]
    pub fn single_cluster_8way() -> ProcessorConfig {
        ProcessorConfig {
            clusters: 1,
            fetch_width: 12,
            retire_width: 8,
            dq_entries: 128,
            int_regs: 128,
            fp_regs: 128,
            operand_buffer: 0,
            result_buffer: 0,
            fp_dividers: 2,
            issue_rules: IssueRules::single_cluster_8way(),
            latencies: Latencies::table1(),
            icache: CacheConfig::paper_l1(),
            dcache: CacheConfig::paper_l1(),
            predictor: PredictorConfig::paper_default(),
            fetch_stops_at_taken: true,
            replay_penalty: 5,
            max_cycles: 2_000_000_000,
            record_events: false,
            reassignments: Vec::new(),
            reassignment_penalty: 32,
            check_level: check::global_level(),
            wedge_threshold: 1000,
            faults: Vec::new(),
            engine: global_engine(),
        }
    }

    /// The paper's dual-cluster processor: the same total resources as
    /// [`ProcessorConfig::single_cluster_8way`], partitioned in half
    /// across two clusters, plus 8-entry operand and result transfer
    /// buffers per cluster (Section 4.1).
    #[must_use]
    pub fn dual_cluster_8way() -> ProcessorConfig {
        ProcessorConfig {
            clusters: 2,
            dq_entries: 64,
            int_regs: 64,
            fp_regs: 64,
            operand_buffer: 8,
            result_buffer: 8,
            fp_dividers: 1,
            issue_rules: IssueRules::dual_cluster_4way(),
            ..ProcessorConfig::single_cluster_8way()
        }
    }

    /// The four-way single-cluster processor (the paper's evaluation
    /// "was done for both four-way and eight-way issue processors").
    #[must_use]
    pub fn single_cluster_4way() -> ProcessorConfig {
        ProcessorConfig {
            dq_entries: 64,
            int_regs: 64,
            fp_regs: 64,
            // Two dividers, matching the dual 2x2-way machine's total.
            fp_dividers: 2,
            issue_rules: IssueRules::single_cluster_4way(),
            ..ProcessorConfig::single_cluster_8way()
        }
    }

    /// The dual-cluster counterpart of the four-way processor: two
    /// two-way clusters.
    #[must_use]
    pub fn dual_cluster_4way() -> ProcessorConfig {
        ProcessorConfig {
            clusters: 2,
            dq_entries: 32,
            int_regs: 32,
            fp_regs: 32,
            operand_buffer: 8,
            result_buffer: 8,
            fp_dividers: 1,
            issue_rules: IssueRules::dual_cluster_2way(),
            ..ProcessorConfig::single_cluster_8way()
        }
    }

    /// The architectural-register-to-cluster assignment implied by this
    /// configuration: everything local for one cluster; the paper's
    /// even/odd assignment with SP/GP global for two.
    #[must_use]
    pub fn register_assignment(&self) -> RegisterAssignment {
        if self.clusters <= 1 {
            RegisterAssignment::single_cluster()
        } else {
            RegisterAssignment::even_odd_with_default_globals(self.clusters)
        }
    }

    /// Returns the configuration with event recording enabled (for
    /// timeline reconstruction, Figures 2–5).
    #[must_use]
    pub fn with_events(mut self) -> ProcessorConfig {
        self.record_events = true;
        self
    }

    /// Returns the configuration with the given invariant-checking
    /// level.
    #[must_use]
    pub fn with_check_level(mut self, level: CheckLevel) -> ProcessorConfig {
        self.check_level = level;
        self
    }

    /// Returns the configuration with the given simulation engine.
    #[must_use]
    pub fn with_engine(mut self, engine: Engine) -> ProcessorConfig {
        self.engine = engine;
        self
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is unusable (zero clusters, more than
    /// two clusters, zero widths, or fewer physical registers than the
    /// architectural registers a cluster must hold).
    pub fn check(&self) {
        assert!((1..=2).contains(&self.clusters), "1 or 2 clusters supported");
        assert!(self.fetch_width > 0 && self.retire_width > 0);
        assert!(self.dq_entries > 0);
        // Each cluster must at least hold committed mappings for the
        // architectural registers assigned to it (~32 worst case).
        assert!(self.int_regs >= 32 && self.fp_regs >= 32, "physical registers too few");
        if self.clusters > 1 {
            assert!(
                self.operand_buffer > 0 && self.result_buffer > 0,
                "multicluster configurations need transfer buffers"
            );
        }
        assert!(self.wedge_threshold >= 1, "wedge threshold must allow at least one stall cycle");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_presets_are_consistent() {
        for cfg in [
            ProcessorConfig::single_cluster_8way(),
            ProcessorConfig::dual_cluster_8way(),
            ProcessorConfig::single_cluster_4way(),
            ProcessorConfig::dual_cluster_4way(),
        ] {
            cfg.check();
        }
    }

    #[test]
    fn dual_halves_the_single_cluster_resources() {
        let s = ProcessorConfig::single_cluster_8way();
        let d = ProcessorConfig::dual_cluster_8way();
        assert_eq!(d.dq_entries * 2, s.dq_entries);
        assert_eq!(d.int_regs * 2, s.int_regs);
        assert_eq!(d.fp_regs * 2, s.fp_regs);
        assert_eq!(d.issue_rules.total * 2, s.issue_rules.total);
        assert_eq!(d.operand_buffer, 8);
        assert_eq!(d.result_buffer, 8);
        assert_eq!(d.fetch_width, s.fetch_width);
        assert_eq!(d.retire_width, s.retire_width);
    }

    #[test]
    fn register_assignment_matches_cluster_count() {
        assert_eq!(ProcessorConfig::single_cluster_8way().register_assignment().clusters(), 1);
        assert_eq!(ProcessorConfig::dual_cluster_8way().register_assignment().clusters(), 2);
    }

    #[test]
    fn engine_parses_and_names_round_trip() {
        for engine in [Engine::Ticked, Engine::Event] {
            assert_eq!(engine.name().parse::<Engine>(), Ok(engine));
        }
        assert!("turbo".parse::<Engine>().is_err());
    }

    #[test]
    #[should_panic(expected = "transfer buffers")]
    fn dual_without_buffers_is_rejected() {
        let mut cfg = ProcessorConfig::dual_cluster_8way();
        cfg.operand_buffer = 0;
        cfg.check();
    }
}
