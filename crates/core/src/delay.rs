//! Cycle-time model derived from Palacharla, Jouppi & Smith
//! ("Complexity-Effective Superscalar Processors", ISCA 1997).
//!
//! The paper's bottom line rests on these numbers (Section 4.2): in a
//! 0.35 µm process "the worst case delay increased from 1248 ps for a
//! four-issue processor to 1484 ps for an eight-issue processor, an
//! increase of 18 %", while "for a 0.18 µm process generation ... the
//! worst-case path would increase by 82 % when moving from a four-issue
//! processor to an eight-issue processor". Each cluster of the
//! dual-cluster processor is a four-issue machine, so its clock can run
//! at the four-issue cycle time; the question is whether the cycle-count
//! overhead of partitioning (Table 2) is smaller than that cycle-time
//! advantage.


/// A process generation with published 4-issue/8-issue critical-path
/// delays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureSize {
    /// 0.35 µm: 1248 ps (4-issue) vs 1484 ps (8-issue), +18 %.
    F0_35um,
    /// 0.18 µm: wire delay dominates; the 8-issue path is 82 % longer
    /// than the 4-issue path.
    F0_18um,
}

impl FeatureSize {
    /// Both published generations.
    pub const ALL: [FeatureSize; 2] = [FeatureSize::F0_35um, FeatureSize::F0_18um];

    /// A human-readable label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FeatureSize::F0_35um => "0.35um",
            FeatureSize::F0_18um => "0.18um",
        }
    }

    /// The critical-path delay (in picoseconds, normalised units for the
    /// 0.18 µm generation) of a processor of the given issue width.
    ///
    /// # Panics
    ///
    /// Panics for issue widths other than 4 or 8 — the published model
    /// covers exactly the two widths the paper compares.
    #[must_use]
    pub fn cycle_time(self, issue_width: u32) -> f64 {
        match (self, issue_width) {
            (FeatureSize::F0_35um, 4) => 1248.0,
            (FeatureSize::F0_35um, 8) => 1484.0,
            // Palacharla et al. report the 0.18um ratio; absolute scale
            // cancels in every comparison, so normalise the 4-issue
            // delay to 1000.
            (FeatureSize::F0_18um, 4) => 1000.0,
            (FeatureSize::F0_18um, 8) => 1820.0,
            _ => panic!("the delay model covers 4- and 8-issue widths only"),
        }
    }

    /// The ratio `T(8-issue) / T(4-issue)` for this generation.
    #[must_use]
    pub fn wide_to_narrow_ratio(self) -> f64 {
        self.cycle_time(8) / self.cycle_time(4)
    }
}

/// The net run-time ratio of a dual-cluster processor against the
/// single-cluster processor at a given feature size:
///
/// `run_time_ratio = (C_dual × T_4issue) / (C_single × T_8issue)`
///
/// Values below 1.0 mean the multicluster processor is faster in wall
/// time despite executing more cycles.
///
/// # Example
///
/// ```
/// use mcl_core::delay::{net_runtime_ratio, FeatureSize};
///
/// // The paper's worst-case rescheduled slowdown is 25% more cycles.
/// // At 0.35um that loses (18% clock gain < 25% cycle loss) ...
/// assert!(net_runtime_ratio(1250, 1000, FeatureSize::F0_35um) > 1.0);
/// // ... but at 0.18um the 82% clock gain dominates.
/// assert!(net_runtime_ratio(1250, 1000, FeatureSize::F0_18um) < 1.0);
/// ```
#[must_use]
pub fn net_runtime_ratio(dual_cycles: u64, single_cycles: u64, feature: FeatureSize) -> f64 {
    (dual_cycles as f64 * feature.cycle_time(4)) / (single_cycles as f64 * feature.cycle_time(8))
}

/// The cycle-count slowdown (as a ratio `C_dual / C_single`) at which
/// the multicluster processor exactly breaks even at this feature size —
/// the paper's "to compensate ... the dual-cluster processor would have
/// to use a processor clock with a period 20 % smaller" arithmetic, run
/// in reverse.
#[must_use]
pub fn breakeven_slowdown(feature: FeatureSize) -> f64 {
    feature.wide_to_narrow_ratio()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_035um_numbers() {
        let f = FeatureSize::F0_35um;
        assert_eq!(f.cycle_time(4), 1248.0);
        assert_eq!(f.cycle_time(8), 1484.0);
        let increase = f.wide_to_narrow_ratio() - 1.0;
        assert!((increase - 0.189).abs() < 0.01, "paper: about 18%, got {increase}");
    }

    #[test]
    fn published_018um_ratio() {
        let f = FeatureSize::F0_18um;
        assert!((f.wide_to_narrow_ratio() - 1.82).abs() < 1e-12);
    }

    #[test]
    fn breakeven_matches_paper_arithmetic() {
        // Paper: a 25% cycle slowdown needs a 20% smaller clock period;
        // 1/1.25 = 0.8. Break-even slowdown at 0.35um is only 1.189,
        // so 1.25 loses; at 0.18um break-even is 1.82, so 1.25 wins.
        assert!(breakeven_slowdown(FeatureSize::F0_35um) < 1.25);
        assert!(breakeven_slowdown(FeatureSize::F0_18um) > 1.25);
    }

    #[test]
    fn equal_cycles_always_favours_the_narrow_clock() {
        for f in FeatureSize::ALL {
            assert!(net_runtime_ratio(1000, 1000, f) < 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "4- and 8-issue")]
    fn unsupported_width_panics() {
        let _ = FeatureSize::F0_35um.cycle_time(16);
    }
}
