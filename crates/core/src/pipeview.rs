//! Pipeline diagrams: renders an [`EventLog`] as a per-instruction
//! Gantt chart in the style of the paper's Figures 2–5.
//!
//! Each row is one dynamic instruction; each column one cycle. Cell
//! letters mark the events of the multicluster execution protocol:
//!
//! ```text
//! D  distributed            S  slave issued        M  master issued
//! o  operand -> buffer      r  result -> buffer    w  register written
//! z  slave suspended        k  slave wakes         X  execution done
//! R  retired                !  mispredict          ~  squashed (replay)
//! ```
//!
//! When several events land on the same cycle the most informative one
//! wins (issue > buffer traffic > bookkeeping).

use std::collections::BTreeMap;

use crate::events::{Event, EventKind, EventLog};

/// Rendering options.
#[derive(Debug, Clone, Copy)]
pub struct PipeViewOptions {
    /// First dynamic instruction to show.
    pub first_seq: u64,
    /// Last dynamic instruction to show (inclusive).
    pub last_seq: u64,
    /// Maximum number of cycle columns (rows are clipped after this).
    pub max_cycles: usize,
}

impl Default for PipeViewOptions {
    fn default() -> PipeViewOptions {
        PipeViewOptions { first_seq: 0, last_seq: 31, max_cycles: 96 }
    }
}

fn glyph(kind: EventKind) -> (char, u8) {
    // (glyph, priority) — higher priority wins a shared cell.
    match kind {
        EventKind::MasterIssued => ('M', 9),
        EventKind::SlaveIssued => ('S', 8),
        EventKind::Retired => ('R', 7),
        EventKind::Mispredicted => ('!', 7),
        EventKind::ReplaySquashed => ('~', 7),
        EventKind::SlaveWoke => ('k', 6),
        EventKind::SlaveSuspended => ('z', 5),
        EventKind::OperandWritten => ('o', 4),
        EventKind::ResultWritten => ('r', 4),
        EventKind::ExecDone => ('X', 3),
        EventKind::RegWritten => ('w', 2),
        EventKind::Distributed => ('D', 1),
    }
}

/// Renders the diagram.
///
/// Cycles are rebased so the first visible event is column zero; the
/// header prints the true cycle of that column.
#[must_use]
pub fn render(log: &EventLog, options: PipeViewOptions) -> String {
    use std::fmt::Write as _;
    let events: Vec<&Event> = log
        .events()
        .iter()
        .filter(|e| (options.first_seq..=options.last_seq).contains(&e.seq))
        .collect();
    let Some(base_cycle) = events.iter().map(|e| e.cycle).min() else {
        return "(no events in range)\n".to_owned();
    };

    // seq -> cycle-offset -> (glyph, priority)
    let mut rows: BTreeMap<u64, BTreeMap<usize, (char, u8)>> = BTreeMap::new();
    for e in events {
        let offset = (e.cycle - base_cycle) as usize;
        if offset >= options.max_cycles {
            continue;
        }
        let (g, p) = glyph(e.kind);
        let cell = rows.entry(e.seq).or_default().entry(offset).or_insert((g, p));
        if p > cell.1 {
            *cell = (g, p);
        }
    }

    let width = rows
        .values()
        .filter_map(|cells| cells.keys().max())
        .max()
        .map_or(1, |m| m + 1);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "cycle {base_cycle} at column 0; D distribute, S/M slave/master issue, o/r buffer\nwrites, z/k suspend/wake, X done, w register write, R retire\n"
    );
    for (seq, cells) in &rows {
        let mut line = String::with_capacity(width);
        for col in 0..width {
            line.push(cells.get(&col).map_or('.', |&(g, _)| g));
        }
        let _ = writeln!(out, "#{seq:<4} {line}");
    }
    out
}

/// One in-flight instruction in a window snapshot (see
/// [`render_window`]): the live scheduling state the invariant checker
/// attaches to a violation report.
#[derive(Debug, Clone)]
pub struct WindowRow {
    /// Dynamic sequence number.
    pub seq: u64,
    /// Execution scenario (1–5, Section 2.1).
    pub scenario: u8,
    /// Master cluster.
    pub master: u8,
    /// Slave cluster, if dual-distributed.
    pub slave: Option<u8>,
    /// Master issue cycle, if issued.
    pub master_issued: Option<u64>,
    /// Master completion cycle, if scheduled.
    pub master_done: Option<u64>,
    /// Slave issue cycle, if issued.
    pub slave_issued: Option<u64>,
    /// Slave register-write cycle, if scheduled.
    pub slave_write: Option<u64>,
    /// Holds an operand-transfer-buffer entry (master's cluster).
    pub otb_held: bool,
    /// Holds a result-transfer-buffer entry (slave's cluster).
    pub rtb_held: bool,
}

/// Renders an instruction-window snapshot, one line per in-flight
/// instruction, in the spirit of the Figure 2–5 views: what issued
/// when, what is still pending, and which transfer-buffer entries are
/// held. Used to make invariant-violation reports actionable.
#[must_use]
pub fn render_window(cycle: u64, base: u64, rows: &[WindowRow]) -> String {
    use std::fmt::Write as _;
    fn c(v: Option<u64>) -> String {
        v.map_or_else(|| "-".to_owned(), |t| t.to_string())
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "window at cycle {cycle}: base #{base}, {} in flight (issue/done cycles; + = buffer entry held)",
        rows.len()
    );
    for r in rows {
        let master = format!("M{}[i{},d{}]", r.master, c(r.master_issued), c(r.master_done));
        let slave = match r.slave {
            Some(s) => format!("S{}[i{},w{}]", s, c(r.slave_issued), c(r.slave_write)),
            None => "-".to_owned(),
        };
        let mut held = String::new();
        if r.otb_held {
            held.push_str(" +otb");
        }
        if r.rtb_held {
            held.push_str(" +rtb");
        }
        let _ = writeln!(
            out,
            "  #{:<6} s{} {:<20} {:<20}{held}",
            r.seq, r.scenario, master, slave
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Processor, ProcessorConfig};
    use mcl_isa::ArchReg;
    use mcl_trace::ProgramBuilder;

    fn sample_log() -> EventLog {
        let mut b = ProgramBuilder::<ArchReg>::new("pv");
        b.lda(ArchReg::int(4), 1);
        b.lda(ArchReg::int(3), 2);
        b.addq(ArchReg::int(2), ArchReg::int(4), ArchReg::int(3));
        let p = b.finish().unwrap();
        Processor::new(ProcessorConfig::dual_cluster_8way().with_events())
            .run_program(&p)
            .unwrap()
            .events
            .unwrap()
    }

    #[test]
    fn renders_one_row_per_instruction() {
        let log = sample_log();
        let view = render(&log, PipeViewOptions::default());
        assert!(view.contains("#0   "));
        assert!(view.contains("#1   "));
        assert!(view.contains("#2   "));
    }

    #[test]
    fn dual_distributed_add_shows_slave_and_master() {
        let log = sample_log();
        let view = render(&log, PipeViewOptions::default());
        let add_row = view.lines().find(|l| l.starts_with("#2")).expect("row for the add");
        assert!(add_row.contains('S'), "slave issue: {add_row}");
        assert!(add_row.contains('M'), "master issue: {add_row}");
        assert!(add_row.contains('R'), "retire: {add_row}");
    }

    #[test]
    fn range_filtering_and_empty_ranges() {
        let log = sample_log();
        let view = render(
            &log,
            PipeViewOptions { first_seq: 2, last_seq: 2, ..PipeViewOptions::default() },
        );
        assert!(view.contains("#2"));
        assert!(!view.contains("#0 "));
        let empty = render(
            &log,
            PipeViewOptions { first_seq: 100, last_seq: 200, ..PipeViewOptions::default() },
        );
        assert!(empty.contains("no events"));
    }

    #[test]
    fn window_snapshot_lists_every_row() {
        let rows = vec![
            WindowRow {
                seq: 12,
                scenario: 2,
                master: 0,
                slave: Some(1),
                master_issued: None,
                master_done: None,
                slave_issued: Some(90),
                slave_write: None,
                otb_held: true,
                rtb_held: false,
            },
            WindowRow {
                seq: 13,
                scenario: 1,
                master: 1,
                slave: None,
                master_issued: Some(91),
                master_done: Some(93),
                slave_issued: None,
                slave_write: None,
                otb_held: false,
                rtb_held: false,
            },
        ];
        let view = render_window(95, 12, &rows);
        assert!(view.contains("cycle 95"));
        assert!(view.contains("base #12"));
        assert!(view.contains("#12"));
        assert!(view.contains("+otb"));
        assert!(view.contains("M1[i91,d93]"));
    }

    #[test]
    fn clipping_respects_max_cycles() {
        let log = sample_log();
        let view = render(
            &log,
            PipeViewOptions { max_cycles: 4, ..PipeViewOptions::default() },
        );
        for line in view.lines().filter(|l| l.starts_with('#')) {
            let cells = line.split_whitespace().nth(1).unwrap_or("");
            assert!(cells.len() <= 4, "{line}");
        }
    }
}
