//! Event logging for timeline reconstruction (Figures 2–5).

use std::fmt;

use mcl_isa::ClusterId;

/// What happened to an instruction copy at some cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The instruction was distributed (renamed and inserted into the
    /// dispatch queue of the given cluster).
    Distributed,
    /// The master copy was issued.
    MasterIssued,
    /// The slave copy was issued.
    SlaveIssued,
    /// The master copy finished executing ("done" in the figures).
    ExecDone,
    /// A forwarded operand was written into the operand transfer buffer
    /// of the given cluster.
    OperandWritten,
    /// A result was written into the result transfer buffer of the given
    /// cluster.
    ResultWritten,
    /// A destination register was written in the given cluster.
    RegWritten,
    /// The slave copy was suspended (scenario five).
    SlaveSuspended,
    /// The suspended slave copy was awakened (scenario five).
    SlaveWoke,
    /// The instruction retired.
    Retired,
    /// A conditional branch resolved as mispredicted.
    Mispredicted,
    /// The instruction was squashed by an instruction-replay exception.
    ReplaySquashed,
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EventKind::Distributed => "distributed",
            EventKind::MasterIssued => "master issued",
            EventKind::SlaveIssued => "slave issued",
            EventKind::ExecDone => "done",
            EventKind::OperandWritten => "operand -> transfer buffer",
            EventKind::ResultWritten => "result -> transfer buffer",
            EventKind::RegWritten => "register written",
            EventKind::SlaveSuspended => "slave suspended",
            EventKind::SlaveWoke => "slave wakes",
            EventKind::Retired => "retired",
            EventKind::Mispredicted => "mispredicted",
            EventKind::ReplaySquashed => "squashed (replay)",
        };
        f.write_str(s)
    }
}

/// One logged event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Cycle at which the event occurred.
    pub cycle: u64,
    /// Dynamic sequence number of the instruction.
    pub seq: u64,
    /// The cluster involved, when meaningful.
    pub cluster: Option<ClusterId>,
    /// What happened.
    pub kind: EventKind,
}

/// An append-only event log (enabled by
/// [`crate::ProcessorConfig::record_events`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventLog {
    events: Vec<Event>,
}

impl EventLog {
    /// An empty log.
    #[must_use]
    pub fn new() -> EventLog {
        EventLog::default()
    }

    /// Appends an event.
    pub fn push(&mut self, cycle: u64, seq: u64, cluster: Option<ClusterId>, kind: EventKind) {
        self.events.push(Event { cycle, seq, cluster, kind });
    }

    /// All events in insertion order (within a cycle, stage order).
    #[must_use]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Events concerning one instruction.
    pub fn for_seq(&self, seq: u64) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| e.seq == seq)
    }

    /// Renders a per-instruction timeline like the paper's figures,
    /// ordered by cycle (stable within a cycle).
    #[must_use]
    pub fn timeline(&self, seq: u64) -> String {
        use std::fmt::Write as _;
        let mut events: Vec<&Event> = self.for_seq(seq).collect();
        events.sort_by_key(|e| e.cycle);
        let mut out = String::new();
        for e in events {
            let cluster = e.cluster.map_or_else(String::new, |c| format!(" [{c}]"));
            let _ = writeln!(out, "  cycle {:>4}{cluster}: {}", e.cycle, e.kind);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_and_filter() {
        let mut log = EventLog::new();
        log.push(1, 0, Some(ClusterId::C0), EventKind::Distributed);
        log.push(1, 1, Some(ClusterId::C1), EventKind::Distributed);
        log.push(3, 0, Some(ClusterId::C0), EventKind::MasterIssued);
        assert_eq!(log.events().len(), 3);
        assert_eq!(log.for_seq(0).count(), 2);
        let tl = log.timeline(0);
        assert!(tl.contains("master issued"));
        assert!(tl.contains("[C0]"));
    }
}
