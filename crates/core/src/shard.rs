//! Intra-run time-window sharding: one long trace, K parallel workers.
//!
//! The event engine (see [`crate::timeq`] and DESIGN.md §12) removed
//! the dead cycles; what remains is live-cycle cost, and a single run
//! is inherently serial — cycle `n + 1` depends on cycle `n`. This
//! module parallelizes *within* one run by partitioning the simulated
//! timeline, the same decomposition ScaleSimulator applies to
//! cycle-accurate simulation: split the dynamic instruction stream into
//! K contiguous windows, give every window its own worker, and merge
//! the per-window [`SimStats`] (every field is a pure sum, so the merge
//! is plain addition and the stall-identity equation survives it).
//!
//! A window cannot start from cold-reset state — the serial run reaches
//! its first instruction with warm caches and a trained predictor. Each
//! worker therefore *functionally warms up* before simulating: it
//! replays the entire pre-window trace through [`Cache::warm`] (install
//! contents and LRU order, record nothing) and
//! [`BranchPredictor::update`] (train on every conditional outcome).
//! Warmup is a linear scan at tens of nanoseconds per op, orders of
//! magnitude cheaper than simulating a cycle, so K windows cost
//! ~`(K-1)/2` extra *scans* to buy a ~K-way split of the *simulation*.
//!
//! # Exactness contract
//!
//! `--shards 1` (or any serial fallback) takes the exact serial code
//! path — byte-identical output, CI-enforced. For K > 1 the merged
//! statistics are exact for everything warmup fully reconstructs —
//! retired-instruction counts in particular are always exact — and
//! approximate where a window boundary cuts pipeline state: each
//! non-final window drains its pipeline (the serial run would overlap
//! that drain with the next window's instructions) and each non-initial
//! window refills from empty. The error is bounded by pipeline depth
//! per boundary, not by window length. The engine *measures* that bound
//! — `boundary_cycles` over merged cycles — reports it as
//! [`ShardReport::divergence`], and automatically falls back to the
//! serial run when it exceeds [`ShardOptions::max_divergence`]. A
//! window that errors (e.g. a spurious wedge under approximate warm
//! state) also falls back to serial rather than failing the run.
//!
//! Configurations whose semantics depend on absolute trace position or
//! absolute cycle numbers (recorded event logs, dynamic reassignment
//! points, fault injection) are always simulated serially.

use std::time::Instant;

use mcl_bpred::BranchPredictor;
use mcl_mem::Cache;
use mcl_trace::{PackedTrace, TraceOp, TraceSource};

use crate::config::ProcessorConfig;
use crate::sim::{Processor, SimError, SimResult};

/// Minimum dynamic instructions per window. Below this the warmup scan
/// and thread launch outweigh the split; short traces run serially.
pub const MIN_WINDOW_OPS: usize = 8192;

/// Default ceiling on [`ShardReport::divergence`] before the engine
/// falls back to the serial run. Boundary artifacts are pipeline-depth
/// cycles per window, so healthy runs measure well under 1%.
pub const DEFAULT_MAX_DIVERGENCE: f64 = 0.02;

/// Sharding parameters.
#[derive(Debug, Clone)]
pub struct ShardOptions {
    /// Requested worker count (windows). 1 disables sharding.
    pub shards: usize,
    /// Divergence bound above which the run falls back to serial.
    pub max_divergence: f64,
}

impl ShardOptions {
    /// Options for `shards` workers with the default divergence bound.
    #[must_use]
    pub fn new(shards: usize) -> ShardOptions {
        ShardOptions { shards, max_divergence: DEFAULT_MAX_DIVERGENCE }
    }
}

/// How a sharded run was actually executed, and how far its merged
/// statistics can be from the serial run's.
#[derive(Debug, Clone, Default)]
pub struct ShardReport {
    /// Worker count requested ([`ShardOptions::shards`]).
    pub requested: usize,
    /// Windows actually simulated in parallel (1 = the serial path ran).
    pub windows: usize,
    /// The parallel result was discarded and the serial run used
    /// (divergence bound exceeded, or a window erred).
    pub fell_back: bool,
    /// Why the run was serial, when it was (`windows == 1` or
    /// `fell_back`).
    pub serial_reason: Option<&'static str>,
    /// Measured divergence bound: `boundary_cycles` as a fraction of
    /// merged cycles. 0 for serial runs.
    pub divergence: f64,
    /// Upper bound on cycles the window boundaries can have added:
    /// twice the non-final windows' drain cycles (each boundary costs
    /// at most one lost drain overlap plus one pipeline refill).
    pub boundary_cycles: u64,
    /// Pre-window trace ops replayed for warmup, summed over windows.
    pub warmup_ops: u64,
    /// Wall-clock spent in warmup scans, summed over windows (overlaps
    /// across workers; compare against per-window simulate time).
    pub warmup_seconds: f64,
    /// Simulated cycles per window, in window order.
    pub window_cycles: Vec<u64>,
    /// Host-side wall-clock schedule of each parallel window worker
    /// (empty on the serial path), for the flight recorder's shard
    /// occupancy spans.
    pub timeline: Vec<WindowTiming>,
}

/// When one window worker ran on the host, as offsets from the sharded
/// run's start.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WindowTiming {
    /// Window index, in trace order.
    pub window: usize,
    /// Seconds from run start to the worker picking up its window.
    pub start_seconds: f64,
    /// Seconds the worker spent in its functional warmup scan.
    pub warmup_seconds: f64,
    /// Seconds the worker spent simulating its window.
    pub sim_seconds: f64,
}

/// Functionally warmed microarchitectural state for one window worker.
pub(crate) struct WarmState {
    pub(crate) predictor: Box<dyn BranchPredictor + Send>,
    pub(crate) icache: Cache,
    pub(crate) dcache: Cache,
}

/// A contiguous slice of a packed trace, re-based so the window's first
/// op has `seq == 0` (the simulator requires `seq` to equal the trace
/// index).
struct WindowView<'a> {
    inner: &'a PackedTrace,
    start: usize,
    len: usize,
}

impl TraceSource for WindowView<'_> {
    fn len(&self) -> usize {
        self.len
    }

    #[inline]
    fn get(&self, index: usize) -> TraceOp {
        debug_assert!(index < self.len);
        let mut op = self.inner.get(self.start + index);
        op.seq = index as u64;
        op
    }
}

/// The window count [`Processor::run_sharded`] will actually use for a
/// trace of `len` ops under `cfg` and `opts` — 1 whenever any serial
/// condition applies. Deterministic in its inputs, so callers (the
/// bench trace store) can key memoized results on
/// (trace, config, window plan) before running anything.
#[must_use]
pub fn planned_windows(cfg: &ProcessorConfig, len: usize, opts: &ShardOptions) -> usize {
    if serial_reason(cfg, len, opts).is_some() {
        1
    } else {
        opts.shards.min(len / MIN_WINDOW_OPS)
    }
}

/// Why a run with these parameters must take the serial path, if it
/// must.
fn serial_reason(cfg: &ProcessorConfig, len: usize, opts: &ShardOptions) -> Option<&'static str> {
    if opts.shards <= 1 {
        Some("shards=1")
    } else if cfg.record_events {
        Some("event log records absolute cycles")
    } else if !cfg.reassignments.is_empty() {
        Some("reassignment points are trace-position-dependent")
    } else if !cfg.faults.is_empty() {
        Some("fault injection targets the serial run")
    } else if len / MIN_WINDOW_OPS < 2 {
        Some("trace shorter than two minimum windows")
    } else {
        None
    }
}

/// Splits `len` ops into `windows` contiguous near-equal windows.
/// Returns `(start, end)` pairs covering `0..len` exactly.
#[must_use]
pub fn plan_windows(len: usize, windows: usize) -> Vec<(usize, usize)> {
    assert!(windows >= 1, "need at least one window");
    let base = len / windows;
    let extra = len % windows;
    let mut plan = Vec::with_capacity(windows);
    let mut start = 0;
    for w in 0..windows {
        let end = start + base + usize::from(w < extra);
        plan.push((start, end));
        start = end;
    }
    debug_assert_eq!(start, len);
    plan
}

/// Replays `trace[..upto]` functionally: trains the predictor on every
/// conditional outcome and installs icache/dcache contents (no
/// statistics, no in-flight fills).
fn warm_state(cfg: &ProcessorConfig, trace: &PackedTrace, upto: usize) -> WarmState {
    let mut predictor = cfg.predictor.build();
    let mut icache = Cache::new(cfg.icache);
    let mut dcache = Cache::new(cfg.dcache);
    for i in 0..upto {
        let op = trace.get(i);
        icache.warm(op.pc);
        if let Some(addr) = op.mem_addr {
            dcache.warm(addr);
        }
        if op.is_conditional_branch() {
            let taken = op.branch.expect("conditional has branch info").taken;
            predictor.update(op.pc, taken);
        }
    }
    WarmState { predictor, icache, dcache }
}

/// One worker: warm up to `start`, then simulate `trace[start..end]`
/// with full statistics. Returns the window result plus its host-side
/// schedule relative to `epoch` (the sharded run's start).
fn run_one_window(
    proc: &Processor,
    trace: &PackedTrace,
    window: usize,
    start: usize,
    end: usize,
    epoch: Instant,
) -> Result<(SimResult, WindowTiming), SimError> {
    let start_seconds = epoch.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let warm = (start > 0).then(|| warm_state(proc.config(), trace, start));
    let warmup_seconds = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let view = WindowView { inner: trace, start, len: end - start };
    proc.run_window(&view, warm).map(|r| {
        let timing = WindowTiming {
            window,
            start_seconds,
            warmup_seconds,
            sim_seconds: t1.elapsed().as_secs_f64(),
        };
        (r, timing)
    })
}

impl Processor {
    /// Simulates `trace` split into up to [`ShardOptions::shards`]
    /// parallel time windows, merging the per-window statistics. See
    /// the module docs for the exactness contract; the returned
    /// [`ShardReport`] says how the run was actually executed.
    ///
    /// # Errors
    ///
    /// Any error of [`Processor::run_packed`] from the serial path. A
    /// *window* error triggers a serial retry instead of failing.
    pub fn run_sharded(
        &self,
        trace: &PackedTrace,
        opts: &ShardOptions,
    ) -> Result<(SimResult, ShardReport), SimError> {
        let mut report = ShardReport {
            requested: opts.shards,
            windows: 1,
            ..ShardReport::default()
        };

        if let Some(reason) = serial_reason(self.config(), trace.len(), opts) {
            report.serial_reason = Some(reason);
            let result = self.run_window(trace, None)?;
            report.window_cycles = vec![result.stats.cycles];
            return Ok((result, report));
        }

        let windows = opts.shards.min(trace.len() / MIN_WINDOW_OPS);
        let plan = plan_windows(trace.len(), windows);
        report.windows = windows;
        report.warmup_ops = plan.iter().skip(1).map(|&(s, _)| s as u64).sum();

        let mut outcomes: Vec<Option<Result<(SimResult, WindowTiming), SimError>>> =
            plan.iter().map(|_| None).collect();
        // The hard-watchdog deadline is thread-local: carry the
        // spawning thread's token into each window worker.
        let deadline = crate::watchdog::deadline();
        let epoch = Instant::now();
        std::thread::scope(|scope| {
            let handles: Vec<_> = plan
                .iter()
                .enumerate()
                .map(|(w, &(start, end))| {
                    scope.spawn(move || {
                        let _watchdog = crate::watchdog::arm(deadline);
                        run_one_window(self, trace, w, start, end, epoch)
                    })
                })
                .collect();
            for (slot, handle) in outcomes.iter_mut().zip(handles) {
                *slot = Some(match handle.join() {
                    Ok(outcome) => outcome,
                    Err(payload) => std::panic::resume_unwind(payload),
                });
            }
        });

        let mut merged = SimResult {
            stats: Default::default(),
            events: None,
            ff: Default::default(),
        };
        let mut window_error = false;
        let mut window_drains = Vec::with_capacity(windows);
        for outcome in outcomes.into_iter().map(|o| o.expect("worker joined")) {
            match outcome {
                Ok((result, timing)) => {
                    report.window_cycles.push(result.stats.cycles);
                    window_drains.push(result.stats.drain_cycles);
                    report.warmup_seconds += timing.warmup_seconds;
                    report.timeline.push(timing);
                    merged.stats.absorb(&result.stats);
                    merged.ff.add(&result.ff);
                }
                Err(_) => {
                    window_error = true;
                    break;
                }
            }
        }

        if !window_error {
            // Each internal boundary costs at most one lost drain
            // overlap (the non-final window drains a pipeline the
            // serial run would keep feeding) plus one refill of
            // comparable depth in the window after it.
            let internal_drains: u64 =
                window_drains.iter().take(windows.saturating_sub(1)).sum();
            report.boundary_cycles = 2 * internal_drains;
            report.divergence = if merged.stats.cycles == 0 {
                0.0
            } else {
                report.boundary_cycles as f64 / merged.stats.cycles as f64
            };
            if report.divergence <= opts.max_divergence {
                return Ok((merged, report));
            }
        }

        // Fallback: the parallel answer is out of tolerance (or a
        // window erred under approximate warm state) — run serially.
        report.fell_back = true;
        report.serial_reason = Some(if window_error {
            "a window erred; retried serially"
        } else {
            "divergence bound exceeded"
        });
        let result = self.run_window(trace, None)?;
        report.window_cycles = vec![result.stats.cycles];
        Ok((result, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcl_isa::ArchReg;
    use mcl_trace::{vm::trace_program, ProgramBuilder};

    /// A counted loop mixing int/fp work and loads, long enough to
    /// clear the minimum-window floor (`iters` × ~13 dynamic ops).
    fn long_trace(iters: i64) -> PackedTrace {
        let mut b = ProgramBuilder::<ArchReg>::new("shard-loop");
        for s in 0..8u64 {
            b.mem_init(0x4000 + 8 * s, s * 3 + 1);
        }
        let i = ArchReg::int(4);
        let base = ArchReg::int(1);
        let r = ArchReg::int(2);
        let o = ArchReg::int(3);
        let f = ArchReg::fp(2);
        let body = b.new_block("body");
        b.lda(r, 0);
        b.lda(base, 0x4000);
        b.lda(i, iters);
        b.switch_to(body);
        b.ldq(o, base, 8);
        b.addq_imm(r, r, 1);
        b.addq(o, o, r);
        b.addt(f, f, f);
        b.mult(f, f, f);
        b.addq_imm(o, o, 3);
        b.stq(base, 16, o);
        b.addq_imm(r, r, 1);
        b.addq_imm(o, o, 1);
        b.addq(r, r, o);
        b.subq_imm(i, i, 1);
        b.bne(i, body);
        let p = b.finish().expect("valid program");
        let (trace, _profile) = trace_program(&p).expect("traces");
        PackedTrace::from_ops(&trace)
    }

    #[test]
    fn plan_windows_partitions_exactly() {
        for (len, windows) in [(10, 3), (8192, 4), (100_001, 7), (5, 5)] {
            let plan = plan_windows(len, windows);
            assert_eq!(plan.len(), windows);
            assert_eq!(plan[0].0, 0);
            assert_eq!(plan[windows - 1].1, len);
            for w in 1..windows {
                assert_eq!(plan[w].0, plan[w - 1].1, "contiguous");
            }
            let sizes: Vec<usize> = plan.iter().map(|&(s, e)| e - s).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "near-equal: {sizes:?}");
        }
    }

    #[test]
    fn short_trace_takes_the_exact_serial_path() {
        let trace = long_trace(64);
        assert!(trace.len() < 2 * MIN_WINDOW_OPS);
        let mut proc = Processor::new(ProcessorConfig::dual_cluster_8way());
        let serial = proc.run_packed(&trace).expect("serial runs");
        let (sharded, report) =
            proc.run_sharded(&trace, &ShardOptions::new(4)).expect("sharded runs");
        assert_eq!(report.windows, 1);
        assert!(!report.fell_back);
        assert_eq!(report.serial_reason, Some("trace shorter than two minimum windows"));
        assert_eq!(sharded.stats, serial.stats);
        assert_eq!(sharded.ff, serial.ff);
    }

    #[test]
    fn sharded_long_trace_is_exact_on_sums_and_tight_on_cycles() {
        let trace = long_trace(4000);
        assert!(trace.len() >= 4 * MIN_WINDOW_OPS, "len = {}", trace.len());
        let mut proc = Processor::new(ProcessorConfig::dual_cluster_8way());
        let serial = proc.run_packed(&trace).expect("serial runs");
        for shards in [2usize, 4] {
            let (sharded, report) =
                proc.run_sharded(&trace, &ShardOptions::new(shards)).expect("sharded runs");
            assert_eq!(report.windows, shards);
            assert!(!report.fell_back, "report: {report:?}");
            // Retired-instruction counts are exact under sharding.
            assert_eq!(sharded.stats.retired, serial.stats.retired);
            // The stall identity survives the merge.
            sharded.stats.check_stall_identity().expect("stall identity");
            // Cycle counts agree within the reported divergence bound.
            let (s, p) = (serial.stats.cycles as f64, sharded.stats.cycles as f64);
            let err = (s - p).abs() / s;
            assert!(
                err <= report.divergence + 1e-9,
                "shards={shards}: serial {s} vs sharded {p} (err {err:.5}, \
                 reported bound {:.5})",
                report.divergence
            );
            assert!(report.divergence < 0.02, "bound itself is small: {report:?}");
            assert_eq!(report.window_cycles.len(), shards);
            assert!(report.warmup_ops > 0);
        }
    }
}
