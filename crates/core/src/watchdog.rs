//! Cooperative hard-watchdog deadline token.
//!
//! PR 3's `--watchdog` was a *soft* budget: the runner recorded
//! `watchdog_exceeded` after a cell finished, but a runaway simulation
//! still ran to completion (or to the two-billion-cycle limit). This
//! module upgrades it to a *hard* cooperative deadline: the driver arms
//! a wall-clock [`Instant`] for the current thread, and the simulator's
//! run loop polls it every few thousand steps, cancelling the run with
//! a structured [`SimError::Timeout`](crate::SimError) the moment the
//! deadline passes.
//!
//! The deadline is a thread-local token rather than a
//! [`ProcessorConfig`](crate::ProcessorConfig) field on purpose:
//! configurations are hashed and compared as cache keys (the in-process
//! and on-disk result stores key simulations on the configuration's
//! canonical form), and a wall-clock deadline must never change a key
//! or make two otherwise-identical runs distinct. Worker threads that
//! fan a simulation out (time-window sharding) re-arm the token inside
//! each worker from the value read on the spawning thread.
//!
//! Arming uses an RAII guard so a panicking or early-returning cell
//! can never leak its deadline into the next cell scheduled on the
//! same pool thread.

use std::cell::Cell;
use std::time::{Duration, Instant};

thread_local! {
    static DEADLINE: Cell<Option<Instant>> = const { Cell::new(None) };
}

/// The deadline armed for the current thread, if any. The simulator
/// reads this once per run and polls it cooperatively.
#[must_use]
pub fn deadline() -> Option<Instant> {
    DEADLINE.with(Cell::get)
}

/// Arms `deadline` for the current thread until the returned guard is
/// dropped (restoring whatever was armed before — guards nest).
#[must_use]
pub fn arm(deadline: Option<Instant>) -> WatchdogGuard {
    let previous = DEADLINE.with(|d| d.replace(deadline));
    WatchdogGuard { previous }
}

/// Arms a deadline `budget` from now for the current thread.
#[must_use]
pub fn arm_for(budget: Duration) -> WatchdogGuard {
    arm(Some(Instant::now() + budget))
}

/// Restores the previously-armed deadline on drop (see [`arm`]).
pub struct WatchdogGuard {
    previous: Option<Instant>,
}

impl Drop for WatchdogGuard {
    fn drop(&mut self) {
        DEADLINE.with(|d| d.set(self.previous));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_restores_the_previous_deadline() {
        assert_eq!(deadline(), None);
        let outer = Instant::now() + Duration::from_secs(60);
        let g1 = arm(Some(outer));
        assert_eq!(deadline(), Some(outer));
        {
            let inner = Instant::now() + Duration::from_secs(1);
            let _g2 = arm(Some(inner));
            assert_eq!(deadline(), Some(inner));
        }
        assert_eq!(deadline(), Some(outer));
        drop(g1);
        assert_eq!(deadline(), None);
    }

    #[test]
    fn arm_for_sets_a_future_deadline() {
        let _g = arm_for(Duration::from_secs(3600));
        let d = deadline().expect("armed");
        assert!(d > Instant::now());
    }
}
