//! Cycle-level simulator of single-cluster and multicluster
//! dynamically-scheduled processors.
//!
//! This crate is the reproduction of the paper's hardware model
//! (Sections 2 and 4.1):
//!
//! - [`config`] — processor configurations, with presets matching the
//!   paper's evaluated single-cluster (8-way) and dual-cluster
//!   (2 × 4-way) machines;
//! - [`dist`] — instruction distribution: which cluster(s) an
//!   instruction executes on, derived from the architectural registers
//!   it names, including master/slave selection and the five execution
//!   scenarios of Section 2.1;
//! - [`sim`] — the simulator itself: fetch (12-wide, instruction cache,
//!   McFarling prediction with update-at-execute), in-order distribution
//!   with renaming and resource stalls, per-cluster dispatch queues with
//!   greedy oldest-first issue under the Table 1 rules, operand/result
//!   transfer buffers, suspended slave copies, instruction-replay
//!   exceptions, non-blocking memory via the inverted-MSHR data cache,
//!   and 8-wide in-order retire;
//! - [`events`] — per-instruction event logs for reconstructing the
//!   paper's Figures 2–5 timelines;
//! - [`stats`] — run statistics ([`SimStats::cycles`] is the paper's
//!   metric) and the Table 2 speedup convention;
//! - [`delay`] — the Palacharla-derived cycle-time model behind the
//!   paper's 0.35 µm / 0.18 µm crossover analysis;
//! - [`check`] — the architectural invariant checker: per-cluster
//!   resource accounting, waiter/completion liveness, and replay
//!   forward progress, validated at retire or cycle granularity;
//! - [`obs`] — the observability layer: [`Probe`] hook points compiled
//!   out on the default [`obs::NullProbe`] path, plus the interval
//!   sampler / latency histograms / lifecycle event ring behind
//!   `repro --obs`;
//! - [`timeq`] — the time-wheel event queue both engines schedule
//!   future work on, and that the event-driven engine
//!   ([`config::Engine::Event`]) uses to fast-forward across dead
//!   cycles;
//! - [`watchdog`] — the cooperative hard-watchdog deadline token the
//!   run loop polls, turning runaway cells into structured
//!   [`SimError::Timeout`] reports.
//!
//! # Example
//!
//! ```
//! use mcl_core::{Processor, ProcessorConfig};
//! use mcl_isa::ArchReg;
//! use mcl_trace::ProgramBuilder;
//!
//! // A two-instruction cross-cluster dependence: r3 (cluster 1) is
//! // computed from r2 (cluster 0) — dual distribution on the paper's
//! // dual-cluster machine.
//! let mut b = ProgramBuilder::<ArchReg>::new("cross");
//! b.lda(ArchReg::int(2), 1);
//! b.addq_imm(ArchReg::int(3), ArchReg::int(2), 1);
//! let program = b.finish()?;
//!
//! let result = Processor::new(ProcessorConfig::dual_cluster_8way())
//!     .run_program(&program)?;
//! assert_eq!(result.stats.dual_distributed, 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod check;
pub mod config;
pub mod delay;
pub mod dist;
pub mod events;
pub mod obs;
pub mod pipeview;
pub mod shard;
pub mod sim;
pub mod stats;
pub mod timeq;
pub mod watchdog;

pub use check::{CheckLevel, FaultInjection};
pub use config::{global_engine, set_global_engine, Engine, ProcessorConfig};
pub use delay::FeatureSize;
pub use dist::{distribute, Distribution};
pub use events::{Event, EventKind, EventLog};
pub use obs::{
    CritAttribution, CritCause, CritPathProbe, CycleSnapshot, DataflowEdge, FlushedOp, Histogram,
    HostPhase, HostProf, HostProfReport, IntervalSampler, NullHostProf, ObsConfig, ObsProbe,
    OpLifecycle, PhaseProf, PipeTrace, PipeTraceProbe, Probe, StallCause, TransferKind,
};
pub use pipeview::{render as render_pipeline, PipeViewOptions};
pub use shard::{planned_windows, ShardOptions, ShardReport, WindowTiming};
pub use sim::{Processor, SimError, SimResult};
pub use stats::{speedup_percent, FastForward, SimStats, STATS_WIRE_VERSION};
